"""Expansion measurement: exact enumeration, sweep cuts, refinement, profiles."""

from .estimate import (
    DEFAULT_EXACT_THRESHOLD,
    ExpansionEstimate,
    estimate_edge_expansion,
    estimate_node_expansion,
)
from .exact import (
    EXACT_MAX_NODES,
    ExactExpansionResult,
    edge_expansion_exact,
    node_expansion_exact,
)
from .local import refine_cut
from .profiles import ExpansionProfile, bfs_ball, expansion_profile
from .sweep import (
    SweepCut,
    best_edge_sweep_cut,
    best_node_sweep_cut,
    fiedler_order,
    sweep_cuts_edge,
    sweep_cuts_node,
)

__all__ = [
    "ExpansionEstimate",
    "estimate_node_expansion",
    "estimate_edge_expansion",
    "DEFAULT_EXACT_THRESHOLD",
    "ExactExpansionResult",
    "node_expansion_exact",
    "edge_expansion_exact",
    "EXACT_MAX_NODES",
    "refine_cut",
    "SweepCut",
    "sweep_cuts_node",
    "sweep_cuts_edge",
    "best_node_sweep_cut",
    "best_edge_sweep_cut",
    "fiedler_order",
    "ExpansionProfile",
    "expansion_profile",
    "bfs_ball",
]
