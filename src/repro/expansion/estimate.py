"""Two-sided expansion estimation — the facade the experiments use.

``estimate_node_expansion`` / ``estimate_edge_expansion`` return an
:class:`ExpansionEstimate` carrying:

* ``upper`` — a constructive bound: the ratio of the best cut found
  (exhaustive on small graphs, Fiedler sweep + greedy refinement otherwise),
  together with the witnessing set;
* ``lower`` — a certified bound: exact value when enumeration ran, else the
  Cheeger-type spectral bound (see :mod:`repro.spectral.cheeger`);
* ``exact`` — whether the two coincide by construction.

The experiments report ``value`` (= upper, the conventional estimate) and
use ``lower`` whenever a theorem needs a certified inequality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..graphs.graph import Graph
from ..graphs.traversal import connected_components, component_sizes
from ..spectral.cheeger import cheeger_bounds
from .exact import edge_expansion_exact, node_expansion_exact
from .local import refine_cut
from .sweep import best_edge_sweep_cut, best_node_sweep_cut

__all__ = [
    "ExpansionEstimate",
    "estimate_node_expansion",
    "estimate_edge_expansion",
    "DEFAULT_EXACT_THRESHOLD",
]

#: Graphs at or below this size get exhaustive (exact) treatment by default.
DEFAULT_EXACT_THRESHOLD = 14

Kind = Literal["node", "edge"]


@dataclass(frozen=True)
class ExpansionEstimate:
    """Two-sided expansion estimate with a witness cut."""

    kind: str
    lower: float
    upper: float
    witness: np.ndarray
    exact: bool
    method: str

    @property
    def value(self) -> float:
        """The conventional point estimate (the constructive upper bound)."""
        return self.upper

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise InvalidParameterError(
                f"inconsistent estimate: lower {self.lower} > upper {self.upper}"
            )


def _disconnected_estimate(graph: Graph, kind: Kind) -> ExpansionEstimate:
    """A disconnected graph has expansion 0 witnessed by a smallest component
    (or any component of size ≤ n/2; one always exists)."""
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    smallest = int(np.argmin(sizes))
    witness = np.flatnonzero(labels == smallest)
    return ExpansionEstimate(
        kind=kind, lower=0.0, upper=0.0, witness=witness, exact=True,
        method="disconnected",
    )


def estimate_node_expansion(
    graph: Graph,
    *,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    refine: bool = True,
) -> ExpansionEstimate:
    """Estimate ``α(G)`` (see module docstring for the contract)."""
    if graph.n < 2:
        raise InvalidParameterError("expansion needs at least 2 nodes")
    labels = connected_components(graph)
    if labels.max() > 0:
        return _disconnected_estimate(graph, "node")
    if graph.n <= exact_threshold:
        res = node_expansion_exact(graph, max_nodes=exact_threshold)
        return ExpansionEstimate(
            kind="node", lower=res.value, upper=res.value, witness=res.witness,
            exact=True, method="exhaustive",
        )
    cut = best_node_sweep_cut(graph)
    witness = cut.nodes
    upper = cut.ratio
    method = "sweep"
    if refine:
        refined = refine_cut(graph, witness, "node")
        from ..graphs.ops import node_expansion_of_set

        refined_ratio = node_expansion_of_set(graph, refined)
        if refined_ratio < upper:
            witness, upper, method = refined, refined_ratio, "sweep+refine"
    lower = min(cheeger_bounds(graph).node_expansion_lower, upper)
    return ExpansionEstimate(
        kind="node", lower=lower, upper=upper, witness=witness, exact=False,
        method=method,
    )


def estimate_edge_expansion(
    graph: Graph,
    *,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    refine: bool = True,
) -> ExpansionEstimate:
    """Estimate ``αe(G)`` (see module docstring for the contract)."""
    if graph.n < 2:
        raise InvalidParameterError("expansion needs at least 2 nodes")
    labels = connected_components(graph)
    if labels.max() > 0:
        return _disconnected_estimate(graph, "edge")
    if graph.n <= exact_threshold:
        res = edge_expansion_exact(graph, max_nodes=exact_threshold)
        return ExpansionEstimate(
            kind="edge", lower=res.value, upper=res.value, witness=res.witness,
            exact=True, method="exhaustive",
        )
    cut = best_edge_sweep_cut(graph)
    witness = cut.nodes
    upper = cut.ratio
    method = "sweep"
    if refine:
        refined = refine_cut(graph, witness, "edge")
        from ..graphs.ops import edge_expansion_of_set

        refined_ratio = edge_expansion_of_set(graph, refined)
        if refined_ratio < upper:
            witness, upper, method = refined, refined_ratio, "sweep+refine"
    lower = min(cheeger_bounds(graph).edge_expansion_lower, upper)
    return ExpansionEstimate(
        kind="edge", lower=lower, upper=upper, witness=witness, exact=False,
        method=method,
    )
