"""Greedy local refinement of candidate cuts.

Sweep cuts are good but threshold-shaped; a few greedy vertex moves usually
shave the ratio further, especially on mesh-like graphs where the optimal
separator is axis-aligned but the Fiedler vector is smooth.  The refiner
repeatedly tries single-vertex moves (add a boundary vertex to S, or drop an
S-vertex adjacent to the outside) and keeps any move that strictly lowers the
scored ratio, up to a move budget.  Complexity: each move recomputes the
boundary with one vectorised gather, so a full refinement is
O(moves · (deg work)).
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import (
    edge_boundary_count,
    node_boundary,
    node_boundary_size,
)

__all__ = ["refine_cut"]

Kind = Literal["node", "edge"]


def _ratio(graph: Graph, mask: np.ndarray, kind: Kind) -> float:
    size = int(mask.sum())
    if size == 0 or size > graph.n // 2:
        return float("inf")
    if kind == "node":
        return node_boundary_size(graph, mask) / size
    return edge_boundary_count(graph, mask) / min(size, graph.n - size)


def refine_cut(
    graph: Graph,
    seed_set: np.ndarray,
    kind: Kind = "node",
    *,
    max_moves: int | None = None,
) -> np.ndarray:
    """Greedily improve a cut's expansion ratio by single-vertex moves.

    Parameters
    ----------
    graph:
        Host graph.
    seed_set:
        Initial set ``S`` (ids or boolean mask); must be non-empty with
        ``|S| ≤ n/2``.
    kind:
        Which ratio to minimise: ``"node"`` (``|Γ(S)|/|S|``) or ``"edge"``
        (``cut/min(|S|,|V\\S|)``).
    max_moves:
        Move budget; defaults to ``2·n``.

    Returns
    -------
    numpy.ndarray
        Sorted ids of the refined set (never worse than the seed).
    """
    if kind not in ("node", "edge"):
        raise InvalidParameterError(f"kind must be node/edge, got {kind}")
    n = graph.n
    mask = np.zeros(n, dtype=bool)
    seed = np.asarray(seed_set)
    if seed.dtype == bool:
        mask |= seed
    else:
        mask[np.asarray(seed, dtype=np.int64)] = True
    if not mask.any():
        raise InvalidParameterError("seed set must be non-empty")
    budget = 2 * n if max_moves is None else int(max_moves)
    best = _ratio(graph, mask, kind)
    moves = 0
    improved = True
    while improved and moves < budget:
        improved = False
        # candidate additions: outside nodes adjacent to S
        frontier_out = node_boundary(graph, mask)
        # candidate removals: S nodes adjacent to outside
        inv = ~mask
        frontier_in = node_boundary(graph, inv)
        candidates = [(v, True) for v in frontier_out.tolist()] + [
            (v, False) for v in frontier_in.tolist()
        ]
        for v, add in candidates:
            if moves >= budget:
                break
            mask[v] = add
            val = _ratio(graph, mask, kind)
            if val < best:
                best = val
                moves += 1
                improved = True
            else:
                mask[v] = not add
    return np.flatnonzero(mask)
