"""Spectral sweep cuts: constructive upper bounds on expansion in O(n + m).

Given any node ordering (by default the Fiedler vector of the normalised
Laplacian), the *sweep* evaluates every prefix set ``S_t = {first t+1 nodes}``
and returns the boundary ratios.  The classic Cheeger-rounding argument says
the best sweep prefix of the Fiedler order achieves conductance
``≤ √(2·λ₂)``, so these cuts are certified-quality witnesses.

Everything is computed with difference arrays — one pass over the edges —
rather than per-prefix boundary recomputation:

* an edge ``{u, v}`` with ranks ``ru < rv`` crosses exactly the prefixes
  ``t ∈ [ru, rv − 1]``;
* node ``w`` lies in ``Γ(S_t)`` exactly for ``t ∈ [min-rank of N(w), rank(w) − 1]``
  (it must be outside the prefix but have a neighbour inside);
* node ``w`` lies in ``Γ(suffix after t)`` exactly for
  ``t ∈ [rank(w), max-rank of N(w) − 1]``.

Suffix sets matter because node expansion is *not* symmetric in ``S`` vs
``V\\S`` — both sides of each sweep threshold are scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..spectral.eigen import fiedler_vector

__all__ = ["SweepCut", "sweep_cuts_node", "sweep_cuts_edge", "fiedler_order"]


@dataclass(frozen=True)
class SweepCut:
    """One scored cut from a sweep."""

    ratio: float
    nodes: np.ndarray  # sorted ids of the (smaller-scored) set S
    boundary_size: int
    kind: str  # "node" or "edge"


def fiedler_order(graph: Graph) -> np.ndarray:
    """Node ordering by Fiedler-vector value (requires connected graph)."""
    info = fiedler_vector(graph)
    return np.argsort(info.vector, kind="stable").astype(np.int64)


def _rank_arrays(graph: Graph, order: np.ndarray):
    n = graph.n
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    edges = graph.edge_array()
    ru = rank[edges[:, 0]]
    rv = rank[edges[:, 1]]
    lo = np.minimum(ru, rv)
    hi = np.maximum(ru, rv)
    return rank, lo, hi


def sweep_cuts_edge(
    graph: Graph, order: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray]:
    """Edge-boundary size of every sweep prefix.

    Returns
    -------
    (order, cut_sizes):
        ``cut_sizes[t] = |(S_t, V \\ S_t)|`` for the prefix of size ``t+1``,
        ``t ∈ 0..n-2``.
    """
    if order is None:
        order = fiedler_order(graph)
    order = np.asarray(order, dtype=np.int64)
    n = graph.n
    if order.shape != (n,):
        raise InvalidParameterError(f"order must be a permutation of {n} nodes")
    _, lo, hi = _rank_arrays(graph, order)
    diff = np.zeros(n, dtype=np.int64)
    np.add.at(diff, lo, 1)
    np.add.at(diff, hi, -1)
    cuts = np.cumsum(diff)[: n - 1]
    return order, cuts


def sweep_cuts_node(
    graph: Graph, order: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Node-boundary sizes for every sweep prefix *and* suffix.

    Returns
    -------
    (order, prefix_boundary, suffix_boundary):
        ``prefix_boundary[t] = |Γ(S_t)|`` for the prefix of size ``t+1``;
        ``suffix_boundary[t] = |Γ(V \\ S_t)|`` for the complementary suffix.
        Both arrays have length ``n − 1`` (thresholds between positions).
    """
    if order is None:
        order = fiedler_order(graph)
    order = np.asarray(order, dtype=np.int64)
    n = graph.n
    if order.shape != (n,):
        raise InvalidParameterError(f"order must be a permutation of {n} nodes")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)

    # per-node min/max neighbour rank (isolated nodes never enter a boundary)
    min_nbr = np.full(n, n, dtype=np.int64)
    max_nbr = np.full(n, -1, dtype=np.int64)
    edges = graph.edge_array()
    if edges.size:
        ru, rv = rank[edges[:, 0]], rank[edges[:, 1]]
        np.minimum.at(min_nbr, edges[:, 0], rv)
        np.minimum.at(min_nbr, edges[:, 1], ru)
        np.maximum.at(max_nbr, edges[:, 0], rv)
        np.maximum.at(max_nbr, edges[:, 1], ru)

    prefix_diff = np.zeros(n + 1, dtype=np.int64)
    suffix_diff = np.zeros(n + 1, dtype=np.int64)
    rw = rank
    # w ∈ Γ(prefix_t) for t ∈ [min_nbr[w], rw-1]
    valid = min_nbr < rw
    np.add.at(prefix_diff, min_nbr[valid], 1)
    np.add.at(prefix_diff, rw[valid], -1)
    # w ∈ Γ(suffix_t) for t ∈ [rw, max_nbr[w]-1]
    valid = max_nbr > rw
    np.add.at(suffix_diff, rw[valid], 1)
    np.add.at(suffix_diff, max_nbr[valid], -1)
    prefix_boundary = np.cumsum(prefix_diff[:n])[: n - 1]
    suffix_boundary = np.cumsum(suffix_diff[:n])[: n - 1]
    return order, prefix_boundary, suffix_boundary


def best_node_sweep_cut(graph: Graph, order: Optional[np.ndarray] = None) -> SweepCut:
    """Minimum node-expansion sweep cut with ``|S| ≤ n/2`` (either side)."""
    order, pre, suf = sweep_cuts_node(graph, order)
    n = graph.n
    t = np.arange(1, n, dtype=np.int64)  # prefix size at threshold index t-1
    pre_sizes = t
    suf_sizes = n - t
    pre_ratio = np.where(pre_sizes <= n // 2, pre / pre_sizes, np.inf)
    suf_ratio = np.where(suf_sizes <= n // 2, suf / suf_sizes, np.inf)
    i_pre = int(np.argmin(pre_ratio))
    i_suf = int(np.argmin(suf_ratio))
    if pre_ratio[i_pre] <= suf_ratio[i_suf]:
        nodes = np.sort(order[: i_pre + 1])
        return SweepCut(float(pre_ratio[i_pre]), nodes, int(pre[i_pre]), "node")
    nodes = np.sort(order[i_suf + 1:])
    return SweepCut(float(suf_ratio[i_suf]), nodes, int(suf[i_suf]), "node")


def best_edge_sweep_cut(graph: Graph, order: Optional[np.ndarray] = None) -> SweepCut:
    """Minimum edge-expansion sweep cut (denominator ``min(|S|, n−|S|)``)."""
    order, cuts = sweep_cuts_edge(graph, order)
    n = graph.n
    t = np.arange(1, n, dtype=np.int64)
    denom = np.minimum(t, n - t)
    ratio = cuts / denom
    i = int(np.argmin(ratio))
    if t[i] <= n - t[i]:
        nodes = np.sort(order[: i + 1])
    else:
        nodes = np.sort(order[i + 1:])
    return SweepCut(float(ratio[i]), nodes, int(cuts[i]), "edge")


__all__ += ["best_node_sweep_cut", "best_edge_sweep_cut"]
