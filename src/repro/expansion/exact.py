"""Exact expansion by exhaustive subset enumeration (small graphs).

Computing ``α(G) = min_{|U| ≤ n/2} |Γ(U)|/|U|`` exactly is NP-hard, but the
integration tests that pin the paper's theorems run on graphs of ≤ ~16 nodes
where full enumeration is cheap.  Subsets are represented as Python int
bitmasks; neighbourhood masks are combined with a low-bit dynamic program so
the whole enumeration is O(2^n) big-int operations:

    nbr_mask[S] = nbr_mask[S \\ lowbit(S)] | nbr_mask[lowbit(S)]

Edge-boundary counts use the incremental identity
``cut(S + v) = cut(S) + deg(v) − 2·|N(v) ∩ S|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph

__all__ = [
    "ExactExpansionResult",
    "node_expansion_exact",
    "edge_expansion_exact",
    "EXACT_MAX_NODES",
]

#: Hard cap on exhaustive enumeration (2^20 masks ≈ 1M big-int ops).
EXACT_MAX_NODES = 20


@dataclass(frozen=True)
class ExactExpansionResult:
    """Exact expansion value plus a minimising witness set."""

    value: float
    witness: np.ndarray  # sorted node ids of a minimising set
    kind: str  # "node" or "edge"

    def __post_init__(self) -> None:
        if self.kind not in ("node", "edge"):
            raise InvalidParameterError(f"kind must be node/edge, got {self.kind}")


def _neighbor_bitmasks(graph: Graph) -> list[int]:
    masks = []
    for v in range(graph.n):
        m = 0
        for u in graph.neighbors(v).tolist():
            m |= 1 << u
        masks.append(m)
    return masks


def _check_size(graph: Graph, max_nodes: int) -> None:
    if graph.n == 0:
        raise InvalidParameterError("expansion of the empty graph is undefined")
    if graph.n > max_nodes:
        raise InvalidParameterError(
            f"exact enumeration limited to {max_nodes} nodes, graph has {graph.n}"
        )
    if max_nodes > EXACT_MAX_NODES:
        raise InvalidParameterError(
            f"max_nodes {max_nodes} exceeds hard cap {EXACT_MAX_NODES}"
        )


def node_expansion_exact(graph: Graph, *, max_nodes: int = 16) -> ExactExpansionResult:
    """Exact node expansion ``α(G)`` with a minimising set.

    Every non-empty subset of size ≤ n/2 is scored; ties keep the first
    (lowest-mask) witness for determinism.  Isolated-node graphs score 0 via
    the singleton subsets.
    """
    _check_size(graph, max_nodes)
    n = graph.n
    if n == 1:
        return ExactExpansionResult(value=0.0, witness=np.array([0], dtype=np.int64),
                                    kind="node")
    nbr = _neighbor_bitmasks(graph)
    half = n // 2
    total = 1 << n
    nbr_of_mask = [0] * total
    best_val = float("inf")
    best_mask = 0
    full = total - 1
    for mask in range(1, total):
        low = mask & -mask
        rest = mask ^ low
        nm = nbr_of_mask[rest] | nbr[low.bit_length() - 1]
        nbr_of_mask[mask] = nm
        size = mask.bit_count()
        if size > half:
            continue
        boundary = (nm & ~mask & full).bit_count()
        val = boundary / size
        if val < best_val:
            best_val = val
            best_mask = mask
            if best_val == 0.0 and size == 1:
                # cannot do better than 0; keep smallest witness anyway
                pass
    witness = np.array(
        [i for i in range(n) if best_mask >> i & 1], dtype=np.int64
    )
    return ExactExpansionResult(value=best_val, witness=witness, kind="node")


def edge_expansion_exact(graph: Graph, *, max_nodes: int = 16) -> ExactExpansionResult:
    """Exact edge expansion ``αe(G)`` with a minimising set.

    Uses the symmetric denominator ``min(|S|, n − |S|)``; since
    ``cut(S) = cut(V\\S)`` only subsets of size ≤ n/2 need scoring.
    """
    _check_size(graph, max_nodes)
    n = graph.n
    if n == 1:
        raise InvalidParameterError("edge expansion needs at least 2 nodes")
    nbr = _neighbor_bitmasks(graph)
    deg = graph.degrees.tolist()
    half = n // 2
    total = 1 << n
    cut_of_mask = [0] * total
    best_val = float("inf")
    best_mask = 0
    for mask in range(1, total):
        low = mask & -mask
        rest = mask ^ low
        v = low.bit_length() - 1
        cut = cut_of_mask[rest] + deg[v] - 2 * (nbr[v] & rest).bit_count()
        cut_of_mask[mask] = cut
        size = mask.bit_count()
        if size > half:
            continue
        val = cut / size
        if val < best_val:
            best_val = val
            best_mask = mask
    witness = np.array(
        [i for i in range(n) if best_mask >> i & 1], dtype=np.int64
    )
    return ExactExpansionResult(value=best_val, witness=witness, kind="edge")
