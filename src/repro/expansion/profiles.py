"""Uniform-expansion profiles.

The paper's Theorem 2.5 applies to graphs of *uniform expansion* ``α(·)``:
``G`` has expansion ``α(n)`` and every size-``m`` subgraph has expansion
``O(α(m))`` ("this is the case for all well-known classes of graphs", §2).
This module measures that empirically: it samples connected subgraphs across
a range of sizes (BFS balls around random seeds — the natural sub-networks of
a mesh-like graph), estimates each sample's expansion, and fits a power law
``α(m) ≈ c·m^e`` by least squares on the log-log cloud.  For the 2-D mesh the
fitted exponent should be ≈ −1/2; the uniformity *check* asserts no sampled
subgraph beats the fitted envelope by more than a constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph, neighbors_of_many
from ..util.rng import SeedLike, as_generator
from .estimate import estimate_node_expansion

__all__ = ["ExpansionProfile", "expansion_profile", "bfs_ball"]


def bfs_ball(graph: Graph, center: int, target_size: int) -> np.ndarray:
    """Connected node set of ~``target_size`` grown by BFS from ``center``.

    The last BFS level is truncated (lowest ids first) to hit the target
    exactly whenever the component is large enough.
    """
    if not 0 <= center < graph.n:
        raise InvalidParameterError(f"center {center} outside [0, {graph.n})")
    if target_size < 1:
        raise InvalidParameterError("target_size must be >= 1")
    seen = np.zeros(graph.n, dtype=bool)
    seen[center] = True
    members = [np.array([center], dtype=np.int64)]
    count = 1
    frontier = members[0]
    while count < target_size and frontier.size:
        nbrs = neighbors_of_many(graph, frontier)
        fresh = np.unique(nbrs[~seen[nbrs]])
        if fresh.size == 0:
            break
        take = min(fresh.size, target_size - count)
        chosen = fresh[:take]
        seen[chosen] = True
        members.append(chosen)
        count += take
        frontier = chosen if take == fresh.size else fresh[:take]
    return np.sort(np.concatenate(members))


@dataclass(frozen=True)
class ExpansionProfile:
    """Sampled (size, expansion) cloud and its power-law fit."""

    sizes: np.ndarray
    expansions: np.ndarray
    exponent: float
    coefficient: float

    def predicted(self, m: np.ndarray | float) -> np.ndarray | float:
        """Fitted ``α(m) = c · m^e``."""
        return self.coefficient * np.asarray(m, dtype=np.float64) ** self.exponent

    def is_uniform(self, slack: float = 8.0) -> bool:
        """Whether every sample lies within ``slack×`` of the fitted curve —
        the empirical counterpart of the O(α(m)) uniformity condition."""
        pred = self.predicted(self.sizes)
        good = self.expansions <= slack * pred
        good &= self.expansions >= pred / slack
        return bool(np.all(good))


def expansion_profile(
    graph: Graph,
    *,
    sizes: List[int] | None = None,
    samples_per_size: int = 3,
    seed: SeedLike = None,
) -> ExpansionProfile:
    """Sample subgraph expansions across scales and fit a power law.

    Parameters
    ----------
    graph:
        Connected host graph.
    sizes:
        Subgraph sizes to sample; defaults to a geometric ladder from 8 to
        ``n/2``.
    samples_per_size:
        BFS balls per size (different random centers).
    seed:
        RNG spec.
    """
    rng = as_generator(seed)
    n = graph.n
    if n < 16:
        raise InvalidParameterError("profile needs at least 16 nodes")
    if sizes is None:
        ladder = []
        s = 8
        while s <= n // 2:
            ladder.append(s)
            s *= 2
        sizes = ladder or [n // 2]
    out_sizes, out_alpha = [], []
    for target in sizes:
        for _ in range(samples_per_size):
            center = int(rng.integers(n))
            ball = bfs_ball(graph, center, int(target))
            if ball.size < 2:
                continue
            sub = graph.subgraph(ball)
            est = estimate_node_expansion(sub)
            out_sizes.append(sub.n)
            out_alpha.append(max(est.value, 1e-12))
    sizes_arr = np.asarray(out_sizes, dtype=np.float64)
    alpha_arr = np.asarray(out_alpha, dtype=np.float64)
    logm = np.log(sizes_arr)
    loga = np.log(alpha_arr)
    slope, intercept = np.polyfit(logm, loga, 1)
    return ExpansionProfile(
        sizes=sizes_arr,
        expansions=alpha_arr,
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
    )
