"""Diffusion load balancing — the application §1.3 motivates.

"Research on load balancing has shown that if the expansion basically stays
the same, the ability of a network to balance single-commodity or
multi-commodity load basically stays the same" (paper §1.3, citing Ghosh et
al.).  We implement first-order diffusion:

    x_{t+1}(v) = x_t(v) + Σ_{u ~ v} (x_t(u) − x_t(v)) / (δ + 1)

whose convergence rate is governed by the spectral gap — and hence, via
Cheeger, by the expansion.  The experiments show the pruned survivor network
balances load at (nearly) the fault-free rate, while the unpruned faulty
network with its bottlenecks does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..spectral.laplacian import adjacency_matrix
from ..util.rng import SeedLike, as_generator

__all__ = ["DiffusionResult", "diffusion_rounds_to_balance", "diffusion_step_matrix"]


@dataclass(frozen=True)
class DiffusionResult:
    """Rounds needed to drive the load imbalance below tolerance."""

    rounds: int
    final_imbalance: float
    converged: bool


def diffusion_step_matrix(graph: Graph) -> sp.csr_matrix:
    """The diffusion operator ``P = I + (A − D)/(δ_max + 1)`` (row-stochastic,
    symmetric — so its spectral gap mirrors the Laplacian's)."""
    if graph.n == 0:
        raise InvalidParameterError("empty graph")
    delta = max(graph.max_degree, 1)
    a = adjacency_matrix(graph)
    d = sp.diags(graph.degrees.astype(np.float64))
    return (sp.identity(graph.n, format="csr") + (a - d) / (delta + 1.0)).tocsr()


def diffusion_rounds_to_balance(
    graph: Graph,
    *,
    tolerance: float = 0.05,
    max_rounds: int = 10000,
    seed: SeedLike = None,
    initial: np.ndarray | None = None,
) -> DiffusionResult:
    """Iterate diffusion from a point load until near-uniform.

    Parameters
    ----------
    tolerance:
        Stop when ``max|x − mean| / mean ≤ tolerance``.
    initial:
        Load vector; defaults to all mass on one random node (the hardest
        single-commodity instance).

    Notes
    -----
    Disconnected graphs never converge to global uniformity; the result then
    reports ``converged=False`` at ``max_rounds`` — itself a useful signal
    (it is exactly how a bottlenecked faulty network fails).
    """
    if graph.n == 0:
        raise InvalidParameterError("empty graph")
    rng = as_generator(seed)
    if initial is None:
        x = np.zeros(graph.n, dtype=np.float64)
        x[int(rng.integers(graph.n))] = float(graph.n)
    else:
        x = np.asarray(initial, dtype=np.float64).copy()
        if x.shape != (graph.n,):
            raise InvalidParameterError("initial load vector has wrong shape")
    mean = x.mean()
    if mean <= 0:
        raise InvalidParameterError("total load must be positive")
    p = diffusion_step_matrix(graph)
    imbalance = float(np.abs(x - mean).max() / mean)
    rounds = 0
    while imbalance > tolerance and rounds < max_rounds:
        x = p @ x
        rounds += 1
        if rounds % 8 == 0 or rounds < 8:
            imbalance = float(np.abs(x - mean).max() / mean)
    imbalance = float(np.abs(x - mean).max() / mean)
    return DiffusionResult(
        rounds=rounds, final_imbalance=imbalance, converged=imbalance <= tolerance
    )
