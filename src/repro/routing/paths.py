"""Path-quality measurements: diameter proxies and fault-induced stretch.

Section 4 of the paper relates expansion to routing: the distance between
nodes in a graph of expansion α is ``O(α⁻¹·log n)`` (Leighton–Rao), so a
pruned network that retains Θ(α) expansion also retains ``O(log n)``-dilation
routes — this is how the paper compares itself with the
Raghavan/Kaklamanis/Mathies line of mesh results.

``stretch_statistics`` samples node pairs surviving in both graphs and
reports the distribution of ``dist_faulty / dist_original``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_distances
from ..util.rng import SeedLike, as_generator

__all__ = [
    "StretchStats",
    "stretch_statistics",
    "sampled_diameter",
    "expansion_distance_bound",
]


@dataclass(frozen=True)
class StretchStats:
    """Distribution digest of pairwise stretch factors."""

    mean: float
    p95: float
    max: float
    n_pairs: int
    unreachable: int


def sampled_diameter(graph: Graph, *, n_sources: int = 8, seed: SeedLike = None) -> int:
    """Lower bound on the diameter from BFS at ``n_sources`` random sources
    (exact for vertex-transitive graphs; a sound proxy elsewhere)."""
    if graph.n == 0:
        return 0
    rng = as_generator(seed)
    sources = rng.choice(graph.n, size=min(n_sources, graph.n), replace=False)
    best = 0
    for s in sources.tolist():
        dist = bfs_distances(graph, int(s))
        reachable = dist[dist >= 0]
        if reachable.size:
            best = max(best, int(reachable.max()))
    return best


def expansion_distance_bound(alpha: float, n: int, constant: float = 2.0) -> float:
    """The ``O(α⁻¹·log n)`` distance bound of [20] with an explicit constant.

    Derivation (the standard ball-growing argument): from any node, the
    closed BFS ball multiplies by ≥ (1 + α) per step while ≤ n/2 nodes, so
    two balls meet within ``2·log_{1+α}(n/2) + 1`` steps.
    """
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    if n < 2:
        return 0.0
    return constant * np.log(max(n, 2) / 2.0) / np.log1p(alpha) + 1.0


def stretch_statistics(
    original: Graph,
    surviving: Graph,
    *,
    n_pairs: int = 64,
    seed: SeedLike = None,
) -> StretchStats:
    """Sample surviving node pairs; compare faulty vs fault-free distance.

    ``surviving`` must be an induced subgraph of ``original`` whose
    ``original_ids`` resolve into it (the standard product of
    ``Graph.without_nodes`` / pruning).  Pairs whose faulty distance is
    infinite count in ``unreachable`` and are excluded from the moments.
    """
    if surviving.n < 2:
        raise InvalidParameterError("need at least 2 survivors")
    rng = as_generator(seed)
    stretches = []
    unreachable = 0
    # group by source: sample sources, a few targets each
    n_sources = max(1, int(np.sqrt(n_pairs)))
    per_source = max(1, n_pairs // n_sources)
    for _ in range(n_sources):
        s_local = int(rng.integers(surviving.n))
        d_faulty = bfs_distances(surviving, s_local)
        d_orig = bfs_distances(original, int(surviving.original_ids[s_local]))
        targets = rng.choice(surviving.n, size=min(per_source, surviving.n - 1),
                             replace=False)
        for t_local in targets.tolist():
            if t_local == s_local:
                continue
            df = int(d_faulty[t_local])
            do = int(d_orig[surviving.original_ids[t_local]])
            if do <= 0:
                continue
            if df < 0:
                unreachable += 1
                continue
            stretches.append(df / do)
    if not stretches:
        return StretchStats(mean=float("nan"), p95=float("nan"), max=float("nan"),
                            n_pairs=0, unreachable=unreachable)
    arr = np.asarray(stretches)
    return StretchStats(
        mean=float(arr.mean()),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
        n_pairs=int(arr.size),
        unreachable=unreachable,
    )
