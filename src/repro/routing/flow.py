"""Greedy path routing and congestion measurement.

The second application §1.3 motivates: "the ability of a network to route
information is preserved because it is closely related to its expansion".
We route a random permutation demand set along BFS shortest paths and report
the edge-congestion histogram; on a well-expanding network the max
congestion stays near the average, while bottlenecked faulty networks show a
heavy tail concentrated on the cut edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_tree
from ..util.rng import SeedLike, as_generator

__all__ = ["RoutingLoad", "route_permutation"]


@dataclass(frozen=True)
class RoutingLoad:
    """Congestion digest of one routed demand set."""

    max_congestion: int
    mean_congestion: float
    routed: int
    failed: int
    total_path_length: int

    @property
    def congestion_imbalance(self) -> float:
        """``max / mean`` congestion — 1.0 is perfectly spread."""
        if self.mean_congestion <= 0:
            return float("nan")
        return self.max_congestion / self.mean_congestion


def route_permutation(
    graph: Graph,
    *,
    n_demands: int | None = None,
    seed: SeedLike = None,
) -> RoutingLoad:
    """Route a random (partial) permutation along BFS shortest paths.

    Each demand is a (source, target) pair from a random permutation of the
    nodes; paths come from per-source BFS trees.  Demands whose endpoints are
    disconnected count as ``failed``.
    """
    if graph.n < 2:
        raise InvalidParameterError("routing needs at least 2 nodes")
    rng = as_generator(seed)
    n = graph.n
    k = n if n_demands is None else min(int(n_demands), n)
    if k < 1:
        raise InvalidParameterError("need at least one demand")
    sources = rng.choice(n, size=k, replace=False)
    targets = rng.permutation(sources)
    order = np.argsort(sources, kind="stable")
    sources, targets = sources[order], targets[order]
    usage: Dict[Tuple[int, int], int] = {}
    routed = failed = total_len = 0
    i = 0
    while i < k:
        s = int(sources[i])
        parent = bfs_tree(graph, s)
        while i < k and sources[i] == s:
            t = int(targets[i])
            i += 1
            if t == s:
                routed += 1
                continue
            if parent[t] < 0:
                failed += 1
                continue
            v = t
            while v != s:
                p = int(parent[v])
                key = (min(v, p), max(v, p))
                usage[key] = usage.get(key, 0) + 1
                v = p
                total_len += 1
            routed += 1
    if usage:
        counts = np.fromiter(usage.values(), dtype=np.int64)
        max_c, mean_c = int(counts.max()), float(counts.mean())
    else:
        max_c, mean_c = 0, 0.0
    return RoutingLoad(
        max_congestion=max_c,
        mean_congestion=mean_c,
        routed=routed,
        failed=failed,
        total_path_length=total_len,
    )
