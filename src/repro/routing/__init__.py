"""Routing-consequence substrate: stretch, diffusion balancing, congestion."""

from .flow import RoutingLoad, route_permutation
from .loadbalance import (
    DiffusionResult,
    diffusion_rounds_to_balance,
    diffusion_step_matrix,
)
from .paths import (
    StretchStats,
    expansion_distance_bound,
    sampled_diameter,
    stretch_statistics,
)

__all__ = [
    "StretchStats",
    "stretch_statistics",
    "sampled_diameter",
    "expansion_distance_bound",
    "DiffusionResult",
    "diffusion_rounds_to_balance",
    "diffusion_step_matrix",
    "RoutingLoad",
    "route_permutation",
]
