"""Cascading load-redistribution faults and edge-*addition* "faults".

The paper's model is static: a fault set is drawn once and analysis runs
on the survivors.  The related literature motivates two dynamic twists:

* **Load cascades** (Motter–Lai style; cf. Witthaut & Timme's nonlocal
  failure propagation): every node starts with load equal to its degree
  and capacity ``(1 + alpha) * load``.  A seed set fails; each round, every
  newly failed node's load is split equally among its still-alive
  neighbours, and any node pushed over capacity fails in the next round.
  The cascade runs to fixpoint, and the full failed set becomes a static
  :class:`~repro.faults.model.FaultScenario` — so the whole downstream
  pipeline (components, pruning, sweeps) applies unchanged.
* **Edge additions** (Hayashi & Matsukubo's shortcut hardening): a
  "fault" that *adds* ``k`` random shortcut edges instead of removing
  nodes.  The scenario has an empty fault set and a surviving graph with
  extra edges, which measures the robustness *gain* of link addition
  through the same analysis path as every degradation experiment.

:func:`cascade_fixpoint` is the scalar reference loop for the batched
kernel in :mod:`repro.batch.rounds`; the two are kept bit-identical (same
per-round operations, same CSR-segment summation order) and the contract
is enforced by ``tests/batch/test_cascade_differential.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator
from .model import FaultScenario, apply_node_faults
from ..api.registry import register_fault_model

__all__ = [
    "check_cascade_params",
    "cascade_fixpoint",
    "load_cascade",
    "add_edge_faults",
]


def check_cascade_params(n: int, alpha: float, n_seeds: int) -> Tuple[float, int]:
    """Validate cascade parameters (shared with the batched mask sampler)."""
    alpha = float(alpha)
    if not np.isfinite(alpha) or alpha < 0.0:
        raise InvalidParameterError(
            f"alpha must be a finite float >= 0, got {alpha!r}"
        )
    n_seeds = int(n_seeds)
    if not 1 <= n_seeds <= n:
        raise InvalidParameterError(
            f"n_seeds must satisfy 1 <= n_seeds <= n={n}, got {n_seeds}"
        )
    return alpha, n_seeds


def _row_sums(values: np.ndarray, graph: Graph) -> np.ndarray:
    """Sum ``values`` (one entry per directed CSR slot) over each node's
    neighbour segment, in CSR slot order.

    The one-element padding keeps ``reduceat`` in bounds when the last
    node has degree 0; empty segments read garbage from the pad/next
    segment, so isolated rows are zeroed explicitly.  The batched kernel
    (:func:`repro.batch.rounds.cascade_rounds`) performs the identical
    padded ``reduceat`` per mask row, which is what makes the two
    implementations bit-identical.
    """
    idx = graph.index
    m2 = graph.indices.shape[0]
    buf = np.zeros(m2 + 1, dtype=values.dtype)
    buf[:m2] = values
    out = np.add.reduceat(buf, idx.starts) if graph.n else buf[:0]
    if idx.has_isolated:
        out[idx.isolated] = 0
    return out


def cascade_fixpoint(
    graph: Graph, seed_mask: np.ndarray, alpha: float
) -> Tuple[np.ndarray, int]:
    """Run one load-redistribution cascade to fixpoint (scalar reference).

    Initial load = degree; capacity = ``(1 + alpha) * load``.  Each round,
    every newly failed node's accumulated load is split equally among its
    still-alive neighbours (load reaching no survivor is lost), then every
    alive node over capacity fails.  Returns ``(failed_mask, rounds)``
    where ``rounds`` counts the redistribution rounds that recruited at
    least one new failure (0 when the seeds overload nobody).
    """
    seed_mask = np.asarray(seed_mask)
    if seed_mask.shape != (graph.n,) or seed_mask.dtype != np.bool_:
        raise InvalidParameterError(
            f"seed mask must be boolean of shape ({graph.n},), "
            f"got shape {seed_mask.shape} dtype {seed_mask.dtype}"
        )
    if graph.n == 0:
        return seed_mask.copy(), 0
    indices = graph.indices
    load = graph.index.degrees.astype(np.float64)
    capacity = (1.0 + float(alpha)) * load
    failed = seed_mask.copy()
    newly = seed_mask.copy()
    rounds = 0
    while newly.any():
        alive = ~failed
        alive_deg = _row_sums(alive[indices].astype(np.int64), graph)
        denom = np.where(alive_deg > 0, alive_deg, 1).astype(np.float64)
        share = np.where(newly & (alive_deg > 0), load / denom, 0.0)
        incoming = _row_sums(share[indices], graph)
        load = np.where(alive, load + incoming, load)
        newly = alive & (load > capacity)
        if not newly.any():
            break
        failed |= newly
        rounds += 1
    return failed, rounds


@register_fault_model("cascade")
def load_cascade(
    graph: Graph, alpha: float, n_seeds: int = 1, seed: SeedLike = None
) -> FaultScenario:
    """Load-redistribution cascade triggered by ``n_seeds`` random failures.

    ``alpha`` is the tolerance margin: capacity ``(1 + alpha) * load``.
    Small ``alpha`` lets a single seed failure snowball through the
    network; large ``alpha`` confines the damage to the seeds.
    """
    alpha, n_seeds = check_cascade_params(graph.n, alpha, n_seeds)
    rng = as_generator(seed)
    seeds = rng.choice(graph.n, size=n_seeds, replace=False).astype(np.int64)
    seed_mask = np.zeros(graph.n, dtype=bool)
    seed_mask[seeds] = True
    failed, _rounds = cascade_fixpoint(graph, seed_mask, alpha)
    return apply_node_faults(
        graph,
        np.flatnonzero(failed),
        kind=f"cascade(alpha={alpha:g},seeds={n_seeds})",
    )


@register_fault_model("add_edges")
def add_edge_faults(graph: Graph, k: int, seed: SeedLike = None) -> FaultScenario:
    """The anti-fault: add ``k`` random shortcut edges, remove nothing.

    The scenario has an empty fault set (``f = 0``) and a surviving graph
    on the same nodes with ``k`` extra non-adjacent pairs connected, so
    robustness *gains* flow through the identical analysis pipeline as
    every degradation model.
    """
    from ..graphs.generators.smallworld import sample_shortcut_edges

    k = int(k)
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    kind = f"add_edges(k={k})"
    no_faults = np.empty(0, dtype=np.int64)
    if k == 0:
        return FaultScenario(
            original=graph, surviving=graph, faulty_nodes=no_faults, kind=kind
        )
    rng = as_generator(seed)
    new_edges = sample_shortcut_edges(graph, k, rng)
    edges = np.concatenate([graph.edge_array(), new_edges], axis=0)
    augmented = Graph.from_edges(
        graph.n, edges, name=f"{graph.name}+e{k}", coords=graph.coords
    )
    return FaultScenario(
        original=graph, surviving=augmented, faulty_nodes=no_faults, kind=kind
    )
