"""Fault models: random (Section 3) and adversarial (Section 2) node faults."""

from .adversary import (
    degree_attack,
    greedy_boundary_attack,
    random_attack,
    separator_attack,
)
from .attacks_chain import chain_center_attack
from .attacks_mesh import axis_cut_attack, recursive_bisection_attack
from .cascade import add_edge_faults, cascade_fixpoint, load_cascade
from .model import FaultScenario, apply_node_faults
from .random_faults import random_edge_faults, random_node_faults, sample_fault_mask

__all__ = [
    "FaultScenario",
    "apply_node_faults",
    "random_node_faults",
    "random_edge_faults",
    "sample_fault_mask",
    "load_cascade",
    "cascade_fixpoint",
    "add_edge_faults",
    "separator_attack",
    "greedy_boundary_attack",
    "degree_attack",
    "random_attack",
    "chain_center_attack",
    "recursive_bisection_attack",
    "axis_cut_attack",
]
