"""The recursive-bisection attack of Theorem 2.5.

For a graph of uniform expansion ``α(·)``, the proof of Theorem 2.5 removes
the node boundary ``Γ(U)`` of a minimum-expansion set in the current largest
piece, replaces that piece by its two halves, and repeats until every piece
has fewer than ``ε·n`` nodes.  The total number of removed nodes is
``O(log(1/ε)/ε · α(n) · n)``.

:func:`recursive_bisection_attack` implements the proof's process directly,
with the minimum-expansion set found by sweep + refinement (exact enumeration
for tiny pieces).  For axis-aligned families (meshes/tori) we also provide
:func:`axis_cut_attack`, which removes coordinate hyperplanes — the natural
optimal separator — so experiments can compare the generic process against
the geometric one.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import node_boundary
from ..graphs.traversal import connected_components, component_sizes
from ..expansion.exact import node_expansion_exact
from ..expansion.local import refine_cut
from ..expansion.sweep import best_node_sweep_cut
from .model import FaultScenario, apply_node_faults
from ..api.registry import register_fault_model

__all__ = ["recursive_bisection_attack", "axis_cut_attack"]


def _min_expansion_set(piece: Graph) -> np.ndarray:
    """Best-effort minimum node-expansion set of a connected piece (local ids)."""
    if piece.n <= 12:
        return node_expansion_exact(piece, max_nodes=12).witness
    cut = best_node_sweep_cut(piece)
    return refine_cut(piece, cut.nodes, "node")


@register_fault_model("recursive_bisection")
def recursive_bisection_attack(
    graph: Graph, epsilon: float, *, max_rounds: int | None = None
) -> FaultScenario:
    """Run Theorem 2.5's shattering process until all pieces are ``< ε·n``.

    Parameters
    ----------
    graph:
        Connected graph of (presumed) uniform expansion.
    epsilon:
        Target piece-size fraction ``ε ∈ (0, 1)``; the process stops
        splitting pieces smaller than ``ε·n``.
    max_rounds:
        Safety valve on the number of split operations (default ``4/ε``).

    Returns
    -------
    FaultScenario
        ``kind`` records ε; the fault count is what Theorem 2.5 bounds by
        ``O(log(1/ε)/ε · α(n)·n)``.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    n = graph.n
    threshold = max(2, int(np.ceil(epsilon * n)))
    rounds_cap = max_rounds if max_rounds is not None else int(np.ceil(4.0 / epsilon)) + 8
    faulty: List[int] = []
    # max-heap of (−size, counter, node-id-array) over current pieces
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    heap: list = []
    counter = 0
    for lbl in range(sizes.shape[0]):
        ids = np.flatnonzero(labels == lbl)
        heapq.heappush(heap, (-ids.size, counter, ids))
        counter += 1
    rounds = 0
    while heap and rounds < rounds_cap:
        neg_size, _, ids = heapq.heappop(heap)
        if -neg_size < threshold:
            break  # largest piece already small enough: done
        piece = graph.subgraph(ids)
        local_set = _min_expansion_set(piece)
        separator_local = node_boundary(piece, local_set)
        if separator_local.size == 0:
            # piece has a zero-expansion set => it is disconnected; requeue parts
            sub_labels = connected_components(piece)
            for lbl in range(int(sub_labels.max()) + 1):
                part = piece.original_ids[np.flatnonzero(sub_labels == lbl)]
                heapq.heappush(heap, (-part.size, counter, part))
                counter += 1
            rounds += 1
            continue
        separator = piece.original_ids[separator_local]
        faulty.extend(int(v) for v in separator)
        keep_mask = np.ones(piece.n, dtype=bool)
        keep_mask[separator_local] = False
        remaining = piece.subgraph(np.flatnonzero(keep_mask))
        sub_labels = connected_components(remaining)
        n_parts = int(sub_labels.max()) + 1 if remaining.n else 0
        for lbl in range(n_parts):
            part = remaining.original_ids[np.flatnonzero(sub_labels == lbl)]
            heapq.heappush(heap, (-part.size, counter, part))
            counter += 1
        rounds += 1
    fault_arr = np.array(sorted(set(faulty)), dtype=np.int64)
    return apply_node_faults(
        graph, fault_arr, kind=f"adversary:recursive-bisection(eps={epsilon:g})"
    )


@register_fault_model("axis_cut")
def axis_cut_attack(graph: Graph, epsilon: float) -> FaultScenario:
    """Geometric shattering of a mesh/torus into blocks of ``< ε·n`` nodes.

    Requires :attr:`Graph.coords`; deletes evenly spaced coordinate
    hyperplanes along every axis so the surviving blocks have at most
    ``ε·n`` nodes.  This is the hand-crafted adversary that realises
    Theorem 2.5's bound with good constants on meshes.
    """
    if graph.coords is None:
        raise InvalidParameterError("axis_cut_attack requires coordinate metadata")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    coords = graph.coords
    d = coords.shape[1]
    sides = coords.max(axis=0) + 1
    # choose per-axis block length so prod(block) <= eps * n
    block = np.maximum(1, np.floor(sides * epsilon ** (1.0 / d)).astype(np.int64))
    fault_mask = np.zeros(graph.n, dtype=bool)
    for axis in range(d):
        period = int(block[axis]) + 1
        col = coords[:, axis]
        # cut every `period`-th hyperplane, plus the top face so the
        # wrap-around seam of a torus is always severed
        fault_mask |= (col % period == int(block[axis])) | (col == int(sides[axis]) - 1)
    return apply_node_faults(
        graph,
        np.flatnonzero(fault_mask),
        kind=f"adversary:axis-cuts(eps={epsilon:g})",
    )
