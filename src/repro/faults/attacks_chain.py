"""The chain-centre attack of Theorem 2.3.

On the chain-replacement graph ``H(G, k)`` (see
:mod:`repro.graphs.generators.chains`) the paper's adversary removes the
central node of every chain: ``m = δ·n/2`` faults, which is a
``Θ(1/k) = Θ(α(H))`` fraction of ``H``'s nodes, and every surviving
component has at most ``δ·k/2 + O(1)`` nodes — sublinear in ``N``.

:func:`chain_center_attack` implements exactly this; a partial-budget variant
removes centres of a random subset of chains, which is what the E3 sweep uses
to trace the disintegration curve.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.generators.chains import ChainReplacement
from ..util.rng import SeedLike, as_generator
from .model import FaultScenario, apply_node_faults
from ..api.registry import register_fault_model

__all__ = ["chain_center_attack"]


@register_fault_model("chain_center", takes_raw=True)
def chain_center_attack(
    chain: ChainReplacement,
    *,
    fraction: float = 1.0,
    seed: SeedLike = None,
) -> FaultScenario:
    """Remove the centre node of (a fraction of) every chain in ``H(G, k)``.

    Parameters
    ----------
    chain:
        The chain-replacement record (graph + chain bookkeeping).
    fraction:
        Fraction of chains whose centre is removed, in ``[0, 1]``.  At 1.0
        this is the exact Theorem 2.3 attack; smaller values interpolate for
        sweep plots.
    seed:
        RNG spec (only used when ``fraction < 1``).

    Returns
    -------
    FaultScenario
        Faults are centre nodes only; ``kind`` records the fraction.
    """
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in [0, 1], got {fraction}")
    centers = chain.center_nodes
    m = centers.shape[0]
    count = int(round(fraction * m))
    if count >= m:
        chosen = centers
    elif count == 0:
        chosen = np.empty(0, dtype=np.int64)
    else:
        rng = as_generator(seed)
        chosen = rng.choice(centers, size=count, replace=False)
    return apply_node_faults(
        chain.graph,
        np.sort(chosen),
        kind=f"adversary:chain-centers(fraction={fraction:g})",
    )
