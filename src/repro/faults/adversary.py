"""Adversarial fault strategies — the Section 2 fault model.

The paper's adversary is unconstrained; these strategies are the strongest
practical attacks against expansion we can compute:

* :func:`separator_attack` — spend the budget on node-boundary separators of
  low-expansion cuts (found by sweep + refinement), recursing into the larger
  remaining piece.  This is the generic "create bottlenecks" adversary the
  proof of Theorem 2.1 defends against.
* :func:`greedy_boundary_attack` — repeatedly delete the node whose removal
  most shrinks the largest component (1-step lookahead over boundary
  candidates); a strong baseline.
* :func:`degree_attack` — classic highest-degree-first attack (baseline;
  provably weak against regular graphs, included for contrast).
* :func:`random_attack` — the random baseline, for adversarial-vs-random
  comparisons at equal budgets.

All attacks take a fault *budget* ``f`` and return a :class:`FaultScenario`
with exactly ``min(f, n)`` faults.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import node_boundary
from ..graphs.traversal import connected_components, component_sizes
from ..expansion.local import refine_cut
from ..expansion.sweep import best_node_sweep_cut
from ..util.rng import SeedLike, as_generator
from ..util.validation import check_nonnegative_int
from .model import FaultScenario, apply_node_faults
from ..api.registry import register_fault_model

__all__ = [
    "separator_attack",
    "greedy_boundary_attack",
    "degree_attack",
    "random_attack",
]


def _check_budget(graph: Graph, budget: int) -> int:
    budget = check_nonnegative_int(budget, "budget")
    return min(budget, graph.n)


@register_fault_model("separator")
def separator_attack(graph: Graph, budget: int, *, min_piece: int = 4) -> FaultScenario:
    """Recursive separator deletion.

    At each step, find a low-node-expansion cut ``S`` of the current largest
    component, delete ``Γ(S)`` (the separator), and recurse on the largest
    remaining piece while budget remains.  Components smaller than
    ``min_piece`` are never split further.
    """
    budget = _check_budget(graph, budget)
    faulty: list[int] = []
    alive = np.ones(graph.n, dtype=bool)
    while len(faulty) < budget:
        ids = np.flatnonzero(alive)
        if ids.size < min_piece:
            break
        sub = graph.subgraph(ids)
        labels = connected_components(sub)
        sizes = component_sizes(labels)
        big = int(np.argmax(sizes))
        comp_local = np.flatnonzero(labels == big)
        if comp_local.size < min_piece:
            break
        comp = sub.subgraph(comp_local)
        try:
            cut = best_node_sweep_cut(comp)
        except Exception:
            break
        cut_nodes = refine_cut(comp, cut.nodes, "node")
        separator_local = node_boundary(comp, cut_nodes)
        if separator_local.size == 0:
            break
        room = budget - len(faulty)
        separator_local = separator_local[:room]
        # map back: comp ids -> sub ids -> graph ids
        sub_ids = comp.original_ids[separator_local]
        # comp.original_ids maps into *graph* already (composition through sub)
        faulty.extend(int(v) for v in sub_ids)
        alive[sub_ids] = False
    fault_arr = np.array(sorted(set(faulty)), dtype=np.int64)
    return apply_node_faults(graph, fault_arr, kind=f"adversary:separator(f={budget})")


@register_fault_model("greedy_boundary")
def greedy_boundary_attack(
    graph: Graph, budget: int, *, candidate_pool: int = 32, seed: SeedLike = None
) -> FaultScenario:
    """1-step-lookahead attack on the largest component.

    At each step, sample up to ``candidate_pool`` nodes from the largest
    component's articulation-rich region (nodes adjacent to the component's
    sweep-cut separator when available, otherwise random members), delete
    the one that minimises the resulting largest-component size.
    """
    budget = _check_budget(graph, budget)
    rng = as_generator(seed)
    alive = np.ones(graph.n, dtype=bool)
    faulty: list[int] = []
    for _ in range(budget):
        ids = np.flatnonzero(alive)
        if ids.size == 0:
            break
        sub = graph.subgraph(ids)
        labels = connected_components(sub)
        sizes = component_sizes(labels)
        big = int(np.argmax(sizes))
        comp_local = np.flatnonzero(labels == big)
        if comp_local.size <= 1:
            # nothing meaningful left to attack; spend budget randomly
            pick = int(ids[rng.integers(ids.size)])
            faulty.append(pick)
            alive[pick] = False
            continue
        pool_size = min(candidate_pool, comp_local.size)
        pool_local = rng.choice(comp_local, size=pool_size, replace=False)
        best_node = None
        best_score = None
        for v_local in pool_local.tolist():
            keep = comp_local[comp_local != v_local]
            piece = sub.subgraph(keep)
            piece_labels = connected_components(piece)
            score = int(component_sizes(piece_labels).max()) if piece.n else 0
            if best_score is None or score < best_score:
                best_score = score
                best_node = v_local
        pick = int(sub.original_ids[best_node])
        faulty.append(pick)
        alive[pick] = False
    fault_arr = np.array(sorted(set(faulty)), dtype=np.int64)
    return apply_node_faults(graph, fault_arr, kind=f"adversary:greedy(f={budget})")


@register_fault_model("degree")
def degree_attack(graph: Graph, budget: int) -> FaultScenario:
    """Delete the ``budget`` highest-degree nodes (ties by id)."""
    budget = _check_budget(graph, budget)
    order = np.lexsort((np.arange(graph.n), -graph.degrees))
    faults = np.sort(order[:budget]).astype(np.int64)
    return apply_node_faults(graph, faults, kind=f"adversary:degree(f={budget})")


@register_fault_model("random_budget")
def random_attack(graph: Graph, budget: int, seed: SeedLike = None) -> FaultScenario:
    """Uniform random faults at a fixed budget (the fair baseline)."""
    budget = _check_budget(graph, budget)
    rng = as_generator(seed)
    faults = np.sort(rng.choice(graph.n, size=budget, replace=False)).astype(np.int64)
    return apply_node_faults(graph, faults, kind=f"random-budget(f={budget})")
