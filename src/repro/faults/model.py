"""Fault scenario record: which nodes failed, and the surviving graph.

The paper's model is *static node faults* (§1.3): a set of nodes breaks down,
either at random or adversarially, and analysis proceeds on the induced
surviving graph ``G_f``.  :class:`FaultScenario` bundles the fault set with
both graphs and the provenance needed to translate surviving-node statements
back to original ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..util.validation import check_node_array

__all__ = ["FaultScenario", "apply_node_faults"]


@dataclass(frozen=True)
class FaultScenario:
    """A static node-fault event on a network.

    Attributes
    ----------
    original:
        The fault-free network ``G``.
    surviving:
        The faulty network ``G_f`` (induced subgraph on survivors; its
        ``original_ids`` map back into ``original``).
    faulty_nodes:
        Sorted ids (in ``original``) of the failed nodes.
    kind:
        Provenance tag, e.g. ``"random(p=0.1)"`` or ``"adversary:bisection"``.
    """

    original: Graph
    surviving: Graph
    faulty_nodes: np.ndarray
    kind: str = "unspecified"

    @property
    def f(self) -> int:
        """Number of faults ``f``."""
        return int(self.faulty_nodes.shape[0])

    @property
    def fault_fraction(self) -> float:
        """``f / n`` relative to the original network."""
        return self.f / self.original.n if self.original.n else 0.0

    @property
    def surviving_nodes(self) -> np.ndarray:
        """Ids (in ``original``) of surviving nodes."""
        mask = np.ones(self.original.n, dtype=bool)
        mask[self.faulty_nodes] = False
        return np.flatnonzero(mask)

    def __post_init__(self) -> None:
        if self.surviving.n + self.f != self.original.n:
            raise InvalidParameterError(
                "surviving graph size + fault count must equal original size"
            )


def apply_node_faults(
    graph: Graph, faulty_nodes: np.ndarray, *, kind: str = "unspecified"
) -> FaultScenario:
    """Remove ``faulty_nodes`` from ``graph`` and package the scenario."""
    faults = check_node_array(faulty_nodes, graph.n, "faulty_nodes")
    surviving = graph.without_nodes(faults)
    return FaultScenario(
        original=graph, surviving=surviving, faulty_nodes=faults, kind=kind
    )
