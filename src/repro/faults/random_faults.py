"""Random (i.i.d.) fault injection — the Section 3 fault model.

Each node fails independently with probability ``p``; edge faults (used for
bond-percolation cross-checks) kill each edge independently.  All functions
are vectorised single Bernoulli draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator
from ..util.validation import check_probability
from .model import FaultScenario, apply_node_faults
from ..api.registry import register_fault_model

__all__ = ["random_node_faults", "random_edge_faults", "sample_fault_mask"]


def sample_fault_mask(
    n: int, p: float, seed: SeedLike = None, *, protected: Optional[np.ndarray] = None
) -> np.ndarray:
    """Boolean fault mask: entry ``True`` means the node failed.

    ``protected`` nodes never fail (used e.g. to keep BFS anchors alive in
    routing experiments).
    """
    p = check_probability(p)
    rng = as_generator(seed)
    mask = rng.random(n) < p
    if protected is not None and len(protected):
        mask[np.asarray(protected, dtype=np.int64)] = False
    return mask


@register_fault_model("random_node")
def random_node_faults(
    graph: Graph,
    p: float,
    seed: SeedLike = None,
    *,
    protected: Optional[np.ndarray] = None,
) -> FaultScenario:
    """Fail each node independently with probability ``p``."""
    mask = sample_fault_mask(graph.n, p, seed, protected=protected)
    return apply_node_faults(graph, np.flatnonzero(mask), kind=f"random(p={p:g})")


def random_edge_faults(graph: Graph, p: float, seed: SeedLike = None) -> Graph:
    """Fail each *edge* independently with probability ``p``.

    Returns the surviving graph on the same node set (node ids unchanged).
    Used by the bond-percolation benchmarks; the paper's main model is node
    faults, so no :class:`FaultScenario` wrapper is provided here.
    """
    p = check_probability(p)
    rng = as_generator(seed)
    edges = graph.edge_array()
    keep = rng.random(edges.shape[0]) >= p
    survived = Graph.from_edges(graph.n, edges[keep], name=f"{graph.name}|edge-faults")
    return survived
