"""Fault-displacement remapping: embed an ideal guest into a faulty host.

The emulation experiments need a concrete strategy for mapping a fault-free
guest network onto the surviving portion of a faulty host of the same
topology.  We use *nearest-survivor displacement*: every guest node that
mapped to a failed host node is re-routed to the nearest surviving host node
(BFS distance in the fault-free host, which the guest knows), ties broken by
id.  This is the simple static strategy whose quality degrades gracefully
with the fault density — exactly the behaviour the embedding metrics are
meant to expose.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..faults.model import FaultScenario
from ..graphs.graph import Graph, neighbors_of_many
from .embed import EmbeddingMetrics, embed_with_bfs_paths

__all__ = ["nearest_survivor_mapping", "emulate_after_faults"]


def nearest_survivor_mapping(scenario: FaultScenario) -> np.ndarray:
    """Map every original node to its nearest survivor (survivor-local ids).

    Survivor nodes map to themselves.  Returns an array ``mapping`` of length
    ``original.n`` with values indexing into ``scenario.surviving``; raises
    if some node has no surviving node in its component.
    """
    original = scenario.original
    survivors = scenario.surviving_nodes
    if survivors.size == 0:
        raise InvalidParameterError("no survivors to map onto")
    # multi-source BFS from all survivors, tracking the nearest source
    owner = np.full(original.n, -1, dtype=np.int64)
    owner[survivors] = survivors
    frontier = survivors
    while frontier.size:
        counts = original.indptr[frontier + 1] - original.indptr[frontier]
        srcs = np.repeat(frontier, counts)
        nbrs = neighbors_of_many(original, frontier)
        newly = owner[nbrs] == -1
        nbrs, srcs = nbrs[newly], srcs[newly]
        if nbrs.size == 0:
            break
        uniq, first = np.unique(nbrs, return_index=True)
        owner[uniq] = owner[srcs[first]]
        frontier = uniq
    if np.any(owner < 0):
        raise NotConnectedError(
            "some original nodes have no surviving node in their component"
        )
    # translate owner (original ids) into survivor-local ids
    local = np.searchsorted(survivors, owner)
    return local.astype(np.int64)


def emulate_after_faults(scenario: FaultScenario) -> EmbeddingMetrics:
    """Embed the fault-free network into its faulty self and score it.

    Guest = ``scenario.original``; host = ``scenario.surviving``; mapping =
    nearest-survivor displacement.  The returned load/congestion/dilation
    quantify the emulation slowdown à la Section 1.2.
    """
    mapping = nearest_survivor_mapping(scenario)
    return embed_with_bfs_paths(scenario.original, scenario.surviving, mapping)
