"""Embedding/emulation substrate (Section 1.2): load, congestion, dilation."""

from .embed import EmbeddingMetrics, embed_with_bfs_paths, identity_embedding_metrics
from .remap import emulate_after_faults, nearest_survivor_mapping

__all__ = [
    "EmbeddingMetrics",
    "embed_with_bfs_paths",
    "identity_embedding_metrics",
    "nearest_survivor_mapping",
    "emulate_after_faults",
]
