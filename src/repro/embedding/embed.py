"""Static graph embeddings with load / congestion / dilation accounting.

Section 1.2 of the paper frames the emulation question through embeddings:
map guest nodes to host nodes and guest edges to host paths; by
Leighton–Maggs–Rao the host then emulates each guest step with slowdown
``O(ℓ + c + d)`` where ℓ is the maximum load, c the maximum edge congestion
and d the maximum path length (dilation).

This module measures those three quantities for any given mapping, with
paths realised as BFS shortest paths in the host.  It is the substrate for
the E9-style "faulty network still emulates its ideal self" checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_tree

__all__ = ["EmbeddingMetrics", "embed_with_bfs_paths", "identity_embedding_metrics"]


@dataclass(frozen=True)
class EmbeddingMetrics:
    """Load / congestion / dilation of one embedding."""

    load: int
    congestion: int
    dilation: int
    n_guest_nodes: int
    n_guest_edges: int

    @property
    def slowdown_bound(self) -> int:
        """Leighton–Maggs–Rao style additive slowdown ``ℓ + c + d``."""
        return self.load + self.congestion + self.dilation


def embed_with_bfs_paths(
    guest: Graph,
    host: Graph,
    mapping: np.ndarray,
) -> EmbeddingMetrics:
    """Score the embedding that maps guest node ``i`` to ``mapping[i]`` and
    each guest edge to a host BFS shortest path.

    Paths are taken from per-source BFS trees (grouped by source for
    efficiency); congestion counts undirected host-edge usages.

    Raises
    ------
    NotConnectedError
        If some guest edge's endpoints are disconnected in the host.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (guest.n,):
        raise InvalidParameterError(
            f"mapping must have shape ({guest.n},), got {mapping.shape}"
        )
    if mapping.size and (mapping.min() < 0 or mapping.max() >= host.n):
        raise InvalidParameterError("mapping targets outside host")
    load = int(np.bincount(mapping, minlength=host.n).max()) if mapping.size else 0
    edges = guest.edge_array()
    if edges.size == 0:
        return EmbeddingMetrics(load, 0, 0, guest.n, 0)
    hosts_u = mapping[edges[:, 0]]
    hosts_v = mapping[edges[:, 1]]
    # group by source host node so each distinct source costs one BFS tree
    order = np.argsort(hosts_u, kind="stable")
    hosts_u, hosts_v = hosts_u[order], hosts_v[order]
    congestion: Dict[Tuple[int, int], int] = {}
    dilation = 0
    i = 0
    while i < hosts_u.shape[0]:
        src = int(hosts_u[i])
        j = i
        parent = bfs_tree(host, src)
        while j < hosts_u.shape[0] and hosts_u[j] == src:
            dst = int(hosts_v[j])
            if dst != src:
                if parent[dst] < 0:
                    raise NotConnectedError(
                        f"guest edge maps to disconnected host pair ({src}, {dst})"
                    )
                length = 0
                v = dst
                while v != src:
                    p = int(parent[v])
                    key = (min(v, p), max(v, p))
                    congestion[key] = congestion.get(key, 0) + 1
                    v = p
                    length += 1
                dilation = max(dilation, length)
            j += 1
        i = j
    max_congestion = max(congestion.values()) if congestion else 0
    return EmbeddingMetrics(
        load=load,
        congestion=max_congestion,
        dilation=dilation,
        n_guest_nodes=guest.n,
        n_guest_edges=int(edges.shape[0]),
    )


def identity_embedding_metrics(graph: Graph) -> EmbeddingMetrics:
    """The trivial self-embedding (sanity baseline: ℓ = 1, c = 1, d = 1)."""
    return embed_with_bfs_paths(graph, graph, np.arange(graph.n, dtype=np.int64))
