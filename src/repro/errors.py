"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single type at API boundaries.  Subclasses distinguish input
validation failures from algorithmic failures (e.g. a solver not converging),
which callers may want to handle differently: the former indicate caller bugs,
the latter may warrant a retry with different parameters.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidGraphError",
    "InvalidParameterError",
    "NotConnectedError",
    "SolverError",
    "BudgetExceededError",
    "SpecError",
    "UnknownComponentError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class InvalidGraphError(ReproError, ValueError):
    """A graph input violates a structural requirement.

    Raised e.g. for self loops in edge lists, inconsistent CSR arrays,
    or operations applied to an empty graph.
    """


class InvalidParameterError(ReproError, ValueError):
    """A scalar/array parameter is outside its documented domain."""


class NotConnectedError(ReproError, ValueError):
    """An operation required a connected graph but the input was not."""


class SolverError(ReproError, RuntimeError):
    """A numerical routine (eigensolver, optimiser) failed to converge."""


class BudgetExceededError(ReproError, RuntimeError):
    """An iterative procedure exceeded its configured iteration budget."""


class SpecError(ReproError, ValueError):
    """A declarative scenario spec is malformed or fails to round-trip.

    Raised when deserialising :mod:`repro.api.specs` payloads with missing
    or unknown keys, or values outside their documented domain.
    """


class UnknownComponentError(SpecError, KeyError):
    """A spec referenced a registry key that was never registered."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable
        return self.args[0] if self.args else ""
