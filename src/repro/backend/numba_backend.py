"""Numba backend: JIT-compiled per-trial flood fill (optional).

When ``numba`` is importable, connected components are labelled by an
``@njit``-compiled depth-first flood fill that visits each trial's alive
subgraph once — O(T·(n + m)) total work versus Shiloach–Vishkin's
O(rounds·T·m) — with no per-round temporaries.  Seeds are taken in
ascending node-id order, so every flooded component is labelled by its
smallest alive member: exactly the canonical labelling the numpy backend
converges to, making the two backends bit-identical by construction.

The import is gated: on machines without numba this module still imports
cleanly, :func:`available` reports ``False``, and
:func:`repro.backend.resolve_backend` falls back to numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import Backend

__all__ = ["NumbaBackend", "BACKEND", "available"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the no-numba default environment
    _numba = None

_flood_labels = None


def available() -> bool:
    """Whether the numba backend can be used in this environment."""
    return _numba is not None


def _compile():  # pragma: no cover - requires numba
    """Compile the flood-fill kernel lazily (first kernel call pays it)."""
    global _flood_labels
    if _flood_labels is not None:
        return _flood_labels

    @_numba.njit(cache=True)
    def flood_labels(indptr, indices, alive, keep, has_keep, labels, stack):
        T, n = alive.shape
        for t in range(T):
            for seed in range(n):
                if not alive[t, seed] or labels[t, seed] != -1:
                    continue
                # seeds are visited in ascending id order, so `seed` is
                # the smallest alive id of its component: the canonical
                # label
                labels[t, seed] = seed
                top = 0
                stack[top] = seed
                top = 1
                while top > 0:
                    top -= 1
                    u = stack[top]
                    for s in range(indptr[u], indptr[u + 1]):
                        if has_keep and not keep[t, s]:
                            continue
                        w = indices[s]
                        if alive[t, w] and labels[t, w] == -1:
                            labels[t, w] = seed
                            stack[top] = w
                            top += 1
        return labels

    _flood_labels = flood_labels
    return _flood_labels


class NumbaBackend(Backend):
    """Per-trial flood fill compiled with numba."""

    name = "numba"

    def connected_labels(
        self, graph, alive: np.ndarray, keep: Optional[np.ndarray]
    ) -> np.ndarray:  # pragma: no cover - requires numba
        kernel = _compile()
        T, n = alive.shape
        labels = np.full((T, n), -1, dtype=np.int64)
        stack = np.empty(max(n, 1), dtype=np.int64)
        has_keep = keep is not None
        if keep is None:
            keep = np.empty((1, 1), dtype=np.bool_)
        alive = np.ascontiguousarray(alive)
        keep = np.ascontiguousarray(keep)
        return kernel(graph.indptr, graph.indices, alive, keep, has_keep,
                      labels, stack)


BACKEND = NumbaBackend()
