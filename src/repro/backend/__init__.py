"""Pluggable array backends for the mask-parallel kernels.

Modeled on dgl's backend package: the batched kernels in
:mod:`repro.graphs.traversal` do their validation, degenerate-case
handling and output canonicalisation in pure NumPy, then delegate the one
genuinely hot inner loop — labelling the connected components of ``T``
masked trials — to a backend object resolved here.

Two backends exist:

``numpy``
    The default.  The Shiloach–Vishkin round loop over whole ``(T, 2m)``
    matrices (moved verbatim from ``graphs/traversal.py``).
``numba``
    A per-trial flood fill JIT-compiled with numba, available only when
    ``numba`` is importable.  Asymptotically O(T·(n + m)) versus SV's
    O(rounds·T·m), so it wins on large sparse graphs once warmed up.

Both produce the *canonical* labelling — for each alive node the smallest
alive node id reachable from it, ``-1`` for dead nodes — so results are
bit-identical by construction and the differential harness enforces it.

Selection
---------
:func:`resolve_backend` accepts ``"auto"`` (numba when importable, else
numpy), ``"numpy"``, ``"numba"`` (clean fallback to numpy with a warning
when numba is absent), ``None`` (read the ``REPRO_BACKEND`` environment
variable, default ``auto``), or an already-resolved :class:`Backend`.
``Session(backend=...)`` and the ``--backend`` CLI flag thread a choice
through sweeps and service workers.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Union

import numpy as np

from ..errors import SpecError

__all__ = [
    "Backend",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
]

_ENV_VAR = "REPRO_BACKEND"
_CHOICES = ("auto", "numpy", "numba")


class Backend:
    """Interface every array backend implements.

    The contract for :meth:`connected_labels` mirrors
    :func:`repro.graphs.traversal.batched_connected_components` after
    input canonicalisation: ``alive`` is a ``(T, n)`` boolean matrix with
    ``T >= 1`` rows on a graph with at least one edge; ``keep`` is either
    ``None`` or a ``(T, 2m)`` boolean matrix over directed CSR slots.  The
    result must be ``(T, n)`` int64 where each alive node carries the
    smallest alive node id reachable from it and dead nodes carry ``-1``.
    That labelling is implementation-independent, which is what makes
    cross-backend bit-identity a meaningful (and enforced) property.
    """

    name: str = "?"

    def connected_labels(
        self, graph, alive: np.ndarray, keep: Optional[np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    from . import numba_backend

    names = ["numpy"]
    if numba_backend.available():
        names.append("numba")
    return names


def default_backend_name() -> str:
    """The backend name implied by the environment (``REPRO_BACKEND``,
    default ``auto``)."""
    return os.environ.get(_ENV_VAR, "auto")


def resolve_backend(spec: Union[str, Backend, None] = None) -> Backend:
    """Resolve a backend selector to a :class:`Backend` instance.

    ``None`` defers to the ``REPRO_BACKEND`` environment variable (and
    then to ``auto``); ``"numba"`` falls back to numpy with a warning when
    numba is not importable, so an explicit request never hard-fails on a
    machine without the optional dependency.
    """
    if isinstance(spec, Backend):
        return spec
    name = default_backend_name() if spec is None else str(spec)
    if name not in _CHOICES:
        raise SpecError(
            f"unknown backend {name!r}; expected one of {', '.join(_CHOICES)}"
        )
    from . import numba_backend, numpy_backend

    if name == "numpy":
        return numpy_backend.BACKEND
    if numba_backend.available():
        return numba_backend.BACKEND
    if name == "numba":
        warnings.warn(
            "backend 'numba' requested but numba is not importable; "
            "falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
    return numpy_backend.BACKEND
