"""NumPy backend: Shiloach–Vishkin label propagation over whole matrices.

This is the default backend and the reference implementation — the round
loop below is the one PR5 shipped inside ``graphs/traversal.py``, moved
here verbatim so alternative backends can slot in behind the same
dispatch point.  Derived CSR views (segment starts, the isolated-node
mask) come from the graph's cached :class:`~repro.graphs.index.GraphIndex`
instead of being rebuilt per call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import Backend

__all__ = ["NumpyBackend", "BACKEND"]


class NumpyBackend(Backend):
    """Mask-parallel Shiloach–Vishkin connected components.

    Each round (1) takes the minimum label over every surviving edge via
    one ``(T, 2m)`` gather + ``minimum.reduceat``, (2) *hooks the roots*
    — a node that just learned a smaller label scatters it onto its old
    root, so whole clusters merge per round instead of single hops — and
    (3) pointer-jumps ``label ← label[label]`` to a fixpoint, which
    compresses chains exponentially.  Convergence is O(log n)-ish rounds,
    every round a handful of whole-matrix numpy ops regardless of T.
    """

    name = "numpy"

    def connected_labels(
        self, graph, alive: np.ndarray, keep: Optional[np.ndarray]
    ) -> np.ndarray:
        idx = graph.index
        n = graph.n
        T = alive.shape[0]
        # labels are node ids < n, so a compact dtype halves the memory
        # traffic of the per-round gathers (the hot cost at sweep scale)
        dtype = np.int32 if n + 1 <= np.iinfo(np.int32).max else np.int64
        sent = dtype(n)  # sentinel label: "no alive node"
        full = np.where(alive, np.arange(n, dtype=dtype)[None, :], sent)
        # reduceat needs every segment start in range, and a degree-0
        # node's empty segment would otherwise swallow part of its
        # neighbour's.  One identity column appended to the gather keeps
        # the starts untouched; whatever reduceat reports for empty
        # segments is overwritten below.
        starts = idx.starts
        isolated = idx.isolated
        has_isolated = idx.has_isolated
        m2 = graph.indices.shape[0]
        # Rows (trials) are independent, so a row whose round produced no
        # change is final.  Stacked calls mix rows that converge at very
        # different speeds (a probe ladder spans sub- and near-critical q),
        # and dropping finished rows keeps each round's gathers sized to
        # the rows still moving instead of the slowest straggler.
        act_idx = np.arange(T)
        labels = full
        act_alive = alive
        act_keep = keep
        while act_idx.size:
            A = labels.shape[0]
            rows = np.arange(A)[:, None]
            padded = np.empty((A, n + 1), dtype=dtype)
            gathered = np.empty((A, m2 + 1), dtype=dtype)
            gathered[:, m2] = sent
            padded[:, :n] = labels
            padded[:, n] = sent
            gathered[:, :m2] = padded[:, graph.indices]  # neighbour labels
            if act_keep is not None:
                gathered[:, :m2][~act_keep] = sent
            nbr_min = np.minimum.reduceat(gathered, starts, axis=1)
            if has_isolated:
                nbr_min[:, isolated] = sent
            new = np.minimum(labels, nbr_min)
            new = np.where(act_alive, new, sent)
            # hook the roots: a node that just learned a smaller label
            # scatters it onto its *old* root, so the whole old cluster
            # can follow in this round's jumps instead of one hop per round
            t_idx, v_idx = np.nonzero(new != labels)
            if t_idx.size:
                old_roots = labels[t_idx, v_idx].astype(np.int64)
                flat = t_idx * np.int64(n + 1) + old_roots
                padded[:, :n] = new
                padded[:, n] = sent
                np.minimum.at(padded.ravel(), flat, new[t_idx, v_idx])
                # dead nodes already read sent from ``new`` and the scatter
                # only targets alive roots, so no re-masking is needed
                new = padded[:, :n].copy()
            # pointer jump to a fixpoint: each pass composes the label map
            # with itself, so chains shorten geometrically.  Dead nodes hold
            # the sentinel and ``padded[:, n] = sent``, so the gather maps
            # sent -> sent without an explicit mask.
            while True:
                padded[:, :n] = new
                padded[:, n] = sent
                jumped = padded[rows, new]
                if np.array_equal(jumped, new):
                    break
                new = jumped
            changed = np.any(new != labels, axis=1)
            full[act_idx] = new
            if not changed.all():
                if not changed.any():
                    break
                act_idx = act_idx[changed]
                new = new[changed]
                act_alive = act_alive[changed]
                if act_keep is not None:
                    act_keep = act_keep[changed]
            labels = new
        return np.where(alive, full.astype(np.int64), np.int64(-1))


BACKEND = NumpyBackend()
