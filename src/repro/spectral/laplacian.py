"""Matrix views of graphs: adjacency, Laplacian, normalised Laplacian.

All builders return ``scipy.sparse.csr_matrix`` sharing no state with the
graph.  The normalised Laplacian handles isolated nodes by treating their
degree as 1 (their row/column is then just the identity entry), which keeps
eigensolvers well-posed on faulty graphs that contain isolated survivors.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.graph import Graph

__all__ = ["adjacency_matrix", "laplacian_matrix", "normalized_laplacian"]


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """Unweighted adjacency matrix ``A`` (float64)."""
    data = np.ones(graph.indices.shape[0], dtype=np.float64)
    return sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(graph.n, graph.n)
    )


def laplacian_matrix(graph: Graph) -> sp.csr_matrix:
    """Combinatorial Laplacian ``L = D − A``."""
    a = adjacency_matrix(graph)
    d = sp.diags(graph.degrees.astype(np.float64))
    return (d - a).tocsr()


def normalized_laplacian(graph: Graph) -> sp.csr_matrix:
    """Symmetric normalised Laplacian ``𝓛 = I − D^{-1/2} A D^{-1/2}``.

    Isolated nodes get a unit diagonal entry (consistent with treating their
    degree as 1); eigenvalues still lie in ``[0, 2]``.
    """
    a = adjacency_matrix(graph)
    deg = graph.degrees.astype(np.float64)
    inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1.0)), 1.0)
    d_inv = sp.diags(inv_sqrt)
    lap = sp.identity(graph.n, format="csr") - d_inv @ a @ d_inv
    return lap.tocsr()
