"""Cheeger-type bounds linking the spectral gap to expansion.

Conventions (documented once, used everywhere):

* conductance ``φ(S) = |∂e S| / min(vol(S), vol(V\\S))`` and
  ``φ(G) = min_S φ(S)``;
* the discrete Cheeger inequality for the normalised Laplacian:
  ``λ₂ / 2 ≤ φ(G) ≤ √(2 λ₂)``;
* edge expansion ``αe`` relates to conductance via the degree bounds:
  ``δ_min · φ ≤ αe ≤ δ_max · φ`` (since ``|S|·δ_min ≤ vol(S) ≤ |S|·δ_max``);
* node expansion ``α`` relates to edge expansion via
  ``αe / δ_max ≤ α ≤ αe`` (each boundary node absorbs between 1 and δ
  boundary edges).

These conversions give certified *lower* bounds on both expansions from one
eigenvalue computation; constructive *upper* bounds come from sweep cuts
(:mod:`repro.expansion.sweep`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidGraphError
from ..graphs.graph import Graph
from .eigen import fiedler_vector

__all__ = ["CheegerBounds", "cheeger_bounds"]


@dataclass(frozen=True)
class CheegerBounds:
    """Spectral bounds on conductance and the two expansions."""

    lambda2: float
    conductance_lower: float
    conductance_upper: float
    edge_expansion_lower: float
    node_expansion_lower: float

    def describe(self) -> str:
        return (
            f"λ₂={self.lambda2:.5f}  φ∈[{self.conductance_lower:.5f},"
            f" {self.conductance_upper:.5f}]  αe≥{self.edge_expansion_lower:.5f}"
            f"  α≥{self.node_expansion_lower:.5f}"
        )


def cheeger_bounds(graph: Graph) -> CheegerBounds:
    """Compute :class:`CheegerBounds` for a connected graph with ≥ 1 edge."""
    if graph.m == 0:
        raise InvalidGraphError("cheeger bounds need at least one edge")
    info = fiedler_vector(graph)
    lam = info.lambda2
    dmin = max(graph.min_degree, 1)
    dmax = max(graph.max_degree, 1)
    phi_lo = lam / 2.0
    phi_hi = math.sqrt(max(2.0 * lam, 0.0))
    return CheegerBounds(
        lambda2=lam,
        conductance_lower=phi_lo,
        conductance_upper=phi_hi,
        edge_expansion_lower=dmin * phi_lo,
        node_expansion_lower=dmin * phi_lo / dmax,
    )
