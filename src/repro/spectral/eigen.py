"""Eigen-solvers: spectral gap and Fiedler vector.

Strategy (per the hpc-parallel guide: pick the right linear-algebra call for
the problem):

* small graphs (``n < DENSE_CUTOFF``) use dense ``numpy.linalg.eigh`` on the
  normalised Laplacian — exact, no convergence concerns;
* larger graphs use ``scipy.sparse.linalg.eigsh`` with ``sigma=0``
  (shift-invert) to pull the smallest eigenpairs, falling back to the
  non-shifted Lanczos mode (``which="SM"``) and finally to LOBPCG if ARPACK
  struggles.  A deterministic start vector keeps results reproducible.

All solvers operate per connected graph; callers working with faulty graphs
should extract the component of interest first (the analyzer does this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import NotConnectedError, SolverError
from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from .laplacian import normalized_laplacian

__all__ = ["SpectralInfo", "fiedler_vector", "spectral_gap", "DENSE_CUTOFF"]

#: Below this node count, dense eigendecomposition is both faster and exact.
DENSE_CUTOFF = 400


@dataclass(frozen=True)
class SpectralInfo:
    """Second-smallest normalised-Laplacian eigenpair of a connected graph."""

    lambda2: float
    vector: np.ndarray

    @property
    def gap(self) -> float:
        """Alias: the spectral gap λ₂ of the normalised Laplacian."""
        return self.lambda2


def _dense_fiedler(lap: sp.csr_matrix) -> SpectralInfo:
    dense = lap.toarray()
    vals, vecs = np.linalg.eigh(dense)
    # eigh returns ascending eigenvalues; index 1 is λ₂.
    return SpectralInfo(lambda2=float(max(vals[1], 0.0)), vector=vecs[:, 1].copy())


def _sparse_fiedler(lap: sp.csr_matrix, n: int) -> SpectralInfo:
    v0 = np.linspace(-1.0, 1.0, n)  # deterministic start vector
    try:
        # Shift-invert just *below* zero: the Laplacian itself is singular
        # (0 is an eigenvalue), so sigma=0 would factorise a singular matrix
        # and silently degrade to slow, inaccurate Lanczos.
        vals, vecs = spla.eigsh(lap, k=2, sigma=-1e-2, which="LM", v0=v0, maxiter=5000)
    except Exception:
        try:
            vals, vecs = spla.eigsh(lap, k=2, which="SM", v0=v0, maxiter=5000)
        except Exception:
            try:
                rng = np.random.default_rng(0)
                x = rng.standard_normal((n, 2))
                x[:, 0] = 1.0
                vals, vecs = spla.lobpcg(lap, x, largest=False, maxiter=2000, tol=1e-8)
            except Exception as exc:  # pragma: no cover - last resort path
                raise SolverError(f"all sparse eigensolvers failed: {exc}") from exc
    order = np.argsort(vals)
    vals, vecs = vals[order], vecs[:, order]
    return SpectralInfo(lambda2=float(max(vals[1], 0.0)), vector=vecs[:, 1].copy())


def fiedler_vector(graph: Graph) -> SpectralInfo:
    """λ₂ and its eigenvector for the normalised Laplacian of ``graph``.

    Raises
    ------
    NotConnectedError
        If the graph is disconnected (λ₂ would be 0 and the vector would
        merely indicate components, not a useful cut direction).
    """
    if graph.n < 2:
        raise NotConnectedError("fiedler_vector needs at least 2 nodes")
    if not is_connected(graph):
        raise NotConnectedError("fiedler_vector requires a connected graph")
    lap = normalized_laplacian(graph)
    if graph.n < DENSE_CUTOFF:
        return _dense_fiedler(lap)
    return _sparse_fiedler(lap, graph.n)


def spectral_gap(graph: Graph) -> float:
    """λ₂ of the normalised Laplacian (see :func:`fiedler_vector`)."""
    return fiedler_vector(graph).lambda2
