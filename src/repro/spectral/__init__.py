"""Spectral toolkit: Laplacians, Fiedler vectors, Cheeger bounds."""

from .cheeger import CheegerBounds, cheeger_bounds
from .eigen import DENSE_CUTOFF, SpectralInfo, fiedler_vector, spectral_gap
from .laplacian import adjacency_matrix, laplacian_matrix, normalized_laplacian

__all__ = [
    "adjacency_matrix",
    "laplacian_matrix",
    "normalized_laplacian",
    "SpectralInfo",
    "fiedler_vector",
    "spectral_gap",
    "DENSE_CUTOFF",
    "CheegerBounds",
    "cheeger_bounds",
]
