"""Critical-probability estimation by bisection on the γ curve.

The critical survival probability ``p*`` (paper §1.1) separates the regime
where ``γ`` stays bounded away from 0 from the regime where it vanishes.  On
finite graphs the transition is a smooth sigmoid, so we estimate the
*crossing point* of ``E[γ(q)]`` with a fixed level ``γ_target`` (default
0.2, safely inside the scaling window for the sizes used here) by bisection
with Monte-Carlo evaluations at each probe.

Two probe schedules exist.  The default (``ladder=1``) is classical
bisection: one midpoint probe per round, each probe a full
:func:`~repro.percolation.sites.site_percolation` /
:func:`~repro.percolation.bonds.bond_percolation` call.  With
``ladder=k ≥ 2`` each round evaluates ``k`` evenly spaced interior probes
*in one stacked kernel call*, shrinking the bracket by ``(k+1)×`` per round
(``log2(k+1)`` bisection steps per call) instead of ``2×``.  The ladder
uses the standard monotone percolation coupling: one uniform draw per
(trial, site/bond) per round, thresholded at each probe ``q``, so the k
estimated γ values are monotone in ``q`` by construction and the crossing
probe is well defined within a round.

The estimator returns the final bracket, not a point — honest reporting of
Monte-Carlo precision — and the bench tables print the bracket midpoint with
the literature value side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

import numpy as np

from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator
from ..util.validation import check_fraction, check_positive_int
from .bonds import bond_percolation
from .sites import site_percolation

__all__ = ["ThresholdEstimate", "estimate_critical_probability"]

Mode = Literal["site", "bond"]

_MAX_PROBES = 30  # bisection on [0,1] converges long before this


@dataclass(frozen=True)
class ThresholdEstimate:
    """Bracketed estimate of the critical survival probability."""

    lo: float
    hi: float
    gamma_target: float
    mode: str
    n_probes: int

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo


def _gamma_ladder(
    graph: Graph,
    qs: List[float],
    n_trials: int,
    rng,
    mode: str,
    backend,
) -> np.ndarray:
    """Mean γ at every probe of one ladder round, in one stacked call.

    Monotone coupling: one uniform matrix is drawn for the round and
    thresholded at each probe ``q`` — a site (or bond) alive at ``q`` is
    alive at every larger ``q`` — so the returned means are monotone in
    ``q`` and one kernel call covers the whole ladder.
    """
    from ..batch.metrics import batched_gamma

    k = len(qs)
    n = graph.n
    if n == 0:
        return np.zeros(k, dtype=np.float64)
    if mode == "site":
        uniforms = rng.random((n_trials, n))
        alive = np.empty((k * n_trials, n), dtype=bool)
        for j, q in enumerate(qs):
            alive[j * n_trials: (j + 1) * n_trials] = uniforms < q
        samples = batched_gamma(graph, alive, backend=backend)
    else:
        m = graph.m
        uniforms = rng.random((n_trials, m))
        keep = np.empty((k * n_trials, m), dtype=bool)
        for j, q in enumerate(qs):
            keep[j * n_trials: (j + 1) * n_trials] = uniforms < q
        alive = np.ones((k * n_trials, n), dtype=bool)
        samples = batched_gamma(graph, alive, edge_alive=keep, backend=backend)
    return samples.reshape(k, n_trials).mean(axis=1)


def estimate_critical_probability(
    graph: Graph,
    *,
    mode: Mode = "site",
    gamma_target: float = 0.2,
    n_trials: int = 10,
    tol: float = 0.02,
    seed: SeedLike = None,
    q_lo: float = 0.0,
    q_hi: float = 1.0,
    batch: bool = True,
    ladder: int = 1,
    backend: object = None,
) -> ThresholdEstimate:
    """Bisect for the survival probability where ``E[γ]`` crosses the target.

    Parameters
    ----------
    graph:
        Host graph.
    mode:
        ``"site"`` (node survival — the paper's fault model) or ``"bond"``.
    gamma_target:
        The crossing level in ``(0, 1)``.
    n_trials:
        Monte-Carlo trials per probe.
    tol:
        Stop when the bracket is narrower than this.
    q_lo, q_hi:
        Initial bracket; must satisfy γ(q_lo) < target ≤ γ(q_hi) — with the
        defaults this always holds for connected graphs since γ(1) = 1.
    batch:
        Execution strategy for each probe's trials (batched mask-parallel
        kernels vs scalar union-find) — bit-identical brackets either way;
        ``False`` is the bisection escape hatch the experiment layer
        threads through from ``--no-batch``.
    ladder:
        Probes per batched round.  ``1`` (default) is classical midpoint
        bisection with exactly the historical probe/RNG sequence.
        ``k ≥ 2`` evaluates ``k`` evenly spaced interior probes per round
        in one stacked kernel call (monotone-coupled uniforms), shrinking
        the bracket ``(k+1)×`` per call — same bracketing guarantees,
        different (equally valid) probe schedule, and markedly faster
        when per-call overhead dominates.  Ignored when ``batch=False``.
    backend:
        Kernel backend selector for the batched paths (bit-identical
        results; see :mod:`repro.backend`).
    """
    gamma_target = check_fraction(gamma_target, "gamma_target")
    n_trials = check_positive_int(n_trials, "n_trials")
    ladder = check_positive_int(ladder, "ladder")
    rng = as_generator(seed)

    lo, hi = float(q_lo), float(q_hi)
    probes = 0

    if ladder > 1 and batch:
        while hi - lo > tol and probes < _MAX_PROBES:
            k = min(ladder, _MAX_PROBES - probes)
            step = (hi - lo) / (k + 1)
            qs = [lo + (j + 1) * step for j in range(k)]
            means = _gamma_ladder(graph, qs, n_trials, rng, mode, backend)
            probes += k
            # first probe at/above the target closes the bracket from
            # above; its predecessor (or lo) closes it from below
            new_lo, new_hi = lo, hi
            for q, g in zip(qs, means):
                if g >= gamma_target:
                    new_hi = q
                    break
                new_lo = q
            lo, hi = new_lo, new_hi
        return ThresholdEstimate(
            lo=lo, hi=hi, gamma_target=gamma_target, mode=mode, n_probes=probes
        )

    def gamma(q: float) -> float:
        if mode == "site":
            return site_percolation(
                graph, q, n_trials=n_trials, seed=rng, batch=batch,
                backend=backend,
            ).gamma_mean
        return bond_percolation(
            graph, q, n_trials=n_trials, seed=rng, batch=batch, backend=backend
        ).gamma_mean

    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        g = gamma(mid)
        probes += 1
        if g >= gamma_target:
            hi = mid
        else:
            lo = mid
        if probes > _MAX_PROBES:
            break
    return ThresholdEstimate(
        lo=lo, hi=hi, gamma_target=gamma_target, mode=mode, n_probes=probes
    )
