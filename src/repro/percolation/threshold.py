"""Critical-probability estimation by bisection on the γ curve.

The critical survival probability ``p*`` (paper §1.1) separates the regime
where ``γ`` stays bounded away from 0 from the regime where it vanishes.  On
finite graphs the transition is a smooth sigmoid, so we estimate the
*crossing point* of ``E[γ(q)]`` with a fixed level ``γ_target`` (default
0.2, safely inside the scaling window for the sizes used here) by bisection
with Monte-Carlo evaluations at each probe.

The estimator returns the final bracket, not a point — honest reporting of
Monte-Carlo precision — and the bench tables print the bracket midpoint with
the literature value side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator
from ..util.validation import check_fraction, check_positive_int
from .bonds import bond_percolation
from .sites import site_percolation

__all__ = ["ThresholdEstimate", "estimate_critical_probability"]

Mode = Literal["site", "bond"]


@dataclass(frozen=True)
class ThresholdEstimate:
    """Bracketed estimate of the critical survival probability."""

    lo: float
    hi: float
    gamma_target: float
    mode: str
    n_probes: int

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo


def estimate_critical_probability(
    graph: Graph,
    *,
    mode: Mode = "site",
    gamma_target: float = 0.2,
    n_trials: int = 10,
    tol: float = 0.02,
    seed: SeedLike = None,
    q_lo: float = 0.0,
    q_hi: float = 1.0,
    batch: bool = True,
) -> ThresholdEstimate:
    """Bisect for the survival probability where ``E[γ]`` crosses the target.

    Parameters
    ----------
    graph:
        Host graph.
    mode:
        ``"site"`` (node survival — the paper's fault model) or ``"bond"``.
    gamma_target:
        The crossing level in ``(0, 1)``.
    n_trials:
        Monte-Carlo trials per probe.
    tol:
        Stop when the bracket is narrower than this.
    q_lo, q_hi:
        Initial bracket; must satisfy γ(q_lo) < target ≤ γ(q_hi) — with the
        defaults this always holds for connected graphs since γ(1) = 1.
    batch:
        Execution strategy for each probe's trials (batched mask-parallel
        kernels vs scalar union-find) — bit-identical brackets either way;
        ``False`` is the bisection escape hatch the experiment layer
        threads through from ``--no-batch``.
    """
    gamma_target = check_fraction(gamma_target, "gamma_target")
    n_trials = check_positive_int(n_trials, "n_trials")
    rng = as_generator(seed)

    def gamma(q: float) -> float:
        if mode == "site":
            return site_percolation(
                graph, q, n_trials=n_trials, seed=rng, batch=batch
            ).gamma_mean
        return bond_percolation(
            graph, q, n_trials=n_trials, seed=rng, batch=batch
        ).gamma_mean

    lo, hi = float(q_lo), float(q_hi)
    probes = 0
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        g = gamma(mid)
        probes += 1
        if g >= gamma_target:
            hi = mid
        else:
            lo = mid
        if probes > 30:  # bisection on [0,1] converges long before this
            break
    return ThresholdEstimate(
        lo=lo, hi=hi, gamma_target=gamma_target, mode=mode, n_probes=probes
    )
