"""Literature critical probabilities surveyed in Section 1.1 of the paper.

Each entry records the *survival* probability threshold ``p*`` as reported in
the sources the paper cites, plus which percolation mode it refers to.  The
E8 benchmark regenerates the measured counterpart of this table.

Sources (paper's citation numbers):
  [10] Erdős–Rényi 1960 — complete graph, ``p* = 1/(n−1)`` (edge faults).
  [10]/[5, 21] — random graph with ``d·n/2`` edges, ``p* = 1/d``.
  [16] Kesten 1980 — 2-D square lattice bond percolation, ``p* = 1/2``.
  [1] Ajtai–Komlós–Szemerédi 1982 — hypercube of dimension n, ``p* = 1/n``.
  [15] Karlin–Nelson–Tamaki 1994 — butterfly, ``0.337 < p* < 0.436``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["KnownThreshold", "known_thresholds"]


@dataclass(frozen=True)
class KnownThreshold:
    """One row of the Section 1.1 survey."""

    family: str
    mode: str  # "site" or "bond"
    p_star: Callable[[dict], float]  # literature threshold given family params
    p_star_hi: Optional[Callable[[dict], float]]  # upper end when an interval
    citation: str

    def describe(self, params: dict) -> str:
        lo = self.p_star(params)
        if self.p_star_hi is None:
            return f"{lo:.4g}"
        return f"[{lo:.4g}, {self.p_star_hi(params):.4g}]"


def known_thresholds() -> List[KnownThreshold]:
    """The survey table, parameterised by family parameters.

    Parameter dictionaries use: ``n`` (nodes), ``d`` (degree / dimension /
    butterfly order as appropriate per family).
    """
    return [
        KnownThreshold(
            family="complete graph K_n",
            mode="bond",
            p_star=lambda p: 1.0 / (p["n"] - 1),
            p_star_hi=None,
            citation="Erdős–Rényi [10]",
        ),
        KnownThreshold(
            family="random graph, d·n/2 edges",
            mode="bond",
            p_star=lambda p: 1.0 / p["d"],
            p_star_hi=None,
            citation="[10, 5, 21]",
        ),
        KnownThreshold(
            family="2-D mesh (n×n)",
            mode="bond",
            p_star=lambda p: 0.5,
            p_star_hi=None,
            citation="Kesten [16]",
        ),
        KnownThreshold(
            family="hypercube Q_d",
            mode="bond",
            p_star=lambda p: 1.0 / p["d"],
            p_star_hi=None,
            citation="Ajtai–Komlós–Szemerédi [1]",
        ),
        KnownThreshold(
            family="butterfly",
            mode="site",
            p_star=lambda p: 0.337,
            p_star_hi=lambda p: 0.436,
            citation="Karlin–Nelson–Tamaki [15]",
        ),
    ]
