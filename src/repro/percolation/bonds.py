"""Bond (edge) percolation: per-``q`` Monte Carlo and a Newman–Ziff sweep.

Bond percolation keeps each *edge* independently with probability ``q``
(nodes never fail) — the model behind the Section 1.1 survey rows with edge
faults (Kesten's ``p* = 1/2`` for the 2-D mesh is a bond result).

The Newman–Ziff-style sweep adds edges one at a time in random order,
maintaining the largest cluster with union-find.  One O(m·α(n)) pass yields
the whole microcanonical curve ``γ(k edges)``; evaluating it at ``k ≈ q·m``
approximates the canonical ``γ(q)`` (exact smoothing would convolve with the
binomial; at our sizes — m ≥ 10³ — the binomial's ±√m window is a vanishing
fraction of m, so the approximation error is below Monte-Carlo noise, and
the threshold estimator only consumes coarse curve shape anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator, spawn
from ..util.stats import OnlineStats
from ..util.unionfind import UnionFind
from ..util.validation import check_positive_int, check_probability

__all__ = ["bond_percolation_trial", "bond_percolation", "BondSweep", "bond_sweep"]


def bond_percolation_trial(graph: Graph, q: float, seed: SeedLike = None) -> float:
    """One trial: keep each edge w.p. ``q``; return largest-component fraction."""
    q = check_probability(q, "q")
    rng = as_generator(seed)
    n = graph.n
    if n == 0:
        return 0.0
    edges = graph.edge_array()
    if edges.size:
        keep = rng.random(edges.shape[0]) < q
        edges = edges[keep]
    uf = UnionFind(n)
    if edges.size:
        uf.union_edges(edges[:, 0], edges[:, 1])
    return uf.max_size / n


@dataclass(frozen=True)
class BondPercolationResult:
    q: float
    gamma_mean: float
    gamma_std: float
    n_trials: int
    samples: np.ndarray


def bond_percolation(
    graph: Graph, q: float, *, n_trials: int = 20, seed: SeedLike = None,
    batch: bool = True, backend: object = None,
) -> BondPercolationResult:
    """Monte-Carlo γ estimate for bond percolation at edge-survival prob ``q``.

    ``batch=True`` (default) stacks all trials' Bernoulli edge masks into
    one ``(trials × m)`` matrix and labels every trial's components in one
    mask-parallel pass
    (:func:`repro.graphs.traversal.batched_connected_components` with
    ``edge_alive``); ``batch=False`` keeps the historical per-trial
    union-find loop.  Samples are bit-identical across the two — same
    spawned stream and same γ per trial — which the differential suite
    asserts.  Aggregates accumulate online
    (:class:`~repro.util.stats.OnlineStats`) in trial order either way.
    """
    q = check_probability(q, "q")
    n_trials = check_positive_int(n_trials, "n_trials")
    rngs = spawn(seed, n_trials)
    n = graph.n
    edges = graph.edge_array()
    m = edges.shape[0]
    if n == 0:
        samples = np.zeros(n_trials, dtype=np.float64)
        return BondPercolationResult(
            q=q, gamma_mean=0.0, gamma_std=0.0, n_trials=n_trials, samples=samples
        )
    samples = np.empty(n_trials, dtype=np.float64)
    stats = OnlineStats()
    if batch:
        from ..batch.metrics import batched_gamma

        keep = np.empty((n_trials, m), dtype=bool)
        for i in range(n_trials):
            # same stream, same draw as the scalar trial for this seed
            keep[i] = rngs[i].random(m) < q
        alive = np.ones((n_trials, n), dtype=bool)
        samples[:] = batched_gamma(graph, alive, edge_alive=keep, backend=backend)
        for value in samples:
            stats.push(float(value))
        return BondPercolationResult(
            q=q,
            gamma_mean=stats.mean,
            gamma_std=stats.std if n_trials > 1 else 0.0,
            n_trials=n_trials,
            samples=samples,
        )
    for i in range(n_trials):
        uf = UnionFind(n)
        if m:
            kept = edges[rngs[i].random(m) < q]
            if kept.size:
                uf.union_edges(kept[:, 0], kept[:, 1])
        samples[i] = uf.max_size / n
        stats.push(samples[i])
    return BondPercolationResult(
        q=q,
        gamma_mean=stats.mean,
        gamma_std=stats.std if n_trials > 1 else 0.0,
        n_trials=n_trials,
        samples=samples,
    )


@dataclass(frozen=True)
class BondSweep:
    """Microcanonical largest-cluster curve from one edge-insertion sweep.

    ``gamma_by_edges[k]`` is the largest-component fraction after the first
    ``k`` random edges have been added (``k = 0..m``)."""

    gamma_by_edges: np.ndarray

    def gamma_at(self, q: float) -> float:
        """Canonical-ensemble approximation: evaluate at ``k = round(q·m)``."""
        q = check_probability(q, "q")
        m = self.gamma_by_edges.shape[0] - 1
        return float(self.gamma_by_edges[int(round(q * m))])


def bond_sweep(graph: Graph, *, n_sweeps: int = 8, seed: SeedLike = None) -> BondSweep:
    """Average microcanonical sweep over ``n_sweeps`` random edge orders.

    The per-edge loop lives in :meth:`UnionFind.union_edges_trace`, which
    returns the running largest-cluster trace for a whole edge order in one
    call; the curve is then assembled with vectorised numpy (identical
    values to the historical per-edge ``union(); read max_size`` loop —
    asserted by the regression test against the reference implementation).
    """
    n_sweeps = check_positive_int(n_sweeps, "n_sweeps")
    edges = graph.edge_array()
    m = edges.shape[0]
    acc = np.zeros(m + 1, dtype=np.float64)
    rngs = spawn(seed, n_sweeps)
    denom = float(max(graph.n, 1))
    for s in range(n_sweeps):
        order = rngs[s].permutation(m)
        e = edges[order]
        trace = UnionFind(graph.n).union_edges_trace(e[:, 0], e[:, 1])
        curve = np.empty(m + 1, dtype=np.float64)
        curve[0] = 1.0 / denom
        np.divide(trace, denom, out=curve[1:])
        acc += curve
    acc /= n_sweeps
    return BondSweep(gamma_by_edges=acc)
