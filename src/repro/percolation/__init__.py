"""Percolation engine: site/bond Monte Carlo, sweeps, threshold estimation."""

from .bonds import BondSweep, bond_percolation, bond_percolation_trial, bond_sweep
from .known import KnownThreshold, known_thresholds
from .sites import SitePercolationResult, site_percolation, site_percolation_trial
from .threshold import ThresholdEstimate, estimate_critical_probability

__all__ = [
    "site_percolation",
    "site_percolation_trial",
    "SitePercolationResult",
    "bond_percolation",
    "bond_percolation_trial",
    "bond_sweep",
    "BondSweep",
    "estimate_critical_probability",
    "ThresholdEstimate",
    "KnownThreshold",
    "known_thresholds",
]
