"""Site (node) percolation Monte Carlo.

The paper's random-fault model *is* site percolation: every node survives
independently with probability ``1 − p`` (we follow the percolation
convention and parameterise by the *survival* probability ``q`` here; the
fault experiments convert).  The estimator of interest is
``γ(G^{(q)})`` — the expected fraction of (original) nodes in the largest
surviving component (paper §1.1).

Implementation: the batched default stacks all trials' Bernoulli masks
into one ``(trials × n)`` alive matrix and hands it to the mask-parallel
component kernel (:func:`repro.graphs.traversal.batched_connected_components`)
— one label-propagation pass for the whole trial set, no per-trial
union-find.  The scalar path (``batch=False``, and
:func:`site_percolation_trial` which the differential tests compare
against) keeps the historical one-mask-per-trial union-find; both produce
bit-identical samples because every trial draws from the same spawned RNG
stream either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..util.rng import SeedLike, as_generator, spawn
from ..util.stats import OnlineStats
from ..util.unionfind import UnionFind
from ..util.validation import check_positive_int, check_probability

__all__ = ["SitePercolationResult", "site_percolation_trial", "site_percolation"]


@dataclass(frozen=True)
class SitePercolationResult:
    """Monte-Carlo estimate of γ at one survival probability."""

    q: float
    gamma_mean: float
    gamma_std: float
    n_trials: int
    samples: np.ndarray

    @property
    def p_fault(self) -> float:
        """The paper's fault probability ``p = 1 − q``."""
        return 1.0 - self.q


def site_percolation_trial(graph: Graph, q: float, seed: SeedLike = None) -> float:
    """One trial: keep each node w.p. ``q``; return largest-component fraction
    **relative to the original node count** (γ's normalisation)."""
    q = check_probability(q, "q")
    rng = as_generator(seed)
    n = graph.n
    if n == 0:
        return 0.0
    alive = rng.random(n) < q
    n_alive = int(np.count_nonzero(alive))
    if n_alive == 0:
        return 0.0
    edges = graph.edge_array()
    if edges.size:
        keep = alive[edges[:, 0]] & alive[edges[:, 1]]
        edges = edges[keep]
    uf = UnionFind(n)
    if edges.size:
        uf.union_edges(edges[:, 0], edges[:, 1])
    # the union-find covers dead nodes as singletons; the largest *alive*
    # cluster is the max component size among alive roots
    if edges.size == 0:
        return 1.0 / n if n_alive else 0.0
    # max_size tracks the largest merged set, which only contains alive nodes
    return max(uf.max_size, 1) / n


def site_percolation(
    graph: Graph, q: float, *, n_trials: int = 20, seed: SeedLike = None,
    batch: bool = True, backend: object = None,
) -> SitePercolationResult:
    """Monte-Carlo γ estimate at survival probability ``q``.

    ``batch=True`` (default) evaluates all trials through the batched
    component kernel; ``batch=False`` is the scalar per-trial loop.  The
    two are sample-for-sample identical (the per-trial RNG streams and the
    γ definition are shared), asserted by the differential suite — the
    switch exists as a bisection aid, not a semantic choice.  ``backend``
    selects the kernel backend for the batched path (also bit-identical).
    """
    q = check_probability(q, "q")
    n_trials = check_positive_int(n_trials, "n_trials")
    rngs = spawn(seed, n_trials)
    # Streaming aggregation (Welford), same pattern as the sweep layer —
    # the samples array is kept for callers that post-process trials.
    samples = np.empty(n_trials, dtype=np.float64)
    stats = OnlineStats()
    if batch:
        from ..batch.metrics import batched_gamma

        n = graph.n
        alive = np.empty((n_trials, n), dtype=bool)
        for i in range(n_trials):
            # same stream, same draw as the scalar trial for this seed
            alive[i] = as_generator(rngs[i]).random(n) < q
        samples[:] = batched_gamma(graph, alive, backend=backend)
        for value in samples:
            stats.push(float(value))
    else:
        for i in range(n_trials):
            samples[i] = site_percolation_trial(graph, q, rngs[i])
            stats.push(samples[i])
    return SitePercolationResult(
        q=q,
        gamma_mean=stats.mean,
        gamma_std=stats.std if n_trials > 1 else 0.0,
        n_trials=n_trials,
        samples=samples,
    )
