"""A thin stdlib HTTP client for the sweep service.

Used by the ``python -m repro sweep submit|status|watch --server URL``
CLI verbs and by tests; it is a deliberate 1:1 mapping of the REST
surface with JSON decoding and error translation, nothing more.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional

from ..api.sweeps import SweepSpec
from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """An HTTP error from the service, with the server's message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.SweepService`.

    >>> client = ServiceClient("http://127.0.0.1:8750")  # doctest: +SKIP
    >>> submitted = client.submit(spec)                  # doctest: +SKIP
    >>> client.watch(submitted["id"])                    # doctest: +SKIP
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------- #

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Any:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except (ValueError, AttributeError):
                message = raw or exc.reason
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}")
        return json.loads(raw) if raw else None

    def _request_text(self, path: str) -> str:
        request = urllib.request.Request(self.base_url + path)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc}")

    # -- the REST surface ------------------------------------------------ #

    def submit(self, spec: "SweepSpec | Dict[str, Any]", *, priority: int = 0) -> Dict[str, Any]:
        """``POST /sweeps``; returns ``{id, hash, state, deduped}``."""
        spec_dict = spec.to_dict() if isinstance(spec, SweepSpec) else spec
        return self._request(
            "POST", "/sweeps", {"sweep": spec_dict, "priority": priority}
        )

    def status(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}")

    def results(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}/results")

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/sweeps/{sweep_id}")

    def sweeps(self) -> Dict[str, Any]:
        return self._request("GET", "/sweeps")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition body of ``GET /metrics``."""
        return self._request_text("/metrics")

    # -- conveniences ---------------------------------------------------- #

    def watch(
        self,
        sweep_id: str,
        *,
        interval: float = 0.2,
        timeout: float = 600.0,
        on_status: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll status until the sweep leaves the running states, then
        return the full results payload.  Raises on failure/cancellation
        and on ``timeout`` seconds without completion."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(sweep_id)
            if on_status is not None:
                on_status(status)
            if status["state"] == "done":
                return self.results(sweep_id)
            if status["state"] in ("failed", "cancelled"):
                raise ServiceError(
                    410, f"sweep {sweep_id} {status['state']}: {status['error']}"
                )
            if time.monotonic() > deadline:
                raise ServiceError(
                    408, f"sweep {sweep_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(interval)
