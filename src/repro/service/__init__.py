"""The sweep service: a long-running HTTP server with a distributed
job scheduler (stdlib only — ``http.server`` + ``multiprocessing``).

Start one with ``python -m repro serve --store DIR --workers N``, talk to
it with :class:`~repro.service.client.ServiceClient` or the
``python -m repro sweep submit|status|watch --server URL`` CLI verbs.

The contract that makes the service boring (in the good way): a sweep
executed through the service is **bit-identical** — same per-trial
results, same store entries, same fingerprint — to a local
:func:`~repro.api.sweeps.run_sweep` of the same spec, regardless of
worker count, crash/requeue history, or how much of it was served warm
from the store.  See :mod:`repro.service.scheduler` for why.
"""

from .client import ServiceClient, ServiceError
from .metrics import Counters, SERVICE_METRICS
from .scheduler import Job, Scheduler, SchedulerError, SweepEntry
from .server import ServiceConfig, SweepService

__all__ = [
    "Counters",
    "Job",
    "Scheduler",
    "SchedulerError",
    "SERVICE_METRICS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepEntry",
    "SweepService",
]
