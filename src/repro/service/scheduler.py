"""The sweep scheduler: dedup, priority queue, rounds, crash requeue.

The scheduler is pure bookkeeping — no threads, no sockets, no processes.
The service's loop thread and HTTP handler threads call into it under its
internal lock; workers never see it.  That separation is what makes it unit
testable: drive ``submit → next_job → job_done`` by hand and the resulting
:class:`~repro.api.sweeps.SweepResult` must be *bit-identical* to a local
:func:`~repro.api.sweeps.run_sweep` of the same spec, because both sides
run the same :class:`~repro.api.sweeps.SweepDriver` state machine.

Responsibilities:

* **Dedup by content hash.**  ``submit`` keys live sweeps by
  :meth:`SweepSpec.hash`; a second identical submission — concurrent or
  later — maps to the same entry (one computation, every client polls the
  same id).  Failed/cancelled sweeps are evicted from the dedup table so a
  resubmission retries fresh.
* **Per-grid-point jobs on a priority queue.**  Each allocation round of a
  sweep (one :meth:`SweepDriver.next_round`) becomes one job per grid-point
  request — ``(point index, first trial, n trials)`` — optionally split
  into ``job_chunk``-sized slices.  The heap orders by (client priority,
  submission order, creation order), so earlier and more urgent sweeps
  drain first while rounds stay FIFO within a sweep.
* **Warm points served from the store.**  A job whose every trial is
  already in the result store is folded straight from the index — counted
  as ``jobs_warm_total`` — and never dispatched; a fully warm sweep
  completes synchronously inside ``submit``.
* **Deterministic folding.**  Worker payloads are buffered per round and
  folded in request order only once the round is complete, which is exactly
  the order :func:`run_sweep` folds in — adaptive policies therefore make
  identical allocation decisions locally and distributed, and the sweep
  fingerprint cannot observe worker count, completion order, crashes or
  requeues.
* **Bounded requeue.**  A job whose worker crashed or timed out is requeued
  with the same identity and a bumped generation (stale completions are
  dropped by generation mismatch) at most ``max_attempts - 1`` times; after
  that the sweep fails rather than looping forever.  A job that *raises*
  in a worker fails its sweep immediately — scenario execution is
  deterministic, so retrying an execution error would fail identically.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.specs import RunResult
from ..api.store import ResultStore
from ..api.sweeps import SweepDriver, SweepSpec
from ..errors import ReproError
from .metrics import Counters

__all__ = ["Job", "Scheduler", "SchedulerError", "SweepEntry"]


class SchedulerError(ReproError):
    """Invalid scheduler request (unknown sweep, draining, bad payload)."""


@dataclass
class Job:
    """One schedulable slice of a sweep round.

    ``segments`` is an ordered list of ``(point index, first trial,
    n trials)`` ranges — one for a plain per-point job (the default), or
    several when point merging stacked compatible grid points into one
    dispatch (see :class:`Scheduler` ``merge_points``).  Workers execute
    the segments in order and return one flat result list.
    """

    id: str
    sweep_id: str
    segments: List[Tuple[int, int, int]]
    priority: Tuple[int, int, int]
    state: str = "queued"  # queued | dispatched | done | stale
    attempts: int = 0
    generation: int = 0
    worker: Optional[str] = None
    dispatched_at: Optional[float] = None

    @property
    def key(self) -> str:
        """The dispatch token a worker echoes back; the generation suffix
        lets the scheduler drop completions of superseded attempts."""
        return f"{self.id}:{self.generation}"

    # Single-segment conveniences (every job before point merging existed
    # had exactly one segment; tests and logs read these):

    @property
    def point_index(self) -> int:
        """First segment's grid-point index."""
        return self.segments[0][0]

    @property
    def trial_start(self) -> int:
        """First segment's first trial."""
        return self.segments[0][1]

    @property
    def n_trials(self) -> int:
        """Total trials across every segment."""
        return sum(seg[2] for seg in self.segments)


@dataclass
class SweepEntry:
    """Server-side state of one submitted sweep."""

    id: str
    spec: SweepSpec
    hash: str
    seq: int
    priority: int
    driver: SweepDriver
    state: str = "queued"  # queued | running | done | failed | cancelled
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    error: Optional[str] = None
    dedup_count: int = 0
    store_hits: int = 0
    store_misses: int = 0
    round_jobs: List[str] = field(default_factory=list)
    payloads: Dict[str, List[RunResult]] = field(default_factory=dict)
    result: Optional[Any] = None  # SweepResult once done
    fingerprint: Optional[str] = None


class Scheduler:
    """Thread-safe sweep/job state machine (see module docstring).

    Parameters
    ----------
    store:
        The server-side view of the shared result store, used to serve warm
        points without dispatching.  ``None`` disables warm serving.
    counters:
        The service :class:`~repro.service.metrics.Counters`; the scheduler
        advances sweep/job/store metrics as state changes.
    max_attempts:
        Total tries a job gets before its sweep fails (first run + requeues).
    job_chunk:
        Upper bound on trials per job; ``None`` keeps one job per grid-point
        request (the natural unit).  Splitting only changes scheduling
        granularity — fold order, and therefore results, are unaffected.
    merge_points:
        When true, a round's requests for grid points sharing a
        :func:`repro.batch.engine.stack_key` (same graph + analysis) are
        merged into multi-segment jobs, so one worker evaluates all their
        trials as stacked mask tensors
        (:func:`~repro.api.sweeps.execute_units` →
        :meth:`Session.run_points_batched`).  Merged segments respect
        ``job_chunk`` as a total-trials bound per job.  Folding stays in
        request order, so results and fingerprints are unchanged — this is
        purely a dispatch-granularity/throughput knob (default off; the
        service turns it on).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        counters: Optional[Counters] = None,
        *,
        max_attempts: int = 3,
        job_chunk: Optional[int] = None,
        merge_points: bool = False,
        clock=time.time,
    ) -> None:
        if max_attempts < 1:
            raise SchedulerError(f"max_attempts must be >= 1, got {max_attempts}")
        if job_chunk is not None and job_chunk < 1:
            raise SchedulerError(f"job_chunk must be >= 1, got {job_chunk}")
        self.store = store
        self.counters = counters if counters is not None else Counters()
        self.max_attempts = max_attempts
        self.job_chunk = job_chunk
        self.merge_points = merge_points
        self.draining = False
        self._clock = clock
        self._lock = threading.RLock()
        self._sweeps: Dict[str, SweepEntry] = {}
        self._by_hash: Dict[str, str] = {}
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[Tuple[int, int, int], str]] = []
        self._sweep_seq = itertools.count()
        self._job_seq = itertools.count()

    # -- submission ------------------------------------------------------ #

    def submit(self, spec: SweepSpec, *, priority: int = 0) -> Tuple[SweepEntry, bool]:
        """Register a sweep (or join the identical one already live).

        Returns ``(entry, deduped)``.  Dedup is by content hash across every
        entry that has not failed or been cancelled — including completed
        ones, whose results are served straight back.
        """
        with self._lock:
            if self.draining:
                raise SchedulerError("service is draining; not accepting sweeps")
            key = spec.hash()
            existing_id = self._by_hash.get(key)
            if existing_id is not None:
                entry = self._sweeps[existing_id]
                entry.dedup_count += 1
                self.counters.inc("sweeps_deduped_total")
                return entry, True
            seq = next(self._sweep_seq)
            entry = SweepEntry(
                id=f"sw{seq}-{key[:8]}",
                spec=spec,
                hash=key,
                seq=seq,
                priority=priority,
                driver=SweepDriver(spec),
                submitted_at=self._clock(),
            )
            self._sweeps[entry.id] = entry
            self._by_hash[key] = entry.id
            self.counters.inc("sweeps_submitted_total")
            entry.state = "running"
            self._advance(entry)
            self._refresh_gauges()
            return entry, False

    def cancel(self, sweep_id: str) -> SweepEntry:
        """Cancel a sweep: queued jobs are dropped, in-flight results of it
        are ignored on arrival.  Cancelling a finished sweep is a no-op."""
        with self._lock:
            entry = self._entry(sweep_id)
            if entry.state in ("done", "failed", "cancelled"):
                return entry
            self._retire(entry, "cancelled", error="cancelled by client")
            self.counters.inc("sweeps_cancelled_total")
            self._refresh_gauges()
            return entry

    # -- the dispatch side (called by the service loop) ------------------ #

    def next_job(self) -> Optional[Tuple[Job, Dict[str, Any]]]:
        """Pop the highest-priority runnable job, marking it dispatched.

        Returns ``(job, sweep spec dict)`` — the dict is what crosses the
        process boundary to the worker — or ``None`` when the queue is
        empty.  Jobs of cancelled/failed sweeps are skipped lazily.
        """
        with self._lock:
            while self._heap:
                _, job_id = heapq.heappop(self._heap)
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                entry = self._sweeps[job.sweep_id]
                if entry.state != "running":
                    job.state = "stale"
                    continue
                job.state = "dispatched"
                job.dispatched_at = self._clock()
                self.counters.inc("jobs_dispatched_total")
                self._refresh_gauges()
                spec_dict = entry.spec.to_dict()
                # Ship the content hash alongside so workers can key their
                # expanded-grid cache without re-hashing the spec.
                spec_dict["__hash__"] = entry.hash
                return job, spec_dict
            return None

    def job_done(
        self,
        job_key: str,
        results: List[RunResult],
        *,
        hits: int = 0,
        misses: int = 0,
    ) -> None:
        """Record a worker's completed job (identified by its dispatch key).

        Stale completions — superseded generations, cancelled sweeps,
        unknown jobs — are dropped silently: the store already holds their
        results, so nothing is lost.
        """
        with self._lock:
            job = self._live_job(job_key)
            if job is None:
                return
            entry = self._sweeps[job.sweep_id]
            if len(results) != job.n_trials:
                self._fail(
                    entry,
                    f"job {job.id} returned {len(results)} results for "
                    f"{job.n_trials} trials",
                )
                return
            job.state = "done"
            self.counters.inc("jobs_done_total")
            self.counters.inc("store_hits_total", hits)
            self.counters.inc("store_misses_total", misses)
            entry.store_hits += hits
            entry.store_misses += misses
            entry.payloads[job.id] = results
            if self.store is not None:
                for result in results:
                    self.store.remember(result)
            self._maybe_finish_round(entry)
            self._refresh_gauges()

    def job_failed(self, job_key: str, error: str) -> None:
        """A job *raised* in a worker: fail the sweep (execution is
        deterministic — a retry would raise identically)."""
        with self._lock:
            job = self._live_job(job_key)
            if job is None:
                return
            self.counters.inc("jobs_failed_total")
            self._fail(self._sweeps[job.sweep_id], f"job {job.id}: {error}")
            self._refresh_gauges()

    def requeue(self, job_key: str, reason: str) -> bool:
        """A worker crashed or timed out holding this job: put it back on
        the queue (new generation) unless its attempt budget is exhausted,
        in which case the sweep fails.  Returns True when requeued."""
        with self._lock:
            job = self._live_job(job_key)
            if job is None:
                return False
            entry = self._sweeps[job.sweep_id]
            job.attempts += 1
            job.generation += 1
            job.worker = None
            job.dispatched_at = None
            if job.attempts >= self.max_attempts:
                self.counters.inc("jobs_failed_total")
                self._fail(
                    entry,
                    f"job {job.id} exceeded {self.max_attempts} attempts "
                    f"(last: {reason})",
                )
                self._refresh_gauges()
                return False
            job.state = "queued"
            heapq.heappush(self._heap, (job.priority, job.id))
            self.counters.inc("jobs_requeued_total")
            self._refresh_gauges()
            return True

    # -- status / results ------------------------------------------------ #

    def entries(self) -> List[SweepEntry]:
        with self._lock:
            return list(self._sweeps.values())

    def status(self, sweep_id: str) -> Dict[str, Any]:
        """The ``GET /sweeps/{id}`` payload: state, progress, live stats."""
        with self._lock:
            entry = self._entry(sweep_id)
            driver = entry.driver
            payload = {
                "id": entry.id,
                "hash": entry.hash,
                "label": entry.spec.label,
                "state": entry.state,
                "priority": entry.priority,
                "submitted_at": entry.submitted_at,
                "finished_at": entry.finished_at,
                "error": entry.error,
                "dedup_count": entry.dedup_count,
                "points": len(driver.points),
                "rounds": driver.rounds,
                "trials_allocated": sum(driver.allocated),
                "trials_done": driver.total,
                "store": {"hits": entry.store_hits, "misses": entry.store_misses},
                "allocator": driver.allocator_state(),
                "point_stats": driver.point_snapshots(),
            }
            if entry.fingerprint is not None:
                payload["fingerprint"] = entry.fingerprint
            return payload

    def results(self, sweep_id: str) -> Dict[str, Any]:
        """The ``GET /sweeps/{id}/results`` payload (partial until done)."""
        with self._lock:
            entry = self._entry(sweep_id)
            complete = entry.state == "done"
            payload: Dict[str, Any] = {
                "id": entry.id,
                "hash": entry.hash,
                "state": entry.state,
                "complete": complete,
                "error": entry.error,
            }
            if complete:
                assert entry.result is not None
                payload["fingerprint"] = entry.fingerprint
                payload["rows"] = entry.result.rows()
                payload["points"] = [p.to_dict() for p in entry.result.points]
                payload["total_trials"] = entry.result.total_trials
                payload["rounds"] = entry.result.rounds
            return payload

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "queued")

    def inflight(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "dispatched")

    def idle(self) -> bool:
        """No queued or in-flight work (the drain condition)."""
        with self._lock:
            return all(
                j.state not in ("queued", "dispatched") for j in self._jobs.values()
            )

    # -- internals (caller holds the lock) ------------------------------- #

    def _entry(self, sweep_id: str) -> SweepEntry:
        entry = self._sweeps.get(sweep_id)
        if entry is None:
            raise SchedulerError(f"unknown sweep {sweep_id!r}")
        return entry

    def _live_job(self, job_key: str) -> Optional[Job]:
        """Resolve a dispatch key to its job iff it is the live generation
        of a dispatched job belonging to a running sweep."""
        job_id, _, gen = job_key.rpartition(":")
        job = self._jobs.get(job_id)
        if job is None or str(job.generation) != gen:
            return None
        if job.state != "dispatched":
            return None
        if self._sweeps[job.sweep_id].state != "running":
            return None
        return job

    def _advance(self, entry: SweepEntry) -> None:
        """Issue allocation rounds until one needs a worker (or the sweep
        completes) — fully-warm rounds fold inline from the store."""
        while True:
            requests = entry.driver.next_round()
            if not requests:
                self._complete(entry)
                return
            entry.round_jobs = []
            entry.payloads = {}
            enqueued = False
            for segments in self._job_segments(entry, requests):
                job = Job(
                    id=f"j{next(self._job_seq)}",
                    sweep_id=entry.id,
                    segments=segments,
                    priority=(entry.priority, entry.seq, next(self._job_seq)),
                )
                self._jobs[job.id] = job
                entry.round_jobs.append(job.id)
                warm = self._warm_results(entry, job)
                if warm is not None:
                    job.state = "done"
                    entry.payloads[job.id] = warm
                    entry.store_hits += job.n_trials
                    self.counters.inc("jobs_warm_total")
                    self.counters.inc("store_hits_total", job.n_trials)
                else:
                    heapq.heappush(self._heap, (job.priority, job.id))
                    enqueued = True
            if enqueued:
                return
            self._fold_round(entry)  # fully warm: fold and loop to next round

    def _chunks(self, start: int, n: int):
        step = self.job_chunk or n
        for s in range(start, start + n, step):
            yield s, min(step, start + n - s)

    def _job_segments(
        self, entry: SweepEntry, requests: List[Tuple[int, int, int]]
    ) -> List[List[Tuple[int, int, int]]]:
        """Turn one round's requests into per-job segment lists.

        Without merging: one single-segment job per ``job_chunk`` slice of
        each request (the historical shape).  With merging: requests whose
        grid points share a stack key are packed together, ``job_chunk``
        bounding the *total* trials per merged job.  Request order is
        preserved within each merged job and across jobs, and
        :meth:`_fold_round` folds per segment, so results are unchanged.
        """
        chunked: List[Tuple[Optional[str], List[Tuple[int, int, int]]]] = []
        if self.merge_points:
            from ..batch import engine as _batch_engine

            keys: Dict[int, Optional[str]] = {}
            for point_index, start, n in requests:
                if point_index not in keys:
                    keys[point_index] = _batch_engine.stack_key(
                        entry.driver.points[point_index].spec
                    )
                key = keys[point_index]
                for chunk in self._chunks(start, n):
                    chunked.append((key, [(point_index, *chunk)]))
        else:
            for point_index, start, n in requests:
                for chunk in self._chunks(start, n):
                    chunked.append((None, [(point_index, *chunk)]))
            return [segments for _, segments in chunked]
        # greedy pack: consecutive same-key slices merge while the total
        # stays under job_chunk (unbounded when job_chunk is None)
        packed: List[List[Tuple[int, int, int]]] = []
        open_jobs: Dict[str, int] = {}  # stack key -> index into packed
        for key, segments in chunked:
            if key is None:
                packed.append(segments)
                continue
            at = open_jobs.get(key)
            if at is not None:
                total = sum(s[2] for s in packed[at]) + segments[0][2]
                if self.job_chunk is None or total <= self.job_chunk:
                    packed[at].extend(segments)
                    continue
            open_jobs[key] = len(packed)
            packed.append(segments)
        return packed

    def _warm_results(self, entry: SweepEntry, job: Job) -> Optional[List[RunResult]]:
        if self.store is None:
            return None
        specs = []
        for point_index, trial_start, n in job.segments:
            point = entry.driver.points[point_index]
            specs.extend(
                entry.spec.trial_spec(point, t)
                for t in range(trial_start, trial_start + n)
            )
        # Two phases: membership first — an O(1) index probe per trial, no
        # record decoded — so a cold job is rejected without touching any
        # segment file; only a fully-present job pays the decode cost.
        if any(spec not in self.store for spec in specs):
            return None
        out: List[RunResult] = []
        for spec in specs:
            cached = self.store.get_result(spec)
            if cached is None:  # lazy verification rejected the entry
                return None
            out.append(cached)
        return out

    def _maybe_finish_round(self, entry: SweepEntry) -> None:
        if all(jid in entry.payloads for jid in entry.round_jobs):
            self._fold_round(entry)
            self._advance(entry)

    def _fold_round(self, entry: SweepEntry) -> None:
        """Fold the buffered round in request order (the determinism rule)."""
        for jid in entry.round_jobs:
            job = self._jobs.pop(jid)
            payload = entry.payloads[jid]
            pos = 0
            for point_index, trial_start, n in job.segments:
                for offset in range(n):
                    entry.driver.fold(point_index, trial_start + offset, payload[pos])
                    pos += 1
                    self.counters.inc("trials_total")
        entry.round_jobs = []
        entry.payloads = {}

    def _complete(self, entry: SweepEntry) -> None:
        entry.result = entry.driver.result()
        entry.fingerprint = entry.result.fingerprint()
        entry.state = "done"
        entry.finished_at = self._clock()
        self.counters.inc("sweeps_completed_total")

    def _fail(self, entry: SweepEntry, error: str) -> None:
        self._retire(entry, "failed", error=error)
        self.counters.inc("sweeps_failed_total")

    def _retire(self, entry: SweepEntry, state: str, *, error: str) -> None:
        entry.state = state
        entry.error = error
        entry.finished_at = self._clock()
        for jid in entry.round_jobs:
            job = self._jobs.get(jid)
            if job is not None and job.state in ("queued", "dispatched"):
                job.state = "stale"
        entry.round_jobs = []
        entry.payloads = {}
        # Failed/cancelled sweeps leave the dedup table so a resubmission
        # starts a fresh computation instead of joining a dead one.
        if self._by_hash.get(entry.hash) == entry.id:
            del self._by_hash[entry.hash]

    def _refresh_gauges(self) -> None:
        self.counters.set_gauge(
            "jobs_queued",
            sum(1 for j in self._jobs.values() if j.state == "queued"),
        )
        self.counters.set_gauge(
            "jobs_running",
            sum(1 for j in self._jobs.values() if j.state == "dispatched"),
        )
        self.counters.set_gauge(
            "sweeps_active",
            sum(
                1
                for e in self._sweeps.values()
                if e.state in ("queued", "running")
            ),
        )
