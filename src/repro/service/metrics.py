"""Service observability: thread-safe counters with a Prometheus text view.

One :class:`Counters` registry per service instance.  Monotonic counters
(``*_total``) and point-in-time gauges share a namespace; every metric is
declared up front with its type and help string so the ``GET /metrics``
exposition (`Prometheus text format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_) carries
``# HELP`` / ``# TYPE`` headers and scrapes cleanly.  The same snapshot
feeds the JSON ``GET /sweeps/{id}`` status payloads and the
``repro sweep status --server`` CLI.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Tuple

__all__ = ["Counters", "SERVICE_METRICS"]

#: ``name -> (type, help)`` — the full metric catalogue of the service.
SERVICE_METRICS: Dict[str, Tuple[str, str]] = {
    "sweeps_submitted_total": ("counter", "SweepSpecs accepted by POST /sweeps"),
    "sweeps_deduped_total": (
        "counter",
        "submissions answered by an existing identical sweep (shared computation)",
    ),
    "sweeps_completed_total": ("counter", "sweeps finished successfully"),
    "sweeps_failed_total": ("counter", "sweeps failed (execution error or requeue budget exhausted)"),
    "sweeps_cancelled_total": ("counter", "sweeps cancelled via DELETE /sweeps/{id}"),
    "jobs_dispatched_total": ("counter", "grid-point jobs handed to a worker"),
    "jobs_done_total": ("counter", "grid-point jobs completed by a worker"),
    "jobs_failed_total": ("counter", "grid-point jobs that raised in a worker"),
    "jobs_requeued_total": (
        "counter",
        "jobs requeued after a worker crash or per-job timeout",
    ),
    "jobs_warm_total": (
        "counter",
        "jobs served whole from the result store without dispatching",
    ),
    "store_hits_total": ("counter", "trials served from the result store"),
    "store_misses_total": ("counter", "trials actually executed (engine calls)"),
    "trials_total": ("counter", "trials folded into sweep aggregates"),
    "workers_spawned_total": ("counter", "worker processes started (incl. replacements)"),
    "workers_crashed_total": ("counter", "worker processes that died or were timed out"),
    # Storage-engine counters, synced from the result store's monotonic
    # StorageCounters before every exposition (see Service.sync_store_metrics).
    "store_compactions_total": ("counter", "result-store shard compactions"),
    "store_evictions_total": (
        "counter",
        "result-store entries evicted by size/age policy",
    ),
    "store_index_hits_total": (
        "counter",
        "result-store lookups answered by a shard offset index",
    ),
    "store_index_misses_total": (
        "counter",
        "result-store lookups whose key was absent from every index",
    ),
    "stores_migrated_total": (
        "counter",
        "legacy single-file stores migrated to the sharded layout on open",
    ),
    "jobs_queued": ("gauge", "jobs currently waiting on the priority queue"),
    "jobs_running": ("gauge", "jobs currently executing on a worker"),
    "sweeps_active": ("gauge", "sweeps currently queued or running"),
    "workers_alive": ("gauge", "worker processes currently alive"),
    "store_segments": ("gauge", "segment files across the result store's shards"),
    "store_entries": ("gauge", "live entries in the result store (all kinds)"),
    "store_garbage_ratio": (
        "gauge",
        "superseded+corrupt fraction of the result store's resident lines",
    ),
    "uptime_seconds": ("gauge", "seconds since the service started"),
    "trials_per_second": ("gauge", "trials folded per second of uptime"),
}


class Counters:
    """A fixed catalogue of named counters/gauges behind one lock.

    >>> c = Counters()
    >>> c.inc("trials_total", 3)
    >>> c.get("trials_total")
    3
    >>> c.set_gauge("workers_alive", 2)
    >>> "repro_workers_alive 2" in c.to_prometheus()
    True
    """

    def __init__(self, *, prefix: str = "repro", clock=time.time) -> None:
        self.prefix = prefix
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {name: 0 for name in SERVICE_METRICS}

    def inc(self, name: str, n: float = 1) -> None:
        if name not in SERVICE_METRICS:
            raise KeyError(f"unknown metric {name!r}")
        with self._lock:
            self._values[name] += n

    def set_gauge(self, name: str, value: float) -> None:
        if SERVICE_METRICS[name][0] != "gauge":
            raise KeyError(f"{name!r} is not a gauge")
        with self._lock:
            self._values[name] = value

    def set_value(self, name: str, value: float) -> None:
        """Overwrite a metric with an absolute value (counter or gauge).

        Used to mirror externally-maintained monotonic counters — the
        storage engine keeps its own :class:`~repro.storage.counters.
        StorageCounters`; the service copies them in before each
        exposition rather than double-counting increments.
        """
        if name not in SERVICE_METRICS:
            raise KeyError(f"unknown metric {name!r}")
        with self._lock:
            self._values[name] = value

    def get(self, name: str) -> float:
        with self._lock:
            value = self._values[name]
        return int(value) if float(value).is_integer() else value

    def _derived(self) -> None:
        """Refresh the gauges computed from other metrics (caller locks)."""
        uptime = max(self._clock() - self._started, 1e-9)
        self._values["uptime_seconds"] = uptime
        self._values["trials_per_second"] = self._values["trials_total"] / uptime

    def snapshot(self) -> Dict[str, float]:
        """All metrics as plain numbers (the JSON status payload)."""
        with self._lock:
            self._derived()
            return {
                k: (int(v) if float(v).is_integer() else v)
                for k, v in self._values.items()
            }

    def to_prometheus(self, names: Iterable[str] = ()) -> str:
        """The exposition body for ``GET /metrics``."""
        wanted = tuple(names) or tuple(SERVICE_METRICS)
        snap = self.snapshot()
        lines = []
        for name in wanted:
            kind, doc = SERVICE_METRICS[name]
            full = f"{self.prefix}_{name}"
            value = snap[name]
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines += [
                f"# HELP {full} {doc}",
                f"# TYPE {full} {kind}",
                f"{full} {rendered}",
            ]
        return "\n".join(lines) + "\n"
