"""The long-running sweep service: HTTP front end + worker-pool back end.

:class:`SweepService` wires four pieces together (started with
``python -m repro serve`` or embedded in-process, e.g. by the tests):

* a :class:`~repro.service.scheduler.Scheduler` holding all sweep/job
  state behind its own lock;
* a pool of **spawned** worker processes, each with a private job queue
  (exact crash attribution) and a shared event queue back to the server;
* a single **service loop thread** that pumps worker events, dispatches
  queued jobs to idle workers, detects dead workers and per-job timeouts
  (requeue with bounded attempts, then fail), and respawns replacements;
* a :class:`ThreadingHTTPServer` exposing the REST surface::

      POST   /sweeps             submit a SweepSpec (dedup by content hash)
      GET    /sweeps             list sweeps
      GET    /sweeps/{id}        status + live streaming stats
      GET    /sweeps/{id}/results  aggregated rows + fingerprint
      DELETE /sweeps/{id}        cancel
      GET    /healthz            liveness (workers, queue depth, drain state)
      GET    /metrics            Prometheus text format

All stdlib: ``http.server``, ``multiprocessing``, ``threading``.  Graceful
drain (SIGTERM path): stop accepting submissions, let outstanding jobs
finish (bounded by ``drain_timeout``), send each worker its sentinel, join,
then stop the HTTP server — no orphan processes.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api.specs import RunResult
from ..api.store import ResultStore
from ..api.sweeps import SweepSpec
from ..errors import ReproError, SpecError
from .metrics import Counters
from .scheduler import Scheduler, SchedulerError

__all__ = ["ServiceConfig", "SweepService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    store: str
    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is SweepService.port)
    batch: Union[str, bool] = "auto"
    backend: str = "auto"
    job_timeout: float = 300.0
    max_attempts: int = 3
    heartbeat_interval: float = 1.0
    job_chunk: Optional[int] = None
    #: Merge compatible grid points into multi-segment jobs (stacked
    #: kernel calls on the worker); results are unaffected.
    merge_points: bool = True
    fsync: bool = False
    drain_timeout: float = 30.0
    #: Service-loop tick (event pump timeout); tests shrink it.
    tick: float = 0.05


@dataclass
class _WorkerHandle:
    id: str
    process: Any
    queue: Any
    job_key: Optional[str] = None
    job_id: Optional[str] = None
    dispatched_at: Optional[float] = None
    last_heartbeat: float = field(default_factory=time.time)
    ready: bool = False

    @property
    def idle(self) -> bool:
        return self.ready and self.job_key is None


class SweepService:
    """The running service (see module docstring).  Context-manageable:

    ``with SweepService(config) as svc:`` starts workers, the loop thread
    and the HTTP listener, and drains everything on exit.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.counters = Counters()
        self.store = ResultStore(config.store, fsync=config.fsync)
        self.scheduler = Scheduler(
            self.store,
            self.counters,
            max_attempts=config.max_attempts,
            job_chunk=config.job_chunk,
            merge_points=config.merge_points,
        )
        self.started_at: Optional[float] = None
        self._ctx = multiprocessing.get_context("spawn")
        self._events = self._ctx.Queue()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._worker_seq = itertools.count()
        self._loop_thread: Optional[threading.Thread] = None
        self._http_thread: Optional[threading.Thread] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._stop_loop = threading.Event()
        self._preready_deaths = 0
        self.draining = False

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "SweepService":
        if self.started_at is not None:
            raise RuntimeError("service already started")
        # Bind before spawning: a port conflict must not leave worker
        # processes behind.
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _make_handler(self)
        )
        self._httpd.daemon_threads = True
        self.started_at = time.time()
        for _ in range(max(1, self.config.workers)):
            self._spawn_worker()
        self._loop_thread = threading.Thread(
            target=self._loop, name="service-loop", daemon=True
        )
        self._loop_thread.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def begin_drain(self) -> None:
        """Stop accepting submissions; outstanding work keeps running."""
        self.draining = True
        self.scheduler.draining = True

    def stop(self, *, drain: bool = True) -> bool:
        """Shut down: optionally drain outstanding jobs, then stop workers,
        the loop and the HTTP listener.  Returns True on a clean drain
        (False when ``drain_timeout`` forced worker termination)."""
        self.begin_drain()
        clean = True
        if drain:
            deadline = time.time() + self.config.drain_timeout
            while time.time() < deadline:
                if self.scheduler.idle():
                    break
                time.sleep(self.config.tick)
            else:
                clean = False
        # Stop the loop before touching the pool: it mutates _workers on
        # crash detection, and nothing needs event pumping past this point.
        self._stop_loop.set()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
        handles = list(self._workers.values())
        for handle in handles:
            try:
                handle.queue.put(None)
            except Exception:
                pass
        deadline = time.time() + max(self.config.drain_timeout, 5.0)
        for handle in handles:
            handle.process.join(timeout=max(deadline - time.time(), 0.1))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
                clean = False
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        self.counters.set_gauge("workers_alive", 0)
        return clean

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker pool ----------------------------------------------------- #

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = f"w{next(self._worker_seq)}"
        queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_entry,
            args=(
                worker_id,
                queue,
                self._events,
                {
                    "store": str(self.config.store),
                    "batch": self.config.batch,
                    "backend": self.config.backend,
                    "fsync": self.config.fsync,
                    "heartbeat_interval": self.config.heartbeat_interval,
                },
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(id=worker_id, process=process, queue=queue)
        self._workers[worker_id] = handle
        self.counters.inc("workers_spawned_total")
        self._refresh_worker_gauge()
        return handle

    def _refresh_worker_gauge(self) -> None:
        self.counters.set_gauge("workers_alive", self.workers_alive())

    def workers_alive(self) -> int:
        # list() first: HTTP threads call this while the loop thread
        # replaces crashed workers.
        return sum(
            1 for h in list(self._workers.values()) if h.process.is_alive()
        )

    # -- the service loop ------------------------------------------------ #

    def _loop(self) -> None:
        while not self._stop_loop.is_set():
            drained_something = self._pump_events()
            self._check_liveness()
            self._dispatch()
            if not drained_something:
                self._stop_loop.wait(self.config.tick)

    def _pump_events(self) -> bool:
        import queue as _queue

        got = False
        while True:
            try:
                event = self._events.get_nowait()
            except (_queue.Empty, OSError):
                return got
            got = True
            self._handle_event(event)

    def _handle_event(self, event: Tuple) -> None:
        kind, worker_id = event[0], event[1]
        handle = self._workers.get(worker_id)
        if kind == "ready" and handle is not None:
            handle.ready = True
            handle.last_heartbeat = time.time()
            self._preready_deaths = 0
        elif kind == "hb" and handle is not None:
            handle.last_heartbeat = event[2]
        elif kind == "done":
            _, _, job_key, result_dicts, hits, misses = event
            results = [RunResult.from_dict(d) for d in result_dicts]
            self.scheduler.job_done(job_key, results, hits=hits, misses=misses)
            self._release(handle, job_key)
        elif kind == "error":
            _, _, job_key, trace = event
            self.scheduler.job_failed(job_key, trace)
            self._release(handle, job_key)
        elif kind == "bye" and handle is not None:
            handle.ready = False

    def _release(self, handle: Optional[_WorkerHandle], job_key: str) -> None:
        if handle is not None and handle.job_key == job_key:
            handle.job_key = None
            handle.job_id = None
            handle.dispatched_at = None

    def _check_liveness(self) -> None:
        now = time.time()
        for worker_id in list(self._workers):
            handle = self._workers[worker_id]
            alive = handle.process.is_alive()
            timed_out = (
                alive
                and handle.job_key is not None
                and handle.dispatched_at is not None
                and now - handle.dispatched_at > self.config.job_timeout
            )
            if alive and not timed_out:
                continue
            if timed_out:
                handle.process.terminate()
                handle.process.join(timeout=5.0)
                reason = f"job timeout after {self.config.job_timeout:g}s"
            else:
                reason = f"worker {worker_id} died (exitcode {handle.process.exitcode})"
            self.counters.inc("workers_crashed_total")
            if handle.job_key is not None:
                self.scheduler.requeue(handle.job_key, reason)
            elif not handle.ready:
                # Died before its "ready" event: likely an environment
                # problem every replacement would share — bound the storm.
                self._preready_deaths += 1
            del self._workers[worker_id]
            handle.queue.close()
            if not self.draining and self._preready_deaths < 5:
                self._spawn_worker()
            self._refresh_worker_gauge()

    def _dispatch(self) -> None:
        for handle in self._workers.values():
            if not handle.idle:
                continue
            popped = self.scheduler.next_job()
            if popped is None:
                return
            job, spec_dict = popped
            job.worker = handle.id
            handle.job_key = job.key
            handle.job_id = job.id
            handle.dispatched_at = time.time()
            handle.queue.put((job.key, spec_dict, list(job.segments)))

    # -- HTTP payload helpers -------------------------------------------- #

    def sync_store_metrics(self) -> None:
        """Mirror the storage engine's counters into the service registry.

        The engine keeps its own monotonic :class:`StorageCounters`; the
        service copies the operationally interesting subset (plus three
        index-served gauges) right before each exposition, so ``/metrics``
        and ``sweep status`` always show the storage engine's current view
        without the engine knowing about the service.
        """
        sc = self.store.counters
        c = self.counters
        c.set_value("store_compactions_total", sc.get("compactions"))
        c.set_value("store_evictions_total", sc.get("evictions"))
        c.set_value("store_index_hits_total", sc.get("index_hits"))
        c.set_value("store_index_misses_total", sc.get("index_misses"))
        c.set_value("stores_migrated_total", sc.get("stores_migrated"))
        stats = self.store.stats()
        c.set_gauge("store_segments", stats.segments)
        c.set_gauge(
            "store_entries", stats.results + stats.baselines + stats.tables
        )
        c.set_gauge("store_garbage_ratio", round(stats.garbage_ratio, 6))

    def sweep_status(self, sweep_id: str) -> Dict[str, Any]:
        """``GET /sweeps/{id}``: the scheduler's view plus the service-level
        counters (so ``sweep status`` can show scheduler/worker health)."""
        payload = self.scheduler.status(sweep_id)
        self.sync_store_metrics()
        payload["service"] = self.counters.snapshot()
        return payload

    def healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "draining": self.draining,
            "workers": {
                "alive": self.workers_alive(),
                "configured": self.config.workers,
            },
            "queue_depth": self.scheduler.queue_depth(),
            "inflight": self.scheduler.inflight(),
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        }

    def sweep_index(self) -> List[Dict[str, Any]]:
        return [
            {
                "id": e.id,
                "hash": e.hash,
                "label": e.spec.label,
                "state": e.state,
                "trials_done": e.driver.total,
                "dedup_count": e.dedup_count,
            }
            for e in self.scheduler.entries()
        ]

    def submit(self, payload: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Parse a ``POST /sweeps`` body (a bare SweepSpec dict, or
        ``{"sweep": {...}, "priority": N}``) and register it."""
        if not isinstance(payload, dict):
            raise SpecError("sweep submission must be a JSON object")
        priority = 0
        if "sweep" in payload:
            priority = int(payload.get("priority", 0))
            spec_dict = payload["sweep"]
        else:
            spec_dict = payload
        spec = SweepSpec.from_dict(spec_dict)
        entry, deduped = self.scheduler.submit(spec, priority=priority)
        return (
            {
                "id": entry.id,
                "hash": entry.hash,
                "state": entry.state,
                "deduped": deduped,
            },
            deduped,
        )


def _worker_entry(worker_id, job_queue, event_queue, config) -> None:
    """Spawn target (module-level so the spawn pickler can import it)."""
    from .worker import worker_main

    worker_main(worker_id, job_queue, event_queue, config)


# --------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------- #


def _make_handler(service: SweepService):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-sweep-service/1.0"
        protocol_version = "HTTP/1.1"

        # Quiet by default: the CLI prints its own lifecycle lines.
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass

        # -- plumbing ------------------------------------------------- #

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _sweep_id(self, suffix: str = "") -> Optional[str]:
            path = self.path.split("?", 1)[0].rstrip("/")
            prefix = "/sweeps/"
            if not path.startswith(prefix):
                return None
            rest = path[len(prefix):]
            if suffix:
                if not rest.endswith("/" + suffix):
                    return None
                rest = rest[: -len(suffix) - 1]
            return rest if rest and "/" not in rest else None

        # -- routes ---------------------------------------------------- #

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/healthz":
                    self._send_json(200, service.healthz())
                elif path == "/metrics":
                    service.sync_store_metrics()
                    self._send_text(
                        200,
                        service.counters.to_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif path == "/sweeps":
                    self._send_json(200, {"sweeps": service.sweep_index()})
                elif (sweep_id := self._sweep_id("results")) is not None:
                    self._send_json(200, service.scheduler.results(sweep_id))
                elif (sweep_id := self._sweep_id()) is not None:
                    self._send_json(200, service.sweep_status(sweep_id))
                else:
                    self._error(404, f"no route for GET {path}")
            except SchedulerError as exc:
                self._error(404, str(exc))
            except Exception as exc:  # never kill the handler thread
                self._error(500, f"{type(exc).__name__}: {exc}")

        def do_POST(self) -> None:  # noqa: N802
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/sweeps":
                self._error(404, f"no route for POST {path}")
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length) if length else b""
                payload = json.loads(raw.decode("utf-8") or "{}")
                response, deduped = service.submit(payload)
                self._send_json(200 if deduped else 201, response)
            except SchedulerError as exc:
                self._error(503, str(exc))
            except (ReproError, ValueError) as exc:
                self._error(400, str(exc))
            except Exception as exc:
                self._error(500, f"{type(exc).__name__}: {exc}")

        def do_DELETE(self) -> None:  # noqa: N802
            sweep_id = self._sweep_id()
            if sweep_id is None:
                self._error(404, f"no route for DELETE {self.path}")
                return
            try:
                entry = service.scheduler.cancel(sweep_id)
                self._send_json(200, {"id": entry.id, "state": entry.state})
            except SchedulerError as exc:
                self._error(404, str(exc))
            except Exception as exc:
                self._error(500, f"{type(exc).__name__}: {exc}")

    return Handler
