"""Worker-process entry point: pull jobs, execute trials, report back.

Each worker is a separate OS process (spawned, not forked — the server is
multi-threaded, and forking a threaded process inherits arbitrary lock
state).  The protocol is deliberately tiny:

* the server pushes ``(job key, sweep spec dict, segments)`` tuples onto
  the worker's private job queue — ``segments`` an ordered list of
  ``(point index, first trial, n trials)`` ranges, several when the
  scheduler merged compatible grid points into one job — one queue per
  worker, so crash attribution is exact — and ``None`` as the drain
  sentinel;
* the worker executes each job through a long-lived
  :class:`~repro.api.session.Session` bound to the *shared* result store
  (advisory-locked appends; trials already on disk are served as hits) and
  pushes ``("done", worker id, job key, [result dicts], hits, misses)``
  onto the shared event queue;
* a daemon heartbeat thread pushes ``("hb", worker id, timestamp, job
  key)`` every ``heartbeat_interval`` seconds so the server can tell a
  long-running job from a hung worker;
* execution errors are reported as ``("error", ...)`` with a traceback —
  the scheduler fails the sweep, because scenario execution is
  deterministic and a retry would raise identically.  Crashes need no
  protocol at all: the server notices the dead process and requeues.

Trials are executed through :func:`repro.api.sweeps.execute_units` — the
exact code path :func:`run_sweep` uses locally — so a distributed sweep's
per-trial results, store entries and fingerprints are bit-identical to a
single-process run by construction.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

__all__ = ["worker_main"]

#: Seconds a worker blocks on its job queue before re-checking for exit.
_POLL_S = 0.2


def _build_session(config: Dict[str, Any]):
    from ..api.session import Session
    from ..api.store import ResultStore

    store = ResultStore(config["store"], fsync=bool(config.get("fsync", False)))
    return Session(
        store=store,
        workers=1,
        batch=config.get("batch", "auto"),
        backend=config.get("backend"),
    )


def worker_main(
    worker_id: str,
    job_queue,
    event_queue,
    config: Dict[str, Any],
) -> None:
    """Run the worker loop until the ``None`` sentinel arrives.

    ``config`` keys: ``store`` (shared store directory), ``batch``
    (execution strategy, as :class:`Session` accepts), ``backend`` (kernel
    backend selector, as :class:`Session` accepts), ``fsync`` (durable
    appends), ``heartbeat_interval`` (seconds).
    """
    from ..api.sweeps import SweepSpec, execute_units

    session = _build_session(config)
    hb_interval = float(config.get("heartbeat_interval", 1.0))
    current: Dict[str, Optional[str]] = {"job": None}
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(hb_interval):
            try:
                event_queue.put(("hb", worker_id, time.time(), current["job"]))
            except Exception:  # queue torn down mid-shutdown
                return

    threading.Thread(target=_heartbeat, daemon=True, name="heartbeat").start()
    event_queue.put(("ready", worker_id, time.time()))

    # Sweep expansion is deterministic but not free; cache the expanded
    # grid per sweep hash so a sweep's later jobs skip re-expansion.
    sweeps: Dict[str, Tuple[Any, list]] = {}

    while True:
        try:
            message = job_queue.get(timeout=_POLL_S)
        except Exception:  # queue.Empty — loop to stay responsive to EOF
            continue
        if message is None:
            break
        job_key, sweep_dict, segments = message
        current["job"] = job_key
        try:
            sweep_hash = sweep_dict.get("__hash__")
            cached = sweeps.get(sweep_hash) if sweep_hash else None
            if cached is None:
                payload = {k: v for k, v in sweep_dict.items() if k != "__hash__"}
                sweep = SweepSpec.from_dict(payload)
                cached = (sweep, sweep.points())
                sweeps[sweep_hash or sweep.hash()] = cached
            sweep, points = cached
            units = [
                (point_index, t)
                for point_index, trial_start, n_trials in segments
                for t in range(trial_start, trial_start + n_trials)
            ]
            specs = [sweep.trial_spec(points[p], t) for p, t in units]
            hits0, misses0 = session.hits, session.misses
            results = execute_units(
                session, units, specs, config.get("batch", "auto")
            )
            event_queue.put(
                (
                    "done",
                    worker_id,
                    job_key,
                    [r.to_dict() for r in results],
                    session.hits - hits0,
                    session.misses - misses0,
                )
            )
        except Exception:
            event_queue.put(
                ("error", worker_id, job_key, traceback.format_exc(limit=20))
            )
        finally:
            current["job"] = None

    stop.set()
    event_queue.put(("bye", worker_id, time.time()))
