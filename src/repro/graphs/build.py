"""Interop builders: adjacency matrices and networkx conversion.

networkx is an *optional* dependency used only as a cross-check oracle in the
test-suite and for user convenience; the library itself never imports it at
module scope.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from ..errors import InvalidGraphError
from .graph import Graph

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = ["from_scipy_sparse", "to_scipy_sparse", "from_networkx", "to_networkx"]


def from_scipy_sparse(matrix: sp.spmatrix, *, name: str = "graph") -> Graph:
    """Build a :class:`Graph` from a (symmetric, hollow) sparse adjacency matrix.

    Nonzero pattern defines edges; values are ignored.  Asymmetric patterns
    are symmetrised; diagonal entries raise.
    """
    csr = sp.csr_matrix(matrix)
    if csr.shape[0] != csr.shape[1]:
        raise InvalidGraphError(f"adjacency must be square, got {csr.shape}")
    if csr.diagonal().any():
        raise InvalidGraphError("self-loops (nonzero diagonal) are not allowed")
    coo = csr.tocoo()
    edges = np.column_stack([coo.row, coo.col]).astype(np.int64)
    edges = edges[edges[:, 0] < edges[:, 1]]
    sym = sp.coo_matrix(
        (np.ones(coo.row.shape[0]), (coo.row, coo.col)), shape=csr.shape
    )
    if (sym != sym.T).nnz:
        # symmetrise by union of patterns
        both = coo
        edges = np.column_stack([both.row, both.col]).astype(np.int64)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        edges = np.unique(np.column_stack([lo, hi]), axis=0)
    return Graph.from_edges(csr.shape[0], edges, name=name)


def to_scipy_sparse(graph: Graph) -> sp.csr_matrix:
    """Adjacency matrix of ``graph`` as ``csr_matrix`` with unit weights."""
    data = np.ones(graph.indices.shape[0], dtype=np.float64)
    return sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(graph.n, graph.n)
    )


def from_networkx(nx_graph: "networkx.Graph", *, name: str | None = None) -> Graph:
    """Convert a networkx graph (nodes relabelled to ``0..n-1`` in sorted
    order when possible, insertion order otherwise)."""
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {v: i for i, v in enumerate(nodes)}
    edges = np.array(
        [[index[u], index[v]] for u, v in nx_graph.edges() if u != v], dtype=np.int64
    ).reshape(-1, 2)
    return Graph.from_edges(
        len(nodes), edges, name=name or (nx_graph.name or "from-networkx")
    )


def to_networkx(graph: Graph) -> "networkx.Graph":
    """Convert to a networkx graph (requires networkx installed)."""
    import networkx as nx

    g: Any = nx.Graph(name=graph.name)
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(map(tuple, graph.edge_array().tolist()))
    return g
