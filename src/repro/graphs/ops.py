"""Set-level graph operators: boundaries, expansion ratios, volumes.

These implement the quantities the paper is written in terms of:

* ``Γ(S)`` — the *node boundary*: nodes outside ``S`` adjacent to ``S``
  (paper §1.3, used by `Prune` and the span definition);
* ``Γe(S)`` / ``(S, V\\S)`` — the *edge boundary*: edges with exactly one
  endpoint in ``S`` (used by `Prune2` and edge expansion);
* the per-set node/edge expansion ratios ``α(S)`` and ``αe(S)``.

All functions accept either an index array or a boolean mask for ``S`` and
are fully vectorised (one neighbour gather + masking).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..errors import InvalidParameterError
from .graph import Graph, neighbors_of_many

__all__ = [
    "as_mask",
    "as_indices",
    "node_boundary",
    "node_boundary_size",
    "edge_boundary_count",
    "edge_boundary",
    "node_expansion_of_set",
    "edge_expansion_of_set",
    "volume",
    "closed_neighborhood",
]

SetLike = Union[np.ndarray, Sequence[int]]


def as_mask(graph: Graph, subset: SetLike) -> np.ndarray:
    """Canonicalise ``subset`` into a boolean membership mask of length ``n``."""
    arr = np.asarray(subset)
    if arr.dtype == bool:
        if arr.shape != (graph.n,):
            raise InvalidParameterError(
                f"boolean mask must have shape ({graph.n},), got {arr.shape}"
            )
        return arr
    mask = np.zeros(graph.n, dtype=bool)
    idx = np.asarray(arr, dtype=np.int64).ravel()
    if idx.size:
        if idx.min() < 0 or idx.max() >= graph.n:
            raise InvalidParameterError(f"subset ids outside [0, {graph.n})")
        mask[idx] = True
    return mask


def as_indices(graph: Graph, subset: SetLike) -> np.ndarray:
    """Canonicalise ``subset`` into a sorted ``int64`` index array."""
    arr = np.asarray(subset)
    if arr.dtype == bool:
        if arr.shape != (graph.n,):
            raise InvalidParameterError(
                f"boolean mask must have shape ({graph.n},), got {arr.shape}"
            )
        return np.flatnonzero(arr)
    idx = np.unique(np.asarray(arr, dtype=np.int64).ravel())
    if idx.size and (idx[0] < 0 or idx[-1] >= graph.n):
        raise InvalidParameterError(f"subset ids outside [0, {graph.n})")
    return idx


def node_boundary(graph: Graph, subset: SetLike) -> np.ndarray:
    """``Γ(S)``: sorted ids of nodes outside ``S`` adjacent to some node of ``S``."""
    mask = as_mask(graph, subset)
    idx = np.flatnonzero(mask)
    nbrs = neighbors_of_many(graph, idx)
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64)
    outside = nbrs[~mask[nbrs]]
    return np.unique(outside)


def node_boundary_size(graph: Graph, subset: SetLike) -> int:
    """``|Γ(S)|`` without materialising the boundary id list."""
    return int(node_boundary(graph, subset).shape[0])


def edge_boundary_count(graph: Graph, subset: SetLike) -> int:
    """``|(S, V\\S)|``: number of edges with exactly one endpoint in ``S``."""
    mask = as_mask(graph, subset)
    idx = np.flatnonzero(mask)
    nbrs = neighbors_of_many(graph, idx)
    if nbrs.size == 0:
        return 0
    return int(np.count_nonzero(~mask[nbrs]))


def edge_boundary(graph: Graph, subset: SetLike) -> np.ndarray:
    """Crossing edges as an ``(k, 2)`` array with the ``S``-endpoint first."""
    mask = as_mask(graph, subset)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    counts = graph.indptr[idx + 1] - graph.indptr[idx]
    src = np.repeat(idx, counts)
    dst = neighbors_of_many(graph, idx)
    keep = ~mask[dst]
    return np.column_stack([src[keep], dst[keep]])


def node_expansion_of_set(graph: Graph, subset: SetLike) -> float:
    """``α(S) = |Γ(S)| / |S|`` (paper §1.3).  Raises for empty ``S``."""
    idx = as_indices(graph, subset)
    if idx.size == 0:
        raise InvalidParameterError("expansion of the empty set is undefined")
    return node_boundary_size(graph, idx) / idx.size


def edge_expansion_of_set(graph: Graph, subset: SetLike) -> float:
    """``αe(S) = |(S, V\\S)| / min(|S|, |V\\S|)`` (paper §1.3).

    Raises for empty ``S`` or ``S = V`` (the minimum would be 0).
    """
    idx = as_indices(graph, subset)
    if idx.size == 0 or idx.size == graph.n:
        raise InvalidParameterError("edge expansion needs a proper non-empty subset")
    denom = min(idx.size, graph.n - idx.size)
    return edge_boundary_count(graph, idx) / denom


def volume(graph: Graph, subset: SetLike) -> int:
    """Sum of degrees over ``S`` (the conductance denominator)."""
    idx = as_indices(graph, subset)
    return int(graph.degrees[idx].sum())


def closed_neighborhood(graph: Graph, subset: SetLike) -> np.ndarray:
    """``S ∪ Γ(S)`` as a sorted id array."""
    idx = as_indices(graph, subset)
    return np.union1d(idx, node_boundary(graph, idx))
