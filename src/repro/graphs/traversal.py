"""Vectorised traversal primitives: BFS, connected components, distances.

BFS expands whole frontiers at a time with one neighbour gather per level
(O(levels) numpy calls instead of O(edges) Python iterations), which is the
main reason the experiment sweeps run at laptop scale.  Connected components
are implemented two ways — frontier BFS and union-find over the edge list —
and cross-checked in tests; BFS is the default as it profiles faster on the
mesh-like graphs used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..util.unionfind import UnionFind
from .graph import Graph, neighbors_of_many

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "connected_components_unionfind",
    "component_sizes",
    "largest_component",
    "largest_component_fraction",
    "is_connected",
    "is_subset_connected",
    "eccentricity",
    "pairwise_distupdate",
    "ComponentSummary",
    "component_summary",
]

UNREACHED = np.int64(-1)


def bfs_distances(graph: Graph, sources: Sequence[int] | np.ndarray | int) -> np.ndarray:
    """Multi-source BFS distances; unreachable nodes get ``-1``.

    Parameters
    ----------
    sources:
        A node id or an array of them (distance 0 seeds).
    """
    if isinstance(sources, (int, np.integer)):
        sources = np.array([sources], dtype=np.int64)
    src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        raise InvalidParameterError("bfs_distances needs at least one source")
    if src.min() < 0 or src.max() >= graph.n:
        raise InvalidParameterError(f"source ids outside [0, {graph.n})")
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    frontier = np.unique(src)
    dist[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        nbrs = neighbors_of_many(graph, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_tree(graph: Graph, root: int) -> np.ndarray:
    """BFS predecessor array from ``root``; ``parent[root] = root``,
    unreachable nodes get ``-1``.  Used to extract explicit paths."""
    if not 0 <= root < graph.n:
        raise InvalidParameterError(f"root {root} outside [0, {graph.n})")
    parent = np.full(graph.n, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        counts = graph.indptr[frontier + 1] - graph.indptr[frontier]
        srcs = np.repeat(frontier, counts)
        nbrs = neighbors_of_many(graph, frontier)
        new_mask = parent[nbrs] == -1
        nbrs, srcs = nbrs[new_mask], srcs[new_mask]
        if nbrs.size == 0:
            break
        # keep the first discovered parent per node
        uniq, first = np.unique(nbrs, return_index=True)
        parent[uniq] = srcs[first]
        frontier = uniq
    return parent


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per node (labels dense, ordered by smallest member)."""
    labels = np.full(graph.n, -1, dtype=np.int64)
    current = 0
    unvisited_ptr = 0
    while True:
        # advance to the next unlabelled node
        while unvisited_ptr < graph.n and labels[unvisited_ptr] != -1:
            unvisited_ptr += 1
        if unvisited_ptr >= graph.n:
            break
        frontier = np.array([unvisited_ptr], dtype=np.int64)
        labels[frontier] = current
        while frontier.size:
            nbrs = neighbors_of_many(graph, frontier)
            if nbrs.size == 0:
                break
            fresh = np.unique(nbrs[labels[nbrs] == -1])
            if fresh.size == 0:
                break
            labels[fresh] = current
            frontier = fresh
        current += 1
    return labels


def connected_components_unionfind(graph: Graph) -> np.ndarray:
    """Component labels via union-find over the edge list (oracle variant)."""
    uf = UnionFind(graph.n)
    edges = graph.edge_array()
    if edges.size:
        uf.union_edges(edges[:, 0], edges[:, 1])
    return uf.labels()


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes per component label (index = label)."""
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.bincount(labels).astype(np.int64)


def largest_component(graph: Graph) -> np.ndarray:
    """Sorted node ids of one largest connected component."""
    if graph.n == 0:
        return np.empty(0, dtype=np.int64)
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))


def largest_component_fraction(graph: Graph) -> float:
    """``γ(G)``: fraction of nodes in a largest component (paper §1.1);
    0.0 for the empty graph."""
    if graph.n == 0:
        return 0.0
    labels = connected_components(graph)
    return int(component_sizes(labels).max()) / graph.n


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n <= 1:
        return True
    dist = bfs_distances(graph, 0)
    return bool(np.all(dist >= 0))


def is_subset_connected(graph: Graph, subset: np.ndarray) -> bool:
    """Whether the induced subgraph on ``subset`` is connected.

    Runs BFS restricted to the subset without materialising the subgraph —
    this is on the hot path of compact-set checks.
    """
    idx = np.asarray(subset)
    if idx.dtype == bool:
        idx = np.flatnonzero(idx)
    else:
        idx = np.unique(np.asarray(idx, dtype=np.int64))
    if idx.size <= 1:
        return True
    inside = np.zeros(graph.n, dtype=bool)
    inside[idx] = True
    seen = np.zeros(graph.n, dtype=bool)
    frontier = idx[:1]
    seen[frontier] = True
    reached = 1
    while frontier.size:
        nbrs = neighbors_of_many(graph, frontier)
        if nbrs.size == 0:
            break
        cand = nbrs[inside[nbrs] & ~seen[nbrs]]
        if cand.size == 0:
            break
        frontier = np.unique(cand)
        seen[frontier] = True
        reached += frontier.size
    return reached == idx.size


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum BFS distance from ``v``; raises if the graph is disconnected."""
    dist = bfs_distances(graph, v)
    if np.any(dist < 0):
        raise NotConnectedError("eccentricity undefined on a disconnected graph")
    return int(dist.max())


def pairwise_distupdate(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """Distances for explicit ``(source, target)`` pairs.

    Groups pairs by source so each distinct source costs one BFS.  Returns
    ``-1`` where the target is unreachable.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise InvalidParameterError("pairs must have shape (k, 2)")
    out = np.empty(pairs.shape[0], dtype=np.int64)
    order = np.argsort(pairs[:, 0], kind="stable")
    sorted_pairs = pairs[order]
    i = 0
    while i < sorted_pairs.shape[0]:
        s = sorted_pairs[i, 0]
        j = i
        while j < sorted_pairs.shape[0] and sorted_pairs[j, 0] == s:
            j += 1
        dist = bfs_distances(graph, int(s))
        out[order[i:j]] = dist[sorted_pairs[i:j, 1]]
        i = j
    return out


@dataclass(frozen=True)
class ComponentSummary:
    """Connectivity digest used throughout the experiment reports."""

    n_components: int
    largest_size: int
    largest_fraction: float
    sizes: np.ndarray

    def sublinear_against(self, n_original: int, threshold: float = 0.5) -> bool:
        """Whether the largest component has fallen below ``threshold`` of
        the original node count — the paper's notion of 'disintegrated'."""
        if n_original <= 0:
            return True
        return self.largest_size < threshold * n_original


def component_summary(graph: Graph) -> ComponentSummary:
    """Compute a :class:`ComponentSummary` for ``graph``."""
    if graph.n == 0:
        return ComponentSummary(0, 0, 0.0, np.empty(0, dtype=np.int64))
    labels = connected_components(graph)
    sizes = np.sort(component_sizes(labels))[::-1]
    return ComponentSummary(
        n_components=int(sizes.shape[0]),
        largest_size=int(sizes[0]),
        largest_fraction=float(sizes[0] / graph.n),
        sizes=sizes,
    )
