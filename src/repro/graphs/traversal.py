"""Vectorised traversal primitives: BFS, connected components, distances.

BFS expands whole frontiers at a time with one neighbour gather per level
(O(levels) numpy calls instead of O(edges) Python iterations), which is the
main reason the experiment sweeps run at laptop scale.  Connected components
are implemented two ways — frontier BFS and union-find over the edge list —
and cross-checked in tests; BFS is the default as it profiles faster on the
mesh-like graphs used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..util.unionfind import UnionFind
from .graph import Graph, neighbors_of_many

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "connected_components_unionfind",
    "component_sizes",
    "largest_component",
    "largest_component_fraction",
    "is_connected",
    "is_subset_connected",
    "eccentricity",
    "pairwise_distupdate",
    "ComponentSummary",
    "component_summary",
    "batched_connected_components",
    "batched_component_stats",
    "batched_largest_component_fraction",
    "batched_bfs_distances",
    "batched_boundary_masks",
    "batched_boundary_sizes",
]

UNREACHED = np.int64(-1)


def bfs_distances(graph: Graph, sources: Sequence[int] | np.ndarray | int) -> np.ndarray:
    """Multi-source BFS distances; unreachable nodes get ``-1``.

    Parameters
    ----------
    sources:
        A node id or an array of them (distance 0 seeds).
    """
    if isinstance(sources, (int, np.integer)):
        sources = np.array([sources], dtype=np.int64)
    src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        raise InvalidParameterError("bfs_distances needs at least one source")
    if src.min() < 0 or src.max() >= graph.n:
        raise InvalidParameterError(f"source ids outside [0, {graph.n})")
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    frontier = np.unique(src)
    dist[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        nbrs = neighbors_of_many(graph, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_tree(graph: Graph, root: int) -> np.ndarray:
    """BFS predecessor array from ``root``; ``parent[root] = root``,
    unreachable nodes get ``-1``.  Used to extract explicit paths."""
    if not 0 <= root < graph.n:
        raise InvalidParameterError(f"root {root} outside [0, {graph.n})")
    parent = np.full(graph.n, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        counts = graph.indptr[frontier + 1] - graph.indptr[frontier]
        srcs = np.repeat(frontier, counts)
        nbrs = neighbors_of_many(graph, frontier)
        new_mask = parent[nbrs] == -1
        nbrs, srcs = nbrs[new_mask], srcs[new_mask]
        if nbrs.size == 0:
            break
        # keep the first discovered parent per node
        uniq, first = np.unique(nbrs, return_index=True)
        parent[uniq] = srcs[first]
        frontier = uniq
    return parent


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per node (labels dense, ordered by smallest member)."""
    labels = np.full(graph.n, -1, dtype=np.int64)
    current = 0
    unvisited_ptr = 0
    while True:
        # advance to the next unlabelled node
        while unvisited_ptr < graph.n and labels[unvisited_ptr] != -1:
            unvisited_ptr += 1
        if unvisited_ptr >= graph.n:
            break
        frontier = np.array([unvisited_ptr], dtype=np.int64)
        labels[frontier] = current
        while frontier.size:
            nbrs = neighbors_of_many(graph, frontier)
            if nbrs.size == 0:
                break
            fresh = np.unique(nbrs[labels[nbrs] == -1])
            if fresh.size == 0:
                break
            labels[fresh] = current
            frontier = fresh
        current += 1
    return labels


def connected_components_unionfind(graph: Graph) -> np.ndarray:
    """Component labels via union-find over the edge list (oracle variant)."""
    uf = UnionFind(graph.n)
    edges = graph.edge_array()
    if edges.size:
        uf.union_edges(edges[:, 0], edges[:, 1])
    return uf.labels()


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes per component label (index = label)."""
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.bincount(labels).astype(np.int64)


def largest_component(graph: Graph) -> np.ndarray:
    """Sorted node ids of one largest connected component."""
    if graph.n == 0:
        return np.empty(0, dtype=np.int64)
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))


def largest_component_fraction(graph: Graph) -> float:
    """``γ(G)``: fraction of nodes in a largest component (paper §1.1);
    0.0 for the empty graph."""
    if graph.n == 0:
        return 0.0
    labels = connected_components(graph)
    return int(component_sizes(labels).max()) / graph.n


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n <= 1:
        return True
    dist = bfs_distances(graph, 0)
    return bool(np.all(dist >= 0))


def is_subset_connected(graph: Graph, subset: np.ndarray) -> bool:
    """Whether the induced subgraph on ``subset`` is connected.

    Runs BFS restricted to the subset without materialising the subgraph —
    this is on the hot path of compact-set checks.
    """
    idx = np.asarray(subset)
    if idx.dtype == bool:
        idx = np.flatnonzero(idx)
    else:
        idx = np.unique(np.asarray(idx, dtype=np.int64))
    if idx.size <= 1:
        return True
    inside = np.zeros(graph.n, dtype=bool)
    inside[idx] = True
    seen = np.zeros(graph.n, dtype=bool)
    frontier = idx[:1]
    seen[frontier] = True
    reached = 1
    while frontier.size:
        nbrs = neighbors_of_many(graph, frontier)
        if nbrs.size == 0:
            break
        cand = nbrs[inside[nbrs] & ~seen[nbrs]]
        if cand.size == 0:
            break
        frontier = np.unique(cand)
        seen[frontier] = True
        reached += frontier.size
    return reached == idx.size


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum BFS distance from ``v``; raises if the graph is disconnected."""
    dist = bfs_distances(graph, v)
    if np.any(dist < 0):
        raise NotConnectedError("eccentricity undefined on a disconnected graph")
    return int(dist.max())


def pairwise_distupdate(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """Distances for explicit ``(source, target)`` pairs.

    Groups pairs by source so each distinct source costs one BFS.  Returns
    ``-1`` where the target is unreachable.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise InvalidParameterError("pairs must have shape (k, 2)")
    out = np.empty(pairs.shape[0], dtype=np.int64)
    order = np.argsort(pairs[:, 0], kind="stable")
    sorted_pairs = pairs[order]
    i = 0
    while i < sorted_pairs.shape[0]:
        s = sorted_pairs[i, 0]
        j = i
        while j < sorted_pairs.shape[0] and sorted_pairs[j, 0] == s:
            j += 1
        dist = bfs_distances(graph, int(s))
        out[order[i:j]] = dist[sorted_pairs[i:j, 1]]
        i = j
    return out


@dataclass(frozen=True)
class ComponentSummary:
    """Connectivity digest used throughout the experiment reports."""

    n_components: int
    largest_size: int
    largest_fraction: float
    sizes: np.ndarray

    def sublinear_against(self, n_original: int, threshold: float = 0.5) -> bool:
        """Whether the largest component has fallen below ``threshold`` of
        the original node count — the paper's notion of 'disintegrated'."""
        if n_original <= 0:
            return True
        return self.largest_size < threshold * n_original


def component_summary(graph: Graph) -> ComponentSummary:
    """Compute a :class:`ComponentSummary` for ``graph``."""
    if graph.n == 0:
        return ComponentSummary(0, 0, 0.0, np.empty(0, dtype=np.int64))
    labels = connected_components(graph)
    sizes = np.sort(component_sizes(labels))[::-1]
    return ComponentSummary(
        n_components=int(sizes.shape[0]),
        largest_size=int(sizes[0]),
        largest_fraction=float(sizes[0] / graph.n),
        sizes=sizes,
    )


# --------------------------------------------------------------------- #
# Mask-parallel (batched) variants
# --------------------------------------------------------------------- #
#
# The functions below evaluate T independent fault trials on ONE shared
# graph simultaneously.  A trial is a row of a ``(T, n)`` boolean
# ``alive`` matrix (True = the node survived this trial); bond-style
# trials use a ``(T, m)`` ``edge_alive`` matrix over ``edge_array()``
# order instead.  All per-trial loops are replaced by whole-matrix numpy
# passes over the CSR arrays, so the Python-interpreter cost is O(rounds)
# instead of O(trials × components × levels).
#
# Degenerate inputs are *defined*, never raised: T = 0 and n = 0 return
# correctly-shaped empty results, and a fully-dead row yields zero
# components / an all ``-1`` distance row — the batched engine relies on
# this when a trial happens to kill every node.


def _check_alive_matrix(graph: Graph, alive: np.ndarray) -> np.ndarray:
    alive = np.asarray(alive)
    if alive.dtype != np.bool_:
        raise InvalidParameterError("alive mask matrix must be boolean")
    if alive.ndim != 2 or alive.shape[1] != graph.n:
        raise InvalidParameterError(
            f"alive mask must have shape (T, {graph.n}), got {alive.shape}"
        )
    return alive


def _directed_slot_pairs(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """CSR slot indices of each undirected edge's two directed copies.

    Returns ``(fwd, rev)`` of length ``m`` where ``fwd[k]``/``rev[k]`` are
    the flat CSR positions of edge ``k`` (in :meth:`Graph.edge_array`
    order) as ``u→v`` and ``v→u`` respectively.  Cached on the graph's
    :class:`~repro.graphs.index.GraphIndex`.
    """
    return graph.index.directed_slot_pairs


def batched_connected_components(
    graph: Graph,
    alive: Optional[np.ndarray] = None,
    *,
    edge_alive: Optional[np.ndarray] = None,
    backend: Optional[object] = None,
) -> np.ndarray:
    """Connected-component labels for ``T`` masked trials at once.

    Parameters
    ----------
    alive:
        ``(T, n)`` boolean node-survival matrix (site/fault trials).  May
        be omitted when ``edge_alive`` is given (all nodes alive).
    edge_alive:
        Optional ``(T, m)`` boolean edge-survival matrix in
        :meth:`Graph.edge_array` order (bond trials).  Composable with
        ``alive``: an edge conducts only if it survived *and* both its
        endpoints are alive.
    backend:
        Backend selector forwarded to
        :func:`repro.backend.resolve_backend` (``None`` → environment
        default).  Every backend produces the same canonical labels, so
        this only affects speed.

    Returns
    -------
    numpy.ndarray
        ``(T, n)`` int64 labels: for each alive node the smallest alive
        node id reachable from it (so labels are canonical per component);
        dead nodes get ``-1``.  ``T = 0`` / ``n = 0`` produce empty
        results of the right shape.

    Validation, the ``edge_alive`` → directed-slot expansion and the
    degenerate cases live here; the hot labelling loop is delegated to
    the resolved :mod:`repro.backend` implementation (Shiloach–Vishkin
    over whole matrices for numpy, a JIT-compiled per-trial flood fill
    for numba).  Both produce the canonical labels above, so backend
    choice never changes results.
    """
    if alive is None:
        if edge_alive is None:
            raise InvalidParameterError(
                "batched_connected_components needs 'alive' and/or 'edge_alive'"
            )
        edge_alive = np.asarray(edge_alive)
        alive = np.ones((edge_alive.shape[0], graph.n), dtype=bool)
    alive = _check_alive_matrix(graph, alive)
    n = graph.n
    T = alive.shape[0]
    keep = None
    if edge_alive is not None:
        edge_alive = np.asarray(edge_alive)
        if edge_alive.dtype != np.bool_:
            raise InvalidParameterError("edge_alive matrix must be boolean")
        if edge_alive.ndim != 2 or edge_alive.shape != (T, graph.m):
            raise InvalidParameterError(
                f"edge_alive must have shape ({T}, {graph.m}), "
                f"got {edge_alive.shape}"
            )
        if graph.m:
            fwd, rev = _directed_slot_pairs(graph)
            keep = np.empty((T, graph.indices.shape[0]), dtype=bool)
            keep[:, fwd] = edge_alive
            keep[:, rev] = edge_alive
    if T == 0 or n == 0 or graph.indices.size == 0:
        labels = np.where(alive, np.arange(n, dtype=np.int64)[None, :], np.int64(n))
        return np.where(alive, labels, np.int64(-1))
    from ..backend import resolve_backend

    return resolve_backend(backend).connected_labels(graph, alive, keep)


def batched_component_stats(labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trial ``(n_components, largest_size)`` from batched labels.

    ``labels`` is the ``(T, n)`` output of
    :func:`batched_connected_components` (``-1`` = dead).  Both returned
    arrays have shape ``(T,)``; an all-dead (or ``n = 0``) row reports
    ``0`` components of size ``0``.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise InvalidParameterError("labels must be a (T, n) matrix")
    T, n = labels.shape
    if T == 0 or n == 0:
        zeros = np.zeros(T, dtype=np.int64)
        return zeros, zeros.copy()
    alive = labels >= 0
    n_components = (alive & (labels == np.arange(n, dtype=np.int64))).sum(
        axis=1, dtype=np.int64
    )
    # one shared bincount: offset each row's labels into its own bin range
    offsets = np.arange(T, dtype=np.int64)[:, None] * np.int64(n)
    flat = (labels + offsets)[alive]
    counts = np.bincount(flat, minlength=T * n).reshape(T, n)
    return n_components, counts.max(axis=1).astype(np.int64)


def batched_largest_component_fraction(
    graph: Graph,
    alive: np.ndarray,
    *,
    edge_alive: Optional[np.ndarray] = None,
    backend: Optional[object] = None,
) -> np.ndarray:
    """``γ`` per trial: largest alive-component size over the *original*
    node count (the paper's §1.1 normalisation), as a ``(T,)`` float array.

    Defined for every degenerate input: ``n = 0`` and all-dead rows give
    ``0.0``, a row whose survivors are all isolated gives ``1/n``.
    """
    alive = _check_alive_matrix(graph, alive)
    if graph.n == 0:
        return np.zeros(alive.shape[0], dtype=np.float64)
    labels = batched_connected_components(
        graph, alive, edge_alive=edge_alive, backend=backend
    )
    _, largest = batched_component_stats(labels)
    return largest / float(graph.n)


def batched_bfs_distances(
    graph: Graph,
    sources: np.ndarray,
    alive: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Multi-source BFS distances for ``T`` masked trials at once.

    ``sources`` is a ``(T, n)`` boolean matrix of distance-0 seeds (each
    row its own trial); ``alive`` optionally masks each trial to the
    surviving nodes (dead nodes neither relay nor receive distances).
    Returns ``(T, n)`` int64 distances with ``-1`` for unreachable or
    dead nodes.  Unlike the scalar :func:`bfs_distances`, a row with no
    (alive) sources is defined — it simply stays all ``-1``.
    """
    sources = np.asarray(sources)
    if sources.dtype != np.bool_ or sources.ndim != 2 or sources.shape[1] != graph.n:
        raise InvalidParameterError(
            f"sources must be a boolean (T, {graph.n}) matrix, got "
            f"{sources.shape if sources.ndim == 2 else sources.dtype}"
        )
    if alive is None:
        alive = np.ones_like(sources)
    else:
        alive = _check_alive_matrix(graph, alive)
        if alive.shape[0] != sources.shape[0]:
            raise InvalidParameterError(
                "sources and alive must agree on the trial count"
            )
    T, n = sources.shape
    dist = np.full((T, n), UNREACHED, dtype=np.int64)
    frontier = sources & alive
    dist[frontier] = 0
    if T == 0 or n == 0 or graph.indices.size == 0 or not frontier.any():
        return dist
    idx = graph.index
    starts = idx.starts
    m2 = graph.indices.shape[0]
    gathered = np.zeros((T, m2 + 1), dtype=bool)  # identity column at m2
    level = 0
    while True:
        level += 1
        gathered[:, :m2] = frontier[:, graph.indices]  # neighbour-in-frontier
        reached = np.logical_or.reduceat(gathered, starts, axis=1)
        if idx.has_isolated:
            reached[:, idx.isolated] = False
        fresh = reached & alive & (dist == UNREACHED)
        if not fresh.any():
            break
        dist[fresh] = level
        frontier = fresh
    return dist


def batched_boundary_masks(
    graph: Graph,
    masks: np.ndarray,
    alive: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Node boundaries ``Γ(S)`` for ``T`` sets at once (one gather).

    ``masks`` holds one candidate set ``S`` per row; the result row marks
    the alive nodes *outside* ``S`` with at least one neighbour in
    ``S ∩ alive``.  This is the batched form of the scalar boundary
    gather behind ``node_expansion_of_set``.
    """
    masks = _check_alive_matrix(graph, masks)
    if alive is not None:
        alive = _check_alive_matrix(graph, alive)
        if alive.shape != masks.shape:
            raise InvalidParameterError("masks and alive must have equal shapes")
        inside = masks & alive
    else:
        inside = masks
    T, n = masks.shape
    if T == 0 or n == 0 or graph.indices.size == 0:
        return np.zeros((T, n), dtype=bool)
    idx = graph.index
    m2 = graph.indices.shape[0]
    gathered = np.zeros((T, m2 + 1), dtype=bool)  # identity column at m2
    gathered[:, :m2] = inside[:, graph.indices]
    reached = np.logical_or.reduceat(gathered, idx.starts, axis=1)
    if idx.has_isolated:
        reached[:, idx.isolated] = False
    boundary = reached & ~inside
    if alive is not None:
        boundary &= alive
    return boundary


def batched_boundary_sizes(
    graph: Graph,
    masks: np.ndarray,
    alive: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``|Γ(S)|`` per trial — the counting form of
    :func:`batched_boundary_masks`, shape ``(T,)``."""
    return batched_boundary_masks(graph, masks, alive).sum(axis=1, dtype=np.int64)
