"""GraphIndex: immutable cached derived views of one CSR graph.

Every mask-parallel kernel and scatter-style graph operation needs the
same handful of arrays derived from the CSR pair — the flat source-id
expansion ``repeat(arange(n), degrees)``, the per-row segment starts, the
``degree == 0`` mask, the two directed CSR slots of each undirected edge,
the canonical ``(m, 2)`` edge array.  Before this module existed each hot
call site rebuilt them from scratch (an O(m) ``np.repeat`` + friends per
kernel invocation); profiled at sweep scale those rebuilds rivalled the
kernels themselves.

A :class:`GraphIndex` computes each view lazily, exactly once, and hands
out **read-only** arrays so sharing is safe.  It is owned by
:class:`~repro.graphs.graph.Graph` (the lazy ``Graph.index`` property) and
*shared* between graphs that share their CSR arrays —
``Graph.renamed``/``Graph.detached`` copies carry the same index object,
so a renamed graph never re-derives anything.  The design follows dgl's
``ImmutableGraphIndex``: the graph object stays a thin value type, the
index is the memoised structural companion.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["GraphIndex"]


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only (cached views are shared across callers)."""
    arr.flags.writeable = False
    return arr


class GraphIndex:
    """Lazily-built, memoised derived views of one ``(indptr, indices)``
    CSR pair.  All returned arrays are read-only; callers that need to
    mutate must copy."""

    __slots__ = (
        "indptr",
        "indices",
        "_degrees",
        "_slot_src",
        "_isolated",
        "_has_isolated",
        "_slot_pairs",
        "_edge_array",
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self._degrees: Optional[np.ndarray] = None
        self._slot_src: Optional[np.ndarray] = None
        self._isolated: Optional[np.ndarray] = None
        self._has_isolated: Optional[bool] = None
        self._slot_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._edge_array: Optional[np.ndarray] = None

    # -- scalar shape ---------------------------------------------------- #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.indptr.shape[0] - 1)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0] // 2)

    # -- cached views ---------------------------------------------------- #

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree array (``int64``, length ``n``)."""
        if self._degrees is None:
            self._degrees = _frozen(np.diff(self.indptr))
        return self._degrees

    @property
    def starts(self) -> np.ndarray:
        """Per-row CSR segment starts — ``indptr[:-1]`` (a view)."""
        return self.indptr[: -1]

    @property
    def slot_src(self) -> np.ndarray:
        """Source node id of every directed CSR slot, length ``2m`` —
        the ``repeat(arange(n), degrees)`` expansion every scatter-style
        operation used to rebuild per call."""
        if self._slot_src is None:
            self._slot_src = _frozen(
                np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
            )
        return self._slot_src

    @property
    def isolated(self) -> np.ndarray:
        """Boolean mask of degree-0 nodes (empty ``reduceat`` segments)."""
        if self._isolated is None:
            self._isolated = _frozen(self.degrees == 0)
        return self._isolated

    @property
    def has_isolated(self) -> bool:
        """Whether any node has degree 0 (memoised ``isolated.any()``)."""
        if self._has_isolated is None:
            self._has_isolated = bool(self.isolated.any())
        return self._has_isolated

    @property
    def directed_slot_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR slot indices of each undirected edge's two directed copies.

        ``(fwd, rev)`` of length ``m``: ``fwd[k]``/``rev[k]`` are the flat
        CSR positions of edge ``k`` (in :attr:`edge_array` order) as
        ``u→v`` and ``v→u``.  CSR order sorts directed edges by
        ``(src, dst)``, so the reverse copy is found by binary search on
        the ascending key array.
        """
        if self._slot_pairs is None:
            n = self.n
            src = self.slot_src
            fwd = np.flatnonzero(src < self.indices)
            key = src * np.int64(max(n, 1)) + self.indices
            rev = np.searchsorted(
                key, self.indices[fwd] * np.int64(max(n, 1)) + src[fwd]
            )
            self._slot_pairs = (_frozen(fwd), _frozen(rev))
        return self._slot_pairs

    @property
    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` per
        row, in canonical (CSR scan) order."""
        if self._edge_array is None:
            fwd, _ = self.directed_slot_pairs
            self._edge_array = _frozen(
                np.column_stack([self.slot_src[fwd], self.indices[fwd]])
            )
        return self._edge_array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = [
            name
            for name, slot in (
                ("degrees", self._degrees),
                ("slot_src", self._slot_src),
                ("isolated", self._isolated),
                ("slot_pairs", self._slot_pairs),
                ("edge_array", self._edge_array),
            )
            if slot is not None
        ]
        return f"GraphIndex(n={self.n}, m={self.m}, built={built})"
