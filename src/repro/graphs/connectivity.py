"""Max-flow based connectivity: Menger bounds for the fault adversary.

Theorem 2.1 tells the adversary how many faults break *expansion*; Menger's
theorem tells it how many faults break *connectivity at all*: no fewer than
the vertex connectivity ``κ(G)`` node deletions can disconnect the network.
These quantities bracket the interesting fault regime
(``κ(G) ≤ faults-to-disconnect ≤ faults-to-shatter``), so the library ships
an exact unit-capacity max-flow engine:

* :func:`edge_connectivity_between` — max edge-disjoint ``s``–``t`` paths
  (Dinic's algorithm on the bidirected unit-capacity graph);
* :func:`node_connectivity_between` — max internally vertex-disjoint paths
  via the standard node-splitting transform;
* :func:`global_node_connectivity` — κ(G) by the Even–Tarjan reduction
  (flows from a minimum-degree anchor to its non-neighbours, plus flows
  between non-adjacent neighbour pairs of the anchor).

Dinic on unit-capacity graphs runs in ``O(m·√m)``, comfortable for every
instance in this repository.  Cross-checked against networkx in the tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError
from .graph import Graph

__all__ = [
    "edge_connectivity_between",
    "node_connectivity_between",
    "global_node_connectivity",
    "global_edge_connectivity",
    "min_vertex_cut_between",
]


class _Dinic:
    """Dinic max-flow on an explicit arc list (parallel arc per direction)."""

    __slots__ = ("n", "head", "nxt", "to", "cap", "level", "iter")

    def __init__(self, n: int) -> None:
        self.n = n
        self.head = [-1] * n
        self.nxt: List[int] = []
        self.to: List[int] = []
        self.cap: List[int] = []

    def add_edge(self, u: int, v: int, cap: int, rcap: int = 0) -> None:
        self.nxt.append(self.head[u])
        self.head[u] = len(self.to)
        self.to.append(v)
        self.cap.append(cap)
        self.nxt.append(self.head[v])
        self.head[v] = len(self.to)
        self.to.append(u)
        self.cap.append(rcap)

    def _bfs(self, s: int, t: int) -> bool:
        self.level = [-1] * self.n
        self.level[s] = 0
        queue = [s]
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            e = self.head[u]
            while e != -1:
                v = self.to[e]
                if self.cap[e] > 0 and self.level[v] < 0:
                    self.level[v] = self.level[u] + 1
                    queue.append(v)
                e = self.nxt[e]
        return self.level[t] >= 0

    def _dfs(self, u: int, t: int, f: int) -> int:
        if u == t:
            return f
        while self.iter[u] != -1:
            e = self.iter[u]
            v = self.to[e]
            if self.cap[e] > 0 and self.level[v] == self.level[u] + 1:
                d = self._dfs(v, t, min(f, self.cap[e]))
                if d > 0:
                    self.cap[e] -= d
                    self.cap[e ^ 1] += d
                    return d
            self.iter[u] = self.nxt[e]
        return 0

    def max_flow(self, s: int, t: int, limit: int = 1 << 60) -> int:
        flow = 0
        while flow < limit and self._bfs(s, t):
            self.iter = list(self.head)
            while True:
                f = self._dfs(s, t, limit - flow)
                if f == 0:
                    break
                flow += f
        return flow

    def min_cut_side(self, s: int) -> np.ndarray:
        """Nodes reachable from ``s`` in the residual graph (after max_flow)."""
        seen = [False] * self.n
        seen[s] = True
        queue = [s]
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            e = self.head[u]
            while e != -1:
                v = self.to[e]
                if self.cap[e] > 0 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
                e = self.nxt[e]
        return np.flatnonzero(np.asarray(seen))


def _check_pair(graph: Graph, s: int, t: int) -> None:
    if not (0 <= s < graph.n and 0 <= t < graph.n):
        raise InvalidParameterError(f"endpoints outside [0, {graph.n})")
    if s == t:
        raise InvalidParameterError("endpoints must be distinct")


def edge_connectivity_between(graph: Graph, s: int, t: int) -> int:
    """Maximum number of edge-disjoint ``s``–``t`` paths (= min edge cut)."""
    _check_pair(graph, s, t)
    dinic = _Dinic(graph.n)
    for u, v in graph.edge_array().tolist():
        dinic.add_edge(u, v, 1, 1)  # undirected: capacity 1 both ways
    return dinic.max_flow(s, t)


def _split_network(graph: Graph) -> _Dinic:
    """Node-splitting transform: v → (v_in = 2v, v_out = 2v+1), internal
    capacity 1, edge arcs with effectively-infinite capacity."""
    inf = graph.n + 1  # no vertex cut can exceed n, so n+1 acts as infinity
    dinic = _Dinic(2 * graph.n)
    for v in range(graph.n):
        dinic.add_edge(2 * v, 2 * v + 1, 1)
    for u, v in graph.edge_array().tolist():
        dinic.add_edge(2 * u + 1, 2 * v, inf)
        dinic.add_edge(2 * v + 1, 2 * u, inf)
    return dinic


def node_connectivity_between(graph: Graph, s: int, t: int) -> int:
    """Maximum number of internally vertex-disjoint ``s``–``t`` paths.

    By Menger this equals the minimum number of *other* vertices whose
    removal disconnects ``s`` from ``t`` — undefined (infinite) for adjacent
    pairs, reported as ``graph.n`` in that case (no vertex cut exists).
    """
    _check_pair(graph, s, t)
    if graph.has_edge(s, t):
        return graph.n  # adjacent: cannot be separated by vertex deletions
    dinic = _split_network(graph)
    return dinic.max_flow(2 * s + 1, 2 * t)


def min_vertex_cut_between(graph: Graph, s: int, t: int) -> np.ndarray:
    """An explicit minimum vertex cut separating non-adjacent ``s``, ``t``.

    Returns the sorted node ids of a cut of size
    ``node_connectivity_between(s, t)``.
    """
    _check_pair(graph, s, t)
    if graph.has_edge(s, t):
        raise InvalidParameterError("adjacent endpoints cannot be separated")
    dinic = _split_network(graph)
    dinic.max_flow(2 * s + 1, 2 * t)
    reach = set(dinic.min_cut_side(2 * s + 1).tolist())
    cut = [
        v
        for v in range(graph.n)
        if 2 * v in reach and 2 * v + 1 not in reach  # saturated internal arc
    ]
    return np.array(sorted(cut), dtype=np.int64)


def global_edge_connectivity(graph: Graph) -> int:
    """λ(G): the minimum number of edge deletions that disconnect ``G``.

    For an undirected graph, λ(G) = min over ``t ≠ s`` of λ(s, t) for any
    fixed ``s`` (every global min cut separates ``s`` from *something*), so
    ``n − 1`` unit-capacity flow computations suffice.
    """
    n = graph.n
    if n < 2:
        return 0
    from .traversal import is_connected

    if not is_connected(graph):
        return 0
    best = graph.min_degree  # λ ≤ δ_min always
    for t in range(1, n):
        if best == 0:
            break
        best = min(best, edge_connectivity_between(graph, 0, t))
    return best


def global_node_connectivity(graph: Graph) -> int:
    """κ(G): the minimum number of node deletions that disconnect ``G``
    (or leave fewer than 2 nodes).

    Even–Tarjan reduction: fix an anchor ``a`` of minimum degree; κ is the
    minimum of κ(a, w) over non-neighbours ``w`` and κ(u, w) over
    non-adjacent pairs of neighbours of ``a`` — at most ``deg(a)²/2 + n``
    max-flow calls.  Complete graphs have κ = n − 1 by convention.
    """
    n = graph.n
    if n < 2:
        return 0
    if graph.m == n * (n - 1) // 2:
        return n - 1
    from .traversal import is_connected

    if not is_connected(graph):
        return 0
    anchor = int(np.argmin(graph.degrees))
    neighbors = set(graph.neighbors(anchor).tolist())
    best = n
    for w in range(n):
        if w != anchor and w not in neighbors:
            best = min(best, node_connectivity_between(graph, anchor, w))
    for u, w in combinations(sorted(neighbors), 2):
        if not graph.has_edge(u, w):
            best = min(best, node_connectivity_between(graph, u, w))
    # κ ≤ δ_min for every non-complete graph (delete a min-degree node's
    # neighbourhood); completeness was handled above.
    return min(best, graph.min_degree)
