"""Graph substrate: CSR graphs, boundary operators, traversal, generators."""

from . import generators
from .build import from_networkx, from_scipy_sparse, to_networkx, to_scipy_sparse
from .connectivity import (
    edge_connectivity_between,
    global_edge_connectivity,
    global_node_connectivity,
    min_vertex_cut_between,
    node_connectivity_between,
)
from .graph import Graph, neighbors_of_many
from .index import GraphIndex
from .ops import (
    as_indices,
    as_mask,
    closed_neighborhood,
    edge_boundary,
    edge_boundary_count,
    edge_expansion_of_set,
    node_boundary,
    node_boundary_size,
    node_expansion_of_set,
    volume,
)
from .traversal import (
    ComponentSummary,
    bfs_distances,
    bfs_tree,
    component_sizes,
    component_summary,
    connected_components,
    connected_components_unionfind,
    eccentricity,
    is_connected,
    is_subset_connected,
    largest_component,
    largest_component_fraction,
    pairwise_distupdate,
)

__all__ = [
    "Graph",
    "GraphIndex",
    "neighbors_of_many",
    "generators",
    "edge_connectivity_between",
    "node_connectivity_between",
    "min_vertex_cut_between",
    "global_node_connectivity",
    "global_edge_connectivity",
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "as_mask",
    "as_indices",
    "node_boundary",
    "node_boundary_size",
    "edge_boundary",
    "edge_boundary_count",
    "node_expansion_of_set",
    "edge_expansion_of_set",
    "volume",
    "closed_neighborhood",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "connected_components_unionfind",
    "component_sizes",
    "component_summary",
    "ComponentSummary",
    "largest_component",
    "largest_component_fraction",
    "is_connected",
    "is_subset_connected",
    "eccentricity",
    "pairwise_distupdate",
]
