"""Immutable CSR graph — the core data structure of the library.

Design
------
The whole reproduction runs on undirected simple graphs with integer node ids
``0..n-1``.  We store the adjacency structure in compressed sparse row form
(``indptr``/``indices``), the same layout ``scipy.sparse.csr_matrix`` uses,
because every hot operation in the paper's algorithms — boundary computation,
BFS frontier expansion, expansion ratio scans — reduces to gathering the
neighbourhoods of a *set* of nodes, which CSR serves with two contiguous
array reads (cache-friendly, per the hpc-parallel guide).

Graphs are immutable: fault injection and pruning produce *new* graphs via
:meth:`Graph.subgraph`, which also records the mapping back to the original
ids (``original_ids``).  Keeping explicit provenance is essential for the
experiments, which must report culled/surviving node sets in terms of the
fault-free network.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidGraphError
from ..util.validation import check_node_array
from .index import GraphIndex

__all__ = ["Graph", "neighbors_of_many"]


class Graph:
    """Undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; ``indices[indptr[v]:indptr[v+1]]``
        are the neighbours of node ``v`` in strictly increasing order.
    indices:
        ``int64`` array of length ``2m`` (each undirected edge appears twice).
    name:
        Human-readable identifier used in reports.
    coords:
        Optional per-node metadata (e.g. mesh coordinates, shape ``(n, d)``).
        Carried through :meth:`subgraph` for generators that define it.
    original_ids:
        Mapping from this graph's ids to an ancestor graph's ids; defaults to
        the identity.  Composed automatically by :meth:`subgraph`.
    validate:
        Run structural validation (sortedness, symmetry, no self-loops).
        Generators that construct CSR arrays directly may skip it.
    """

    __slots__ = ("indptr", "indices", "name", "coords", "original_ids", "_index")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        coords: Optional[np.ndarray] = None,
        original_ids: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.name = str(name)
        self.coords = None if coords is None else np.ascontiguousarray(coords)
        n = self.indptr.shape[0] - 1
        if original_ids is None:
            self.original_ids = np.arange(n, dtype=np.int64)
        else:
            self.original_ids = np.ascontiguousarray(original_ids, dtype=np.int64)
        self._index: Optional[GraphIndex] = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        *,
        name: str = "graph",
        coords: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build a graph from an edge list.

        Duplicate edges and both orientations are tolerated (collapsed to a
        simple undirected graph); self-loops raise
        :class:`~repro.errors.InvalidGraphError`.
        """
        if n < 0:
            raise InvalidGraphError(f"node count must be >= 0, got {n}")
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            indptr = np.zeros(n + 1, dtype=np.int64)
            return cls(indptr, np.empty(0, dtype=np.int64), name=name, coords=coords,
                       validate=False)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise InvalidGraphError(f"edge array must have shape (m, 2), got {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            raise InvalidGraphError("edges must contain integers")
        u, v = arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64)
        if np.any(u == v):
            raise InvalidGraphError("self-loops are not allowed")
        if u.min() < 0 or v.min() < 0 or max(u.max(), v.max()) >= n:
            raise InvalidGraphError(f"edge endpoints out of range [0, {n})")
        # Canonicalise (min, max), dedupe, then mirror for CSR symmetry.
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keys = lo * np.int64(n) + hi
        _, keep = np.unique(keys, return_index=True)
        lo, hi = lo[keep], hi[keep]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, name=name, coords=coords, validate=False)

    @classmethod
    def empty(cls, n: int, *, name: str = "empty") -> "Graph":
        """Graph on ``n`` nodes with no edges."""
        return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64),
                   name=name, validate=False)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.indptr.shape[0] - 1)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0] // 2)

    @property
    def index(self) -> GraphIndex:
        """The graph's :class:`~repro.graphs.index.GraphIndex` — lazily
        created, then shared with every :meth:`renamed`/:meth:`detached`
        copy so derived views are computed once per CSR pair."""
        if self._index is None:
            self._index = GraphIndex(self.indptr, self.indices)
        return self._index

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree array (cached on the index; read-only)."""
        return self.index.degrees

    @property
    def max_degree(self) -> int:
        """Maximum degree δ (0 for an edgeless graph)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def min_degree(self) -> int:
        """Minimum degree (0 for an edgeless graph)."""
        return int(self.degrees.min()) if self.n else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of node ``v`` (a view — do not mutate)."""
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists (binary search)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.shape[0] and nbrs[i] == v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row.

        Cached on the :attr:`index` and returned read-only; copy before
        mutating.
        """
        return self.index.edge_array

    def is_regular(self) -> bool:
        """Whether every node has the same degree."""
        return self.n == 0 or bool(np.all(self.degrees == self.degrees[0]))

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def subgraph(self, nodes: np.ndarray | Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled ``0..len(nodes)-1``).

        ``original_ids`` of the result composes with this graph's mapping so
        that ids always resolve to the *root* fault-free network.
        """
        keep = check_node_array(nodes, self.n, "nodes")
        mask = np.zeros(self.n, dtype=bool)
        mask[keep] = True
        # new id for each kept node; -1 elsewhere
        relabel = np.full(self.n, -1, dtype=np.int64)
        relabel[keep] = np.arange(keep.shape[0], dtype=np.int64)
        src = self.index.slot_src
        edge_keep = mask[src] & mask[self.indices]
        new_src = relabel[src[edge_keep]]
        new_dst = relabel[self.indices[edge_keep]]
        n_new = keep.shape[0]
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.add.at(indptr, new_src + 1, 1)
        np.cumsum(indptr, out=indptr)
        # new_src is non-decreasing because `src` was and relabel is monotone
        # on kept ids; within each row the dst order is inherited (sorted).
        return Graph(
            indptr,
            new_dst,
            name=self.name,
            coords=None if self.coords is None else self.coords[keep],
            original_ids=self.original_ids[keep],
            validate=False,
        )

    def without_nodes(self, nodes: np.ndarray | Sequence[int]) -> "Graph":
        """Induced subgraph after deleting ``nodes``."""
        drop = check_node_array(nodes, self.n, "nodes")
        mask = np.ones(self.n, dtype=bool)
        mask[drop] = False
        return self.subgraph(np.flatnonzero(mask))

    def renamed(self, name: str) -> "Graph":
        """Shallow copy with a different ``name`` (arrays are shared, and
        so is the :attr:`index`)."""
        g = Graph(self.indptr, self.indices, name=name, coords=self.coords,
                  original_ids=self.original_ids, validate=False)
        g._index = self.index
        return g

    def detached(self, *, name: Optional[str] = None) -> "Graph":
        """Shallow copy that *resets* ``original_ids`` to the identity.

        Generators that build a topology by carving up an internal scaffold
        (e.g. the CAN overlay deleting surplus torus zones) must detach the
        result so the provenance chain starts at the graph the caller sees.
        """
        g = Graph(self.indptr, self.indices, name=name or self.name,
                  coords=self.coords, original_ids=None, validate=False)
        g._index = self.index
        return g

    # ------------------------------------------------------------------ #
    # dunder / diagnostics
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(name={self.name!r}, n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self.indices.tobytes()[:256]))

    def _validate(self) -> None:
        indptr, indices = self.indptr, self.indices
        if indptr.ndim != 1 or indices.ndim != 1:
            raise InvalidGraphError("indptr and indices must be 1-D arrays")
        if indptr.shape[0] < 1 or indptr[0] != 0:
            raise InvalidGraphError("indptr must start with 0")
        if np.any(np.diff(indptr) < 0) or indptr[-1] != indices.shape[0]:
            raise InvalidGraphError("indptr must be non-decreasing and end at len(indices)")
        n = self.n
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise InvalidGraphError("indices out of range")
        if indices.shape[0] % 2 != 0:
            raise InvalidGraphError("undirected CSR must have even total degree")
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        if np.any(src == indices):
            raise InvalidGraphError("self-loops are not allowed")
        # neighbour lists sorted & duplicate-free: adjacent slots belonging
        # to the same row must strictly increase (one O(2m) vector pass)
        if indices.shape[0] > 1:
            same_row = src[1:] == src[:-1]
            bad = same_row & (indices[1:] <= indices[:-1])
            if np.any(bad):
                v = int(src[:-1][bad][0])
                raise InvalidGraphError(f"neighbour list of node {v} not strictly sorted")
        # symmetry: edge (u,v) implies (v,u); compare canonical multisets
        lo = np.minimum(src, indices)
        hi = np.maximum(src, indices)
        keys = np.sort(lo * np.int64(max(n, 1)) + hi)
        if keys.size and np.any(keys[0::2] != keys[1::2]):
            raise InvalidGraphError("adjacency is not symmetric")

    def validate(self) -> None:
        """Public re-validation hook (used by property tests)."""
        self._validate()


def neighbors_of_many(graph: Graph, nodes: np.ndarray) -> np.ndarray:
    """Concatenated neighbour ids of ``nodes`` (with multiplicity).

    This is the library's core gather primitive: for a node set ``F`` it
    returns ``concat(N(v) for v in F)`` in O(total degree) numpy work with no
    Python-level loop.  Callers dedupe with ``np.unique`` or boolean masks as
    needed.

    Implementation: build the flat CSR positions as
    ``arange(total) + repeat(row_start - out_start, counts)``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = graph.indptr[nodes]
    counts = graph.indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.zeros(nodes.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=out_starts[1:])
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - out_starts, counts)
    return graph.indices[flat]
