"""d-dimensional meshes, tori, and CAN-style overlays.

The d-dimensional mesh is the paper's flagship application: Theorem 3.6
proves it has span ≤ 2 and hence tolerates a fault probability inversely
polynomial in ``d`` (Section 4 relates this to the CAN peer-to-peer overlay,
whose steady state behaves like a d-dimensional torus).

Nodes are identified with coordinate tuples enumerated in row-major
(C-contiguous) order; :attr:`Graph.coords` carries the ``(n, d)`` coordinate
matrix so span/boundary machinery can exploit geometry.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import InvalidParameterError
from ...util.rng import SeedLike, as_generator
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["mesh", "torus", "can_overlay", "mesh_coords", "coord_to_id"]


def _side_spec(sides: Sequence[int] | int, d: int | None) -> np.ndarray:
    if isinstance(sides, (int, np.integer)):
        if d is None:
            raise InvalidParameterError("d is required when sides is a scalar")
        arr = np.full(int(d), int(sides), dtype=np.int64)
    else:
        arr = np.asarray(list(sides), dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidParameterError("sides must be a non-empty 1-D sequence")
    if np.any(arr < 1):
        raise InvalidParameterError(f"every side must be >= 1, got {arr.tolist()}")
    return arr


def mesh_coords(sides: Sequence[int]) -> np.ndarray:
    """Coordinate matrix ``(prod(sides), d)`` in row-major node order."""
    sides_arr = _side_spec(sides, None if not isinstance(sides, int) else 1)
    grids = np.indices(tuple(int(s) for s in sides_arr))
    return np.column_stack([g.ravel() for g in grids]).astype(np.int64)


def coord_to_id(coord: np.ndarray, sides: np.ndarray) -> np.ndarray:
    """Map coordinate rows to node ids (row-major ravel)."""
    coord = np.atleast_2d(np.asarray(coord, dtype=np.int64))
    sides = np.asarray(sides, dtype=np.int64)
    strides = np.concatenate([np.cumprod(sides[::-1])[::-1][1:], [1]]).astype(np.int64)
    return coord @ strides


def _grid_graph(sides: np.ndarray, wrap: bool, name: str) -> Graph:
    n = int(np.prod(sides))
    d = sides.shape[0]
    coords = mesh_coords(sides.tolist())
    strides = np.concatenate([np.cumprod(sides[::-1])[::-1][1:], [1]]).astype(np.int64)
    edges = []
    ids = np.arange(n, dtype=np.int64)
    for axis in range(d):
        axis_coord = coords[:, axis]
        side = int(sides[axis])
        if side == 1:
            continue
        # +1 neighbour along this axis for all nodes not on the top face
        interior = axis_coord < side - 1
        edges.append(np.column_stack([ids[interior], ids[interior] + strides[axis]]))
        if wrap and side > 2:
            top = axis_coord == side - 1
            edges.append(
                np.column_stack([ids[top], ids[top] - (side - 1) * strides[axis]])
            )
    if edges:
        edge_arr = np.concatenate(edges, axis=0)
    else:
        edge_arr = np.empty((0, 2), dtype=np.int64)
    return Graph.from_edges(n, edge_arr, name=name, coords=coords)


@register_generator("mesh")
def mesh(sides: Sequence[int] | int, d: int | None = None) -> Graph:
    """d-dimensional mesh (grid) graph.

    Parameters
    ----------
    sides:
        Either a per-axis side-length sequence (``[4, 4, 4]``) or a scalar
        side used for all ``d`` axes.
    d:
        Dimension; required iff ``sides`` is a scalar.

    Notes
    -----
    The ``n × n`` mesh of the paper is ``mesh([n, n])``.  Node expansion of
    the 2-D mesh is ``Θ(1/√N)`` for ``N = n²`` nodes (paper §2 uses this as
    the canonical uniform-expansion family).
    """
    sides_arr = _side_spec(sides, d)
    label = "x".join(str(int(s)) for s in sides_arr)
    return _grid_graph(sides_arr, wrap=False, name=f"mesh-{label}")


@register_generator("torus")
def torus(sides: Sequence[int] | int, d: int | None = None) -> Graph:
    """d-dimensional torus: the mesh with wrap-around edges per axis.

    Axes with side ≤ 2 are not wrapped (a wrap edge would duplicate an
    existing mesh edge).  The torus is vertex-transitive which removes
    boundary effects from fault experiments; it is the steady-state topology
    of the CAN overlay discussed in the paper's conclusion.
    """
    sides_arr = _side_spec(sides, d)
    label = "x".join(str(int(s)) for s in sides_arr)
    return _grid_graph(sides_arr, wrap=True, name=f"torus-{label}")


@register_generator("can_overlay")
def can_overlay(
    n_peers: int,
    d: int,
    seed: SeedLike = None,
) -> Graph:
    """CAN-style peer-to-peer overlay (Ratnasamy et al., SIGCOMM 2001).

    CAN partitions a d-dimensional torus of zones among peers; in steady
    state, with zones balanced, the overlay is exactly the d-dimensional
    torus.  We model the *imperfect* steady state: start from the smallest
    d-torus with at least ``n_peers`` zones, then delete the surplus zones
    uniformly at random (peers that have not yet joined).  The result keeps
    torus-like local structure with the mild irregularity of a real overlay.

    Parameters
    ----------
    n_peers:
        Number of peers (nodes of the overlay).
    d:
        Overlay dimension (CAN's design parameter).
    seed:
        RNG spec for the surplus-zone deletion.
    """
    if n_peers < 1:
        raise InvalidParameterError(f"n_peers must be >= 1, got {n_peers}")
    if d < 1:
        raise InvalidParameterError(f"d must be >= 1, got {d}")
    side = 1
    while side**d < n_peers:
        side += 1
    base = torus(side, d)
    surplus = base.n - n_peers
    if surplus == 0:
        return base.renamed(f"can-{n_peers}-d{d}")
    rng = as_generator(seed)
    drop = rng.choice(base.n, size=surplus, replace=False)
    overlay = base.without_nodes(drop)
    # detach: the overlay is a root network from the caller's perspective —
    # its provenance must not leak the internal scaffold torus ids
    return overlay.detached(name=f"can-{n_peers}-d{d}")
