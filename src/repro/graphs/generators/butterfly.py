"""Butterfly, wrapped butterfly, and randomly-wired splitter (multibutterfly proxy).

The butterfly appears twice in the paper: Karlin–Nelson–Tamaki bound its
critical probability by ``0.337 < p* < 0.436`` (regenerated in E8), and the
open problems conjecture its span is ``O(1)``.  The multibutterfly of
Leighton–Maggs is approximated here by a *randomly wired splitter network*
with the same level structure and per-level out-degree ``2d_s``; this keeps
the topology class (leveled splitter network) while avoiding the explicit
concentrator constructions, which the paper never relies on quantitatively.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ...util.rng import SeedLike, as_generator
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["butterfly", "wrapped_butterfly", "splitter_network"]


def _bfly_id(level: np.ndarray, row: np.ndarray, rows: int) -> np.ndarray:
    return level * np.int64(rows) + row


@register_generator("butterfly")
def butterfly(k: int) -> Graph:
    """The ``k``-dimensional butterfly: ``(k+1)·2^k`` nodes.

    Node ``(ℓ, r)`` for level ``ℓ ∈ 0..k`` and row ``r ∈ 0..2^k-1`` connects
    to ``(ℓ+1, r)`` (straight edge) and ``(ℓ+1, r ^ (1 << ℓ))`` (cross edge).
    ``coords[:, 0]`` is the level, ``coords[:, 1]`` the row.
    """
    if k < 1:
        raise InvalidParameterError(f"butterfly dimension must be >= 1, got {k}")
    if k > 20:
        raise InvalidParameterError(f"butterfly dimension {k} too large")
    rows = 1 << k
    levels = k + 1
    n = levels * rows
    r = np.arange(rows, dtype=np.int64)
    edges = []
    for lvl in range(k):
        u = _bfly_id(np.full(rows, lvl, dtype=np.int64), r, rows)
        straight = _bfly_id(np.full(rows, lvl + 1, dtype=np.int64), r, rows)
        cross = _bfly_id(np.full(rows, lvl + 1, dtype=np.int64), r ^ (1 << lvl), rows)
        edges.append(np.column_stack([u, straight]))
        edges.append(np.column_stack([u, cross]))
    edge_arr = np.concatenate(edges, axis=0)
    lvl_col = np.repeat(np.arange(levels, dtype=np.int64), rows)
    row_col = np.tile(r, levels)
    coords = np.column_stack([lvl_col, row_col])
    return Graph.from_edges(n, edge_arr, name=f"butterfly-{k}", coords=coords)


@register_generator("wrapped_butterfly")
def wrapped_butterfly(k: int) -> Graph:
    """The wrapped butterfly: level ``k`` is merged with level ``0``,
    giving a 4-regular graph on ``k·2^k`` nodes (for ``k ≥ 3``)."""
    if k < 2:
        raise InvalidParameterError(f"wrapped butterfly needs k >= 2, got {k}")
    if k > 20:
        raise InvalidParameterError(f"butterfly dimension {k} too large")
    rows = 1 << k
    n = k * rows
    r = np.arange(rows, dtype=np.int64)
    edges = []
    for lvl in range(k):
        nxt = (lvl + 1) % k
        u = _bfly_id(np.full(rows, lvl, dtype=np.int64), r, rows)
        straight = _bfly_id(np.full(rows, nxt, dtype=np.int64), r, rows)
        cross = _bfly_id(np.full(rows, nxt, dtype=np.int64), r ^ (1 << lvl), rows)
        edges.append(np.column_stack([u, straight]))
        edges.append(np.column_stack([u, cross]))
    edge_arr = np.concatenate(edges, axis=0)
    lvl_col = np.repeat(np.arange(k, dtype=np.int64), rows)
    coords = np.column_stack([lvl_col, np.tile(r, k)])
    return Graph.from_edges(n, edge_arr, name=f"wrapped-butterfly-{k}", coords=coords)


@register_generator("splitter_network")
def splitter_network(
    k: int,
    splitter_degree: int = 2,
    seed: SeedLike = None,
) -> Graph:
    """Randomly wired leveled splitter network (multibutterfly proxy).

    Levels ``0..k`` of ``2^k`` nodes each.  At level ``ℓ`` the rows split into
    blocks of size ``2^{k-ℓ}``; each node sends ``splitter_degree`` random
    edges into the upper half of its block and ``splitter_degree`` into the
    lower half (the two "splitters").  With high probability random wiring
    yields the expansion the explicit multibutterfly constructions guarantee,
    which is all the experiments need.

    Parameters
    ----------
    k:
        Number of levels below the input level (network depth).
    splitter_degree:
        Edges from each node into each half-block (``d_s`` in the literature).
    seed:
        RNG spec for the wiring.
    """
    if k < 1:
        raise InvalidParameterError(f"splitter network needs k >= 1, got {k}")
    if k > 18:
        raise InvalidParameterError(f"depth {k} too large")
    if splitter_degree < 1:
        raise InvalidParameterError("splitter_degree must be >= 1")
    rng = as_generator(seed)
    rows = 1 << k
    levels = k + 1
    n = levels * rows
    edges = []
    for lvl in range(k):
        block = 1 << (k - lvl)
        half = block // 2
        for start in range(0, rows, block):
            rows_in_block = np.arange(start, start + block, dtype=np.int64)
            u = _bfly_id(np.full(block, lvl, dtype=np.int64), rows_in_block, rows)
            for half_start in (start, start + half):
                targets_rows = rng.integers(half_start, half_start + half,
                                            size=(block, splitter_degree))
                v = _bfly_id(
                    np.full(block * splitter_degree, lvl + 1, dtype=np.int64),
                    targets_rows.ravel().astype(np.int64),
                    rows,
                )
                edges.append(np.column_stack([np.repeat(u, splitter_degree), v]))
    edge_arr = np.concatenate(edges, axis=0)
    lvl_col = np.repeat(np.arange(levels, dtype=np.int64), rows)
    coords = np.column_stack([lvl_col, np.tile(np.arange(rows, dtype=np.int64), levels)])
    return Graph.from_edges(n, edge_arr, name=f"splitter-{k}-d{splitter_degree}",
                            coords=coords)
