"""Small-world rewirings, geographic random graphs, and shortcut overlays.

Three topology families from the related literature, all outside the
paper's original generator set:

* :func:`watts_strogatz` — the classic small-world model: a ring lattice
  (each node tied to its ``k`` nearest neighbours) with every edge
  rewired to a random endpoint with probability ``beta``.  ``beta = 0``
  is the regular lattice, ``beta = 1`` approaches a random graph, and
  intermediate values give short paths with high clustering (Demichev et
  al. study fault tolerance of exactly this interpolation).
* :func:`rewired_torus` — the same rewiring applied to the existing
  torus lattices, preserving the coordinate metadata.
* :func:`geographic` — a Waxman-style geographic random graph: nodes at
  uniform points in the unit square, each pair connected independently
  with the distance-decaying probability ``q * exp(-dist / scale)``.
* :func:`add_shortcuts` — overlay ``k`` uniform non-adjacent shortcut
  pairs on any base graph (the Hayashi–Matsukubo hardening move); as a
  registered generator it composes with every base spec, e.g.
  ``GraphSpec("add_shortcuts", {"base": GraphSpec(...), "k": 8, "seed": 1})``.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ...util.rng import SeedLike, as_generator
from ..graph import Graph
from ...api.registry import register_generator
from .mesh import torus

__all__ = [
    "watts_strogatz",
    "rewired_torus",
    "geographic",
    "add_shortcuts",
    "sample_shortcut_edges",
    "rewire_edges",
]


def _check_beta(beta: float) -> float:
    beta = float(beta)
    if not 0.0 <= beta <= 1.0:
        raise InvalidParameterError(f"beta must be in [0, 1], got {beta}")
    return beta


def sample_shortcut_edges(
    graph: Graph, k: int, rng: np.random.Generator
) -> np.ndarray:
    """``k`` distinct uniform node pairs not already adjacent, as a
    ``(k, 2)`` int64 array with ``u < v`` per row (insertion order).

    Rejection sampling against the graph's binary-search adjacency test;
    raises when fewer than ``k`` non-edges exist.
    """
    n = graph.n
    k = int(k)
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    free = n * (n - 1) // 2 - graph.m
    if k > free:
        raise InvalidParameterError(
            f"cannot add {k} shortcut edges: only {free} non-adjacent pairs left"
        )
    chosen: list = []
    seen: set = set()
    while len(chosen) < k:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        if u > v:
            u, v = v, u
        if (u, v) in seen or graph.has_edge(u, v):
            continue
        seen.add((u, v))
        chosen.append((u, v))
    return np.array(chosen, dtype=np.int64).reshape(k, 2)


def rewire_edges(graph: Graph, beta: float, seed: SeedLike = None) -> Graph:
    """Watts–Strogatz rewiring of an arbitrary graph.

    Scans the canonical edge list in order; each edge ``(u, v)`` is, with
    probability ``beta``, replaced by ``(u, w)`` for a uniform ``w`` that
    is neither ``u`` nor already adjacent to it (edges at saturated nodes
    are left in place).  Node count and coordinates are preserved; the
    degree sequence drifts only at the rewired ``v`` endpoints.
    """
    beta = _check_beta(beta)
    rng = as_generator(seed)
    n = graph.n
    adjacency = [set(graph.neighbors(u).tolist()) for u in range(n)]
    edges = [tuple(int(x) for x in row) for row in graph.edge_array()]
    for i, (u, v) in enumerate(edges):
        if rng.random() >= beta:
            continue
        if len(adjacency[u]) >= n - 1:
            continue  # u is tied to everyone: nothing to rewire to
        w = int(rng.integers(0, n))
        while w == u or w in adjacency[u]:
            w = int(rng.integers(0, n))
        adjacency[u].remove(v)
        adjacency[v].remove(u)
        adjacency[u].add(w)
        adjacency[w].add(u)
        edges[i] = (min(u, w), max(u, w))
    edge_arr = np.array(edges, dtype=np.int64).reshape(len(edges), 2)
    return Graph.from_edges(n, edge_arr, name=graph.name, coords=graph.coords)


@register_generator("watts_strogatz")
def watts_strogatz(n: int, k: int, beta: float, seed: SeedLike = None) -> Graph:
    """Watts–Strogatz small-world graph on a ring lattice.

    Parameters
    ----------
    n:
        Number of nodes (``n >= 3``).
    k:
        Even lattice degree: each node starts tied to its ``k/2`` nearest
        neighbours on each side (``2 <= k < n``).
    beta:
        Per-edge rewiring probability in ``[0, 1]``.
    seed:
        RNG spec for the rewiring draws (required through the spec layer).
    """
    if n < 3:
        raise InvalidParameterError(f"n must be >= 3, got {n}")
    if k < 2 or k % 2 != 0 or k >= n:
        raise InvalidParameterError(
            f"k must be even with 2 <= k < n, got k={k}, n={n}"
        )
    edges = []
    for j in range(1, k // 2 + 1):
        src = np.arange(n, dtype=np.int64)
        edges.append(np.column_stack([src, (src + j) % n]))
    ring = Graph.from_edges(n, np.concatenate(edges, axis=0))
    rewired = rewire_edges(ring, beta, seed)
    return rewired.renamed(f"ws-{n}-{k}-{beta:g}")


@register_generator("rewired_torus")
def rewired_torus(
    sides, beta: float, seed: SeedLike = None, d: int | None = None
) -> Graph:
    """Small-world rewiring of the d-dimensional torus lattice.

    Takes the same ``sides``/``d`` spec as :func:`~.mesh.torus`, then
    rewires each lattice edge with probability ``beta``, keeping the
    coordinate metadata so span/boundary machinery still works on the
    unrewired majority of the lattice.
    """
    base = torus(sides, d)
    rewired = rewire_edges(base, beta, seed)
    label = base.name.split("torus-", 1)[-1]
    return rewired.renamed(f"swt-{label}-{beta:g}")


@register_generator("geographic")
def geographic(n: int, q: float, scale: float, seed: SeedLike = None) -> Graph:
    """Waxman-style geographic random graph in the unit square.

    ``n`` nodes at uniform positions; each pair ``(u, v)`` is connected
    independently with probability ``q * exp(-dist(u, v) / scale)`` — the
    distance-dependent model of geographic/internet topologies (Waxman
    1988; the geographic networks of Hayashi & Matsukubo).  Positions are
    carried as float ``coords``.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if n > 20000:
        raise InvalidParameterError("geographic limited to n <= 20000 (dense draw)")
    q = float(q)
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"q must be in [0, 1], got {q}")
    scale = float(scale)
    if not scale > 0.0:
        raise InvalidParameterError(f"scale must be > 0, got {scale}")
    rng = as_generator(seed)
    name = f"geo-{n}-q{q:g}-s{scale:g}"
    coords = rng.random((n, 2))
    if n < 2 or q == 0.0:
        g = Graph.empty(n, name=name)
        return Graph(g.indptr, g.indices, name=name, coords=coords, validate=False)
    iu = np.triu_indices(n, k=1)
    dist = np.sqrt(((coords[iu[0]] - coords[iu[1]]) ** 2).sum(axis=1))
    p_edge = q * np.exp(-dist / scale)
    mask = rng.random(iu[0].shape[0]) < p_edge
    edges = np.column_stack([iu[0][mask], iu[1][mask]]).astype(np.int64)
    return Graph.from_edges(n, edges, name=name, coords=coords)


@register_generator("add_shortcuts")
def add_shortcuts(base: Graph, k: int, seed: SeedLike = None) -> Graph:
    """Overlay ``k`` uniform non-adjacent shortcut edges on ``base``.

    The generator-side twin of the ``add_edges`` fault model: use this
    when the hardened graph must be the *baseline* of an experiment (e.g.
    sweeping random faults over graphs with 0/8/32 shortcuts), and the
    fault model when the addition itself is the event under study.
    """
    if not isinstance(base, Graph):
        raise InvalidParameterError(
            f"base must be a Graph (or a nested graph spec), got {type(base).__name__}"
        )
    rng = as_generator(seed)
    new_edges = sample_shortcut_edges(base, int(k), rng)
    if new_edges.shape[0] == 0:
        edge_arr = base.edge_array()
    else:
        edge_arr = np.concatenate([base.edge_array(), new_edges], axis=0)
    return Graph.from_edges(
        base.n, edge_arr, name=f"{base.name}+sc{int(k)}", coords=base.coords
    )
