"""de Bruijn and shuffle-exchange graphs.

Both appear in the paper's open problems ("we conjecture that the butterfly,
shuffle-exchange, and deBruijn network all have a span of O(1)").  We provide
them as topology specimens for the span-sampling experiments and percolation
sweeps.  Undirected simple versions are used (the standard choice for fault
studies): directed edges are symmetrised and self-loops dropped.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["debruijn", "shuffle_exchange"]


@register_generator("debruijn")
def debruijn(k: int) -> Graph:
    """Binary de Bruijn graph on ``2^k`` nodes.

    Node ``x`` (a ``k``-bit string) is adjacent to its left shifts
    ``(2x + b) mod 2^k`` for ``b ∈ {0, 1}``; symmetrised, self-loops
    (``x = 0`` and ``x = 2^k − 1``) removed.  Max degree 4.
    """
    if k < 1:
        raise InvalidParameterError(f"de Bruijn order must be >= 1, got {k}")
    if k > 22:
        raise InvalidParameterError(f"de Bruijn order {k} too large")
    n = 1 << k
    x = np.arange(n, dtype=np.int64)
    shift0 = (2 * x) % n
    shift1 = (2 * x + 1) % n
    edges = np.concatenate(
        [np.column_stack([x, shift0]), np.column_stack([x, shift1])], axis=0
    )
    edges = edges[edges[:, 0] != edges[:, 1]]
    return Graph.from_edges(n, edges, name=f"debruijn-{k}")


@register_generator("shuffle_exchange")
def shuffle_exchange(k: int) -> Graph:
    """Binary shuffle-exchange graph on ``2^k`` nodes.

    Node ``x`` is adjacent to ``x ^ 1`` (exchange) and to its cyclic left
    shift (shuffle); symmetrised, self-loops removed.  Max degree 3.
    """
    if k < 1:
        raise InvalidParameterError(f"shuffle-exchange order must be >= 1, got {k}")
    if k > 22:
        raise InvalidParameterError(f"shuffle-exchange order {k} too large")
    n = 1 << k
    x = np.arange(n, dtype=np.int64)
    exchange = x ^ 1
    high = (x >> (k - 1)) & 1
    shuffle = ((x << 1) | high) & (n - 1)
    edges = np.concatenate(
        [np.column_stack([x, exchange]), np.column_stack([x, shuffle])], axis=0
    )
    edges = edges[edges[:, 0] != edges[:, 1]]
    return Graph.from_edges(n, edges, name=f"shuffle-exchange-{k}")
