"""Hypercube generator.

The ``d``-dimensional hypercube has ``2^d`` nodes (bit strings) with edges
between strings at Hamming distance 1.  The paper cites Ajtai–Komlós–
Szemerédi: its critical survival probability is ``p* = 1/d`` (so fault
probability ``1 - 1/d``); we regenerate that row of the Section 1.1 survey
in experiment E8.  The hypercube also serves as a high-expansion specimen in
the adversarial experiments (node expansion ``Θ(1/√d)``-ish for balanced
cuts; exactly ``1`` for the bisection along one coordinate).
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["hypercube"]


@register_generator("hypercube")
def hypercube(d: int) -> Graph:
    """The ``d``-dimensional hypercube ``Q_d`` on ``2^d`` nodes.

    Node ``i`` is adjacent to ``i ^ (1 << b)`` for every bit ``b < d``.
    Coordinates (the bit matrix) are attached as :attr:`Graph.coords`.
    """
    if d < 0:
        raise InvalidParameterError(f"dimension must be >= 0, got {d}")
    if d > 24:
        raise InvalidParameterError(f"hypercube dimension {d} too large (n = 2^d)")
    n = 1 << d
    ids = np.arange(n, dtype=np.int64)
    if d == 0:
        return Graph.empty(1, name="hypercube-0")
    edges = []
    for b in range(d):
        mask = (ids >> b) & 1 == 0
        edges.append(np.column_stack([ids[mask], ids[mask] | (1 << b)]))
    edge_arr = np.concatenate(edges, axis=0)
    bits = ((ids[:, None] >> np.arange(d)[None, :]) & 1).astype(np.int64)
    return Graph.from_edges(n, edge_arr, name=f"hypercube-{d}", coords=bits)
