"""Chain-replacement graphs — the lower-bound construction of Theorems 2.3/3.1.

Given a base graph ``G`` (in the paper: a constant-degree expander with
expansion β and degree δ) and an even ``k``, the graph ``H(G, k)`` replaces
every edge of ``G`` by a chain of ``k`` fresh nodes.  Claim 2.4 shows
``H`` has node expansion ``Θ(1/k)``; removing the centre node of every chain
(``m = δ·n/2`` nodes, a ``Θ(1/k)`` fraction) shatters ``H`` into components
of size ``δ·k/2 + 1`` — sublinear in ``N = n + k·m``.  Theorem 3.1 uses the
same construction to show random faults at ``p = Θ(α)`` are already fatal.

Because the attacks need to know which nodes are chain centres, the
constructor returns a :class:`ChainReplacement` record carrying the base
graph, the per-chain node ids, and convenience views (centres, base nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import InvalidParameterError
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["ChainReplacement", "chain_replacement"]


@dataclass(frozen=True)
class ChainReplacement:
    """The graph ``H(G, k)`` plus the provenance needed by the experiments.

    Attributes
    ----------
    graph:
        The chain-replacement graph ``H``.  Node ids ``0..n-1`` are the base
        nodes of ``G``; ids ``n + e·k + j`` is the ``j``-th node (0-based,
        ordered from the ``u`` side) of the chain replacing base edge ``e``.
    base:
        The base graph ``G``.
    k:
        Chain length (number of fresh nodes per base edge, even).
    chain_nodes:
        ``(m, k)`` array of chain node ids, row ``e`` ordered from the
        lower-id endpoint of base edge ``e`` to the higher-id endpoint.
    base_edges:
        ``(m, 2)`` base edge array aligned with ``chain_nodes`` rows.
    """

    graph: Graph
    base: Graph
    k: int
    chain_nodes: np.ndarray
    base_edges: np.ndarray

    @property
    def base_nodes(self) -> np.ndarray:
        """Ids of the original base-graph nodes inside ``H`` (``0..n-1``)."""
        return np.arange(self.base.n, dtype=np.int64)

    @property
    def center_nodes(self) -> np.ndarray:
        """One centre node per chain — the paper's Theorem 2.3 fault set.

        For even ``k`` the chain has two central nodes; we take the one at
        0-based position ``k // 2`` (either disconnects the chain).
        """
        return self.chain_nodes[:, self.k // 2].copy()

    @property
    def n_total(self) -> int:
        """``N = n + k·m``, the size of ``H``."""
        return self.graph.n

    def expected_component_size_after_center_attack(self) -> int:
        """Paper's bound: each surviving component has at most
        ``δ·k/2 + 1 + δ`` nodes (a base node, its ``≤ δ`` half-chains of
        ``≤ k/2`` nodes each, plus adjacent chain stubs)."""
        delta = self.base.max_degree
        return delta * (self.k // 2) + 1 + delta


@register_generator("chain_replacement")
def chain_replacement(base: Graph, k: int) -> ChainReplacement:
    """Build ``H(base, k)``: every base edge becomes a chain of ``k`` nodes.

    Parameters
    ----------
    base:
        Base graph ``G`` (any simple undirected graph; the paper uses a
        constant-degree expander).
    k:
        Even chain length ``>= 2``.

    Notes
    -----
    ``H`` has ``n + k·m`` nodes and ``m·(k + 1)`` edges.  Claim 2.4:
    ``α(H) = Θ(1/k)`` when ``G`` is a constant-degree expander.
    """
    if k < 2 or k % 2 != 0:
        raise InvalidParameterError(f"chain length k must be even and >= 2, got {k}")
    if base.n == 0 or base.m == 0:
        raise InvalidParameterError("base graph must have at least one edge")
    n, m = base.n, base.m
    base_edges = base.edge_array()
    total = n + k * m
    chain_ids = (n + np.arange(m * k, dtype=np.int64)).reshape(m, k)
    # edges: u - c0, c_{j} - c_{j+1}, c_{k-1} - v  for each base edge (u, v)
    u = base_edges[:, 0]
    v = base_edges[:, 1]
    first = np.column_stack([u, chain_ids[:, 0]])
    last = np.column_stack([chain_ids[:, -1], v])
    internal = np.column_stack(
        [chain_ids[:, :-1].ravel(), chain_ids[:, 1:].ravel()]
    )
    edges = np.concatenate([first, internal, last], axis=0)
    graph = Graph.from_edges(total, edges, name=f"chain({base.name},k={k})")
    return ChainReplacement(
        graph=graph, base=base, k=k, chain_nodes=chain_ids, base_edges=base_edges
    )
