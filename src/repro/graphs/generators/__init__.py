"""Topology generators used throughout the reproduction."""

from .butterfly import butterfly, splitter_network, wrapped_butterfly
from .chains import ChainReplacement, chain_replacement
from .classic import (
    barbell,
    binary_tree,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    path_graph,
    ring_of_cliques,
    star_graph,
)
from .debruijn import debruijn, shuffle_exchange
from .expanders import chordal_cycle, expander, margulis_expander
from .hypercube import hypercube
from .mesh import can_overlay, coord_to_id, mesh, mesh_coords, torus
from .random_graphs import erdos_renyi, gnm_random, random_regular
from .smallworld import (
    add_shortcuts,
    geographic,
    rewire_edges,
    rewired_torus,
    sample_shortcut_edges,
    watts_strogatz,
)

__all__ = [
    "butterfly",
    "wrapped_butterfly",
    "splitter_network",
    "ChainReplacement",
    "chain_replacement",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_bipartite",
    "barbell",
    "ring_of_cliques",
    "binary_tree",
    "debruijn",
    "shuffle_exchange",
    "margulis_expander",
    "chordal_cycle",
    "expander",
    "hypercube",
    "mesh",
    "torus",
    "can_overlay",
    "mesh_coords",
    "coord_to_id",
    "erdos_renyi",
    "gnm_random",
    "random_regular",
    "watts_strogatz",
    "rewired_torus",
    "geographic",
    "add_shortcuts",
    "rewire_edges",
    "sample_shortcut_edges",
]
