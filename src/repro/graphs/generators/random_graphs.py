"""Random graph models: G(n, p), G(n, m), and random regular graphs.

Random ``d``-regular graphs are the expander workhorse of the reproduction:
with probability ``1 - o(1)`` they have edge expansion bounded below by a
constant fraction of ``d`` (and node expansion Θ(1)), which is exactly the
"infinite family of constant degree expander graphs" the paper's
constructions in Theorems 2.3 and 3.1 start from.  G(n, d·n/2 edges) supplies
the "random graph with d·n/2 edges" row of the Section 1.1 survey
(``p* = 1/d``).
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError, SolverError
from ...util.rng import SeedLike, as_generator
from ..graph import Graph
from ...api.registry import register_generator

__all__ = ["erdos_renyi", "gnm_random", "random_regular"]


@register_generator("erdos_renyi")
def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p): each of the ``C(n,2)`` edges present independently with prob ``p``.

    Vectorised via geometric skipping for small ``p`` would be fancier; at
    laptop scale a dense upper-triangular Bernoulli draw (O(n²) bits) is
    simpler and fast for ``n ≤ ~5000``, which covers every use here.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    if n > 20000:
        raise InvalidParameterError("erdos_renyi limited to n <= 20000 (dense draw)")
    rng = as_generator(seed)
    if n < 2 or p == 0.0:
        return Graph.empty(n, name=f"gnp-{n}-{p:g}")
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].shape[0]) < p
    edges = np.column_stack([iu[0][mask], iu[1][mask]]).astype(np.int64)
    return Graph.from_edges(n, edges, name=f"gnp-{n}-{p:g}")


@register_generator("gnm_random")
def gnm_random(n: int, m: int, seed: SeedLike = None) -> Graph:
    """G(n, m): ``m`` distinct edges drawn uniformly without replacement."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    max_m = n * (n - 1) // 2
    if not 0 <= m <= max_m:
        raise InvalidParameterError(f"m must be in [0, {max_m}], got {m}")
    rng = as_generator(seed)
    if m == 0:
        return Graph.empty(n, name=f"gnm-{n}-{m}")
    # Sample edge ranks without replacement, then invert the pairing function.
    ranks = rng.choice(max_m, size=m, replace=False).astype(np.int64)
    # edge rank r corresponds to pair (i, j), i < j, enumerated row by row
    i = (np.ceil((np.sqrt(8 * (ranks + 1).astype(np.float64) + 1) - 1) / 2)).astype(np.int64)
    # i above enumerates by the j index ordering on pairs (j > i); derive via
    # the standard triangular-number inversion on the "upper" enumeration:
    j = i.copy()
    tri = j * (j - 1) // 2
    # fix rounding slips from the float sqrt
    too_big = tri > ranks
    while np.any(too_big):
        j[too_big] -= 1
        tri = j * (j - 1) // 2
        too_big = tri > ranks
    too_small = (j + 1) * j // 2 <= ranks
    while np.any(too_small):
        j[too_small] += 1
        tri = j * (j - 1) // 2
        too_small = (j + 1) * j // 2 <= ranks
    i = ranks - tri
    edges = np.column_stack([i, j])
    return Graph.from_edges(n, edges, name=f"gnm-{n}-{m}")


@register_generator("random_regular")
def random_regular(n: int, d: int, seed: SeedLike = None, *, max_tries: int = 50) -> Graph:
    """Random ``d``-regular simple graph via the pairing model with repair.

    Samples a perfect matching of the ``n·d`` half-edge stubs, then repairs
    self-loops and multi-edges by random double-edge swaps (swap one endpoint
    of a conflicting pair with a random other pair).  The repair loop
    converges in a handful of rounds for constant degrees, making the sampler
    reliable where pure rejection (success probability ``≈ e^{-(d²-1)/4}``
    per draw) is flaky.  The distribution is the usual
    asymptotically-uniform-after-repair one — sufficient here because every
    experiment measures the expansion it actually got.

    Raises
    ------
    SolverError
        If no simple configuration is found within ``max_tries`` draws.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if d < 0 or d >= n:
        raise InvalidParameterError(f"degree must satisfy 0 <= d < n, got {d}")
    if (n * d) % 2 != 0:
        raise InvalidParameterError(f"n*d must be even, got n={n}, d={d}")
    if d == 0:
        return Graph.empty(n, name=f"rr-{n}-{d}")
    rng = as_generator(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    n_pairs = (n * d) // 2
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        pairs = perm.reshape(n_pairs, 2)
        for _repair in range(200):
            u, v = pairs[:, 0], pairs[:, 1]
            lo, hi = np.minimum(u, v), np.maximum(u, v)
            keys = lo * np.int64(n) + hi
            bad = u == v
            # mark all but the first occurrence of each duplicate key
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            dup_sorted = np.zeros(n_pairs, dtype=bool)
            dup_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
            bad[order[dup_sorted]] = True
            bad_idx = np.flatnonzero(bad)
            if bad_idx.size == 0:
                return Graph.from_edges(n, pairs, name=f"rr-{n}-{d}")
            partners = rng.integers(0, n_pairs, size=bad_idx.size)
            for i, j in zip(bad_idx.tolist(), partners.tolist()):
                pairs[i, 1], pairs[j, 1] = pairs[j, 1], pairs[i, 1]
    raise SolverError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )
