"""Classic small families: complete, cycle, path, star, trees, and the
pathological low-expansion specimens (barbell, ring of cliques) used to test
the pruning machinery's ability to find and cull bottlenecks.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ..graph import Graph
from ...api.registry import register_generator

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_bipartite",
    "barbell",
    "ring_of_cliques",
    "binary_tree",
]


@register_generator("complete_graph")
def complete_graph(n: int) -> Graph:
    """``K_n``.  Critical survival probability ``1/(n-1)`` (Erdős–Rényi)."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if n < 2:
        return Graph.empty(n, name=f"K{n}")
    iu = np.triu_indices(n, k=1)
    edges = np.column_stack([iu[0], iu[1]]).astype(np.int64)
    return Graph.from_edges(n, edges, name=f"K{n}")


@register_generator("cycle_graph")
def cycle_graph(n: int) -> Graph:
    """``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise InvalidParameterError(f"cycle needs n >= 3, got {n}")
    ids = np.arange(n, dtype=np.int64)
    edges = np.column_stack([ids, (ids + 1) % n])
    return Graph.from_edges(n, edges, name=f"C{n}")


@register_generator("path_graph")
def path_graph(n: int) -> Graph:
    """``P_n``: the path on ``n`` nodes."""
    if n < 1:
        raise InvalidParameterError(f"path needs n >= 1, got {n}")
    if n == 1:
        return Graph.empty(1, name="P1")
    ids = np.arange(n - 1, dtype=np.int64)
    edges = np.column_stack([ids, ids + 1])
    return Graph.from_edges(n, edges, name=f"P{n}")


@register_generator("star_graph")
def star_graph(n_leaves: int) -> Graph:
    """Star with one hub (id 0) and ``n_leaves`` leaves."""
    if n_leaves < 1:
        raise InvalidParameterError(f"star needs >= 1 leaf, got {n_leaves}")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    edges = np.column_stack([np.zeros(n_leaves, dtype=np.int64), leaves])
    return Graph.from_edges(n_leaves + 1, edges, name=f"star-{n_leaves}")


@register_generator("complete_bipartite")
def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise InvalidParameterError(f"parts must be >= 1, got {a}, {b}")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return Graph.from_edges(a + b, np.column_stack([left, right]), name=f"K{a},{b}")


@register_generator("barbell")
def barbell(clique_size: int, bridge_length: int = 0) -> Graph:
    """Two ``K_n`` cliques joined by a path of ``bridge_length`` extra nodes.

    The canonical "connectivity without expansion" example from the paper's
    introduction ("just a single line connects one half to the other").
    """
    if clique_size < 2:
        raise InvalidParameterError(f"clique_size must be >= 2, got {clique_size}")
    if bridge_length < 0:
        raise InvalidParameterError("bridge_length must be >= 0")
    c = clique_size
    n = 2 * c + bridge_length
    iu = np.triu_indices(c, k=1)
    left = np.column_stack([iu[0], iu[1]]).astype(np.int64)
    right = left + c
    edges = [left, right]
    # bridge: last node of left clique (c-1) -> bridge nodes -> first of right (c)
    chain = np.concatenate(
        [[c - 1], np.arange(2 * c, 2 * c + bridge_length, dtype=np.int64), [c]]
    )
    edges.append(np.column_stack([chain[:-1], chain[1:]]))
    return Graph.from_edges(n, np.concatenate(edges, axis=0),
                            name=f"barbell-{c}-{bridge_length}")


@register_generator("ring_of_cliques")
def ring_of_cliques(n_cliques: int, clique_size: int) -> Graph:
    """``n_cliques`` copies of ``K_s`` arranged in a ring, consecutive cliques
    joined by one edge.  Expansion ``Θ(1/(s·n_cliques))`` — a uniform-expansion
    family useful for exercising Theorem 2.5's attack."""
    if n_cliques < 3:
        raise InvalidParameterError(f"need >= 3 cliques, got {n_cliques}")
    if clique_size < 2:
        raise InvalidParameterError(f"clique_size must be >= 2, got {clique_size}")
    s = clique_size
    n = n_cliques * s
    iu = np.triu_indices(s, k=1)
    blocks = [
        np.column_stack([iu[0] + i * s, iu[1] + i * s]).astype(np.int64)
        for i in range(n_cliques)
    ]
    ring = np.column_stack(
        [
            np.arange(n_cliques, dtype=np.int64) * s,           # first node of clique i
            ((np.arange(n_cliques, dtype=np.int64) + 1) % n_cliques) * s + 1,
        ]
    )
    return Graph.from_edges(
        n, np.concatenate(blocks + [ring], axis=0), name=f"roc-{n_cliques}x{s}"
    )


@register_generator("binary_tree")
def binary_tree(depth: int) -> Graph:
    """Complete binary tree of ``2^{depth+1} - 1`` nodes (heap indexing)."""
    if depth < 0:
        raise InvalidParameterError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    if n == 1:
        return Graph.empty(1, name="btree-0")
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    return Graph.from_edges(n, np.column_stack([parent, child]), name=f"btree-{depth}")
