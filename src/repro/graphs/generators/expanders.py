"""Explicit expander constructions.

The paper's lower-bound constructions (Theorems 2.3 and 3.1) start from "an
infinite family of constant degree expander graphs with constant expansion β
and degree δ".  We provide two deterministic families plus a convenience
wrapper over random regular graphs:

* **Margulis–Gabber–Galil** expander on ``Z_m × Z_m`` (degree ≤ 8): the
  classic explicit construction with spectral gap bounded away from zero.
* **Chordal cycle** (cycle plus the ``x → x^{-1} mod p`` chords for prime
  ``p``): a 3-regular expander family due to Lubotzky–Phillips–Sarnak's
  discussion of explicit constructions.
* :func:`expander` picks the appropriate family for a requested size.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidParameterError
from ...util.rng import SeedLike
from ..graph import Graph
from .random_graphs import random_regular
from ...api.registry import register_generator

__all__ = ["margulis_expander", "chordal_cycle", "expander"]


@register_generator("margulis_expander")
def margulis_expander(m: int) -> Graph:
    """Margulis–Gabber–Galil expander on ``n = m²`` nodes.

    Node ``(x, y) ∈ Z_m × Z_m`` is connected to::

        (x ± y, y), (x ± y + 1, y), (x, y ± x), (x, y ± x + 1)   (mod m)

    after symmetrisation and removal of self-loops/duplicates; max degree 8.
    The second eigenvalue is bounded below ``8`` uniformly in ``m``, so edge
    expansion is Ω(1).
    """
    if m < 2:
        raise InvalidParameterError(f"margulis expander needs m >= 2, got {m}")
    n = m * m
    ids = np.arange(n, dtype=np.int64)
    x, y = ids // m, ids % m
    def nid(xx: np.ndarray, yy: np.ndarray) -> np.ndarray:
        return (xx % m) * np.int64(m) + (yy % m)
    targets = [
        nid(x + y, y),
        nid(x - y, y),
        nid(x + y + 1, y),
        nid(x - y - 1, y),
        nid(x, y + x),
        nid(x, y - x),
        nid(x, y + x + 1),
        nid(x, y - x - 1),
    ]
    edges = np.concatenate([np.column_stack([ids, t]) for t in targets], axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    coords = np.column_stack([x, y])
    return Graph.from_edges(n, edges, name=f"margulis-{m}", coords=coords)


def _is_prime(p: int) -> bool:
    if p < 2:
        return False
    if p % 2 == 0:
        return p == 2
    f = 3
    while f * f <= p:
        if p % f == 0:
            return False
        f += 2
    return True


@register_generator("chordal_cycle")
def chordal_cycle(p: int) -> Graph:
    """Chordal-cycle expander on a prime ``p`` of nodes.

    Node ``x`` connects to ``x ± 1 (mod p)`` and to its modular inverse
    ``x^{-1} mod p`` (0 maps to itself and keeps degree 2).  Degree ≤ 3.
    """
    if not _is_prime(p):
        raise InvalidParameterError(f"chordal cycle requires a prime, got {p}")
    ids = np.arange(p, dtype=np.int64)
    ring_next = (ids + 1) % p
    edges = [np.column_stack([ids, ring_next])]
    inv = np.array([0] + [pow(int(x), -1, p) for x in range(1, p)], dtype=np.int64)
    chord = np.column_stack([ids, inv])
    chord = chord[chord[:, 0] != chord[:, 1]]
    edges.append(chord)
    return Graph.from_edges(p, np.concatenate(edges, axis=0), name=f"chordal-{p}")


@register_generator("expander")
def expander(n: int, degree: int = 4, seed: SeedLike = None) -> Graph:
    """Constant-degree expander on (approximately) ``n`` nodes.

    Uses a random ``degree``-regular graph — at the sizes used in this
    reproduction these are expanders with overwhelming probability, and the
    experiments verify the measured expansion explicitly, so a w.h.p.
    guarantee is sufficient.  Deterministic alternatives are available via
    :func:`margulis_expander` / :func:`chordal_cycle`.

    ``n`` is rounded up to make ``n * degree`` even.
    """
    if n < degree + 1:
        raise InvalidParameterError(
            f"need n > degree for a {degree}-regular expander, got n={n}"
        )
    if (n * degree) % 2 == 1:
        n += 1
    g = random_regular(n, degree, seed=seed)
    return g.renamed(f"expander-{n}-d{degree}")
