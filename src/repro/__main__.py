"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro --list
    python -m repro e1 e7
    python -m repro all --seed 3 --scale 2

Each experiment prints its table (the same rows the benchmark suite writes
to ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.experiments import ALL_EXPERIMENTS
from .util.tables import format_row_dicts

_DESCRIPTIONS = {
    "e1": "Theorem 2.1 — Prune under adversarial faults",
    "e2": "Claim 2.4 — chain-replacement expansion Θ(1/k)",
    "e3": "Theorem 2.3 — chain-centre attack shatters H(G,k)",
    "e4": "Theorem 2.5 — shattering uniform-expansion graphs",
    "e5": "Theorem 3.1 — random faults at p = Θ(α)",
    "e6": "Theorem 3.4 — Prune2 success threshold",
    "e7": "Theorem 3.6 — mesh span ≤ 2",
    "e8": "§1.1 survey — critical probabilities",
    "e9": "§4 — routing / load-balancing consequences",
    "e10": "§4 open problem — span of butterfly/deBruijn/S-E",
    "e11": "ablation — cut-finder strategies",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from 'The Effect of Faults on "
        "Network Expansion' (SPAA 2004).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e1..e11) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--scale", type=int, default=1, help="instance size multiplier")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for key in ALL_EXPERIMENTS:
            print(f"{key:>4}  {_DESCRIPTIONS[key]}")
        return 0

    wanted = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for key in wanted:
        runner = ALL_EXPERIMENTS[key]
        t0 = time.perf_counter()
        rows = runner(seed=args.seed, scale=args.scale)
        elapsed = time.perf_counter() - t0
        print(
            format_row_dicts(
                rows, title=f"{key.upper()} — {_DESCRIPTIONS[key]} ({elapsed:.1f}s)"
            )
        )
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
