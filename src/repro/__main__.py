"""Command-line entry point: experiments, declarative scenarios, cache ops.

Usage::

    python -m repro --list
    python -m repro e1 e7
    python -m repro all --seed 3 --scale 2 --workers 4 --store .repro-cache
    python -m repro run scenario.json
    python -m repro run-batch scenarios.json --workers 8 --json out.json
    python -m repro run-batch scenarios.json --store sweep-cache --resume
    python -m repro sweep plan grid.json
    python -m repro sweep run grid.json --store sweep-cache --workers 8
    python -m repro sweep status grid.json --store sweep-cache
    python -m repro serve --store sweep-cache --workers 4 --port 8750
    python -m repro sweep submit grid.json --server http://127.0.0.1:8750
    python -m repro sweep watch  grid.json --server http://127.0.0.1:8750
    python -m repro sweep status sw0-ab12cd34 --server http://127.0.0.1:8750
    python -m repro paper run --out paper-artifact [--smoke]
    python -m repro paper render paper-artifact
    python -m repro paper diff run-a run-b
    python -m repro cache stats --store sweep-cache
    python -m repro registry
    python -m repro components

``run`` executes one scenario spec (a JSON object); ``run-batch`` executes a
JSON array of specs, deduplicating baseline expansion estimates and fanning
scenarios out over worker processes.  ``--store PATH`` attaches a persistent
result store: completed scenarios are appended as they finish and identical
scenarios are served from disk instead of re-executing, which is also what
makes an interrupted sweep resumable — rerun the same command and only the
missing scenarios execute.  ``--resume`` is shorthand for ``--store`` at the
default location (``.repro-cache``).  ``cache stats|prune|clear`` inspects
and maintains a store.  ``registry`` lists every registered component with
its metadata; ``components`` is the bare-names legacy listing.

``sweep`` takes a :class:`repro.api.sweeps.SweepSpec` JSON file (a grid
over spec fields + trial counts + a sampling policy).  ``sweep plan``
prints the expansion without running anything; ``sweep run`` executes it —
trial by trial, streaming aggregates, honouring adaptive policies — and
``sweep status`` reports how much of the grid a store already holds (the
resume frontier).

``serve`` starts the long-running sweep service (:mod:`repro.service`): an
HTTP server with a distributed worker pool over a shared result store.
Clients submit SweepSpecs with ``sweep submit --server URL`` and follow
them with ``sweep status`` / ``sweep watch``; identical concurrent
submissions are deduplicated into one computation, warm grid points are
served from the store without dispatching, and results are bit-identical
to a local ``sweep run`` of the same file.  SIGTERM drains gracefully.

``paper`` produces the one-command reproduction artifact
(:mod:`repro.report.paper`): ``paper run`` executes the e1–e14 suite on a
shared session (warm stores re-render with zero engine calls) and writes
``report.md`` / ``report.html`` / ``figures/*.svg`` / ``tables/*.json`` /
``manifest.json``; ``paper render`` re-renders an artifact directory from
its tables without executing anything; ``paper diff`` compares two
manifests and flags only results whose confidence intervals do not
overlap (exit 1 when something is flagged).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

from .core.experiments import ALL_EXPERIMENTS
from .errors import ReproError
from .util.tables import format_row_dicts

#: Store directory used by ``--resume`` and the ``cache`` subcommand when no
#: explicit ``--store`` is given.
DEFAULT_STORE = ".repro-cache"

_DESCRIPTIONS = {
    "e1": "Theorem 2.1 — Prune under adversarial faults",
    "e2": "Claim 2.4 — chain-replacement expansion Θ(1/k)",
    "e3": "Theorem 2.3 — chain-centre attack shatters H(G,k)",
    "e4": "Theorem 2.5 — shattering uniform-expansion graphs",
    "e5": "Theorem 3.1 — random faults at p = Θ(α)",
    "e6": "Theorem 3.4 — Prune2 success threshold",
    "e7": "Theorem 3.6 — mesh span ≤ 2",
    "e8": "§1.1 survey — critical probabilities",
    "e9": "§4 — routing / load-balancing consequences",
    "e10": "§4 open problem — span of butterfly/deBruijn/S-E",
    "e11": "ablation — cut-finder strategies",
    "e12": "cascading faults — cascade size vs margin α",
    "e13": "shortcut hardening of geographic graphs",
    "e14": "small-world vs regular lattice disintegration",
}


def _load_specs(path: str):
    """Read one spec (object) or many (array) from a JSON file."""
    from .api.specs import ScenarioSpec

    payload = json.loads(Path(path).read_text())
    if isinstance(payload, list):
        return [ScenarioSpec.from_dict(d) for d in payload]
    return [ScenarioSpec.from_dict(payload)]


def _emit_results(results, *, json_path: str | None, title: str) -> None:
    print(format_row_dicts([r.row() for r in results], title=title))
    if json_path:
        Path(json_path).write_text(
            json.dumps([r.to_dict() for r in results], indent=2)
        )
        print(f"wrote {len(results)} result(s) to {json_path}")


def _store_path(args: argparse.Namespace) -> str | None:
    """Resolve the ``--store`` / ``--resume`` pair to a store directory."""
    if args.store:
        return args.store
    return DEFAULT_STORE if getattr(args, "resume", False) else None


def _batch_mode(args: argparse.Namespace):
    """Map the ``--batch/--no-batch`` tri-state onto the session modes
    (absent → ``"auto"``)."""
    flag = getattr(args, "batch", None)
    return "auto" if flag is None else flag


def _open_session(store: str | None, workers: int | None, batch="auto",
                  backend: str | None = None):
    """Build a Session, turning an unusable store path (existing file,
    permissions, ...) into the CLI's one-line-error contract."""
    from .api.session import Session

    try:
        return Session(
            store=store, workers=workers, batch=batch, backend=backend
        ), 0
    except OSError as exc:
        print(f"cannot open store at {store}: {exc}", file=sys.stderr)
        return None, 2


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        specs = _load_specs(args.spec_file)
    except (OSError, ValueError, ReproError) as exc:
        print(f"cannot load spec(s) from {args.spec_file}: {exc}", file=sys.stderr)
        return 2
    if args.command == "run" and len(specs) != 1:
        print(
            f"'run' expects a single spec object; {args.spec_file} holds "
            f"{len(specs)} — use 'run-batch'",
            file=sys.stderr,
        )
        return 2
    store = _store_path(args)
    session, err = _open_session(store, args.workers)
    if session is None:
        return err
    t0 = time.perf_counter()
    try:
        if args.command == "run":
            results = [session.run(specs[0])]
        else:
            results = session.run_batch(specs)
    except ReproError as exc:
        print(f"scenario failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    _emit_results(
        results,
        json_path=args.json,
        title=f"{len(results)} scenario(s) ({elapsed:.1f}s)",
    )
    if store is not None:
        print(
            f"store {store}: {session.hits} cached, {session.misses} computed"
        )
    return 0


def _planned_trials(sweep) -> tuple[int, str]:
    """(per-point planned/cap trials, human description) for a sweep."""
    policy = sweep.policy
    if policy.kind == "fixed":
        return sweep.trials, f"{sweep.trials} per point"
    if policy.kind == "ci_width":
        return sweep.trials, (
            f"{policy.min_trials}..{sweep.trials} per point "
            f"(stop at CI half-width <= {policy.target:g})"
        )
    if policy.kind == "cluster":
        budget = f", {policy.budget} total" if policy.budget else ""
        return sweep.trials, (
            f"{policy.min_trials} per point, then cluster by response and "
            f"tighten representatives to half-width <= {policy.target:g} "
            f"(cap {sweep.trials} per point{budget})"
        )
    if policy.kind == "transition":
        budget = f", {policy.budget} total" if policy.budget else ""
        return sweep.trials, (
            f"{policy.min_trials} per point, then chunks of {policy.chunk} "
            f"where fitted |slope| x CI half-width peaks "
            f"(cap {sweep.trials} per point{budget})"
        )
    return policy.budget, (
        f"{policy.min_trials} per point, then chunks of {policy.chunk} to the "
        f"noisiest point ({policy.budget} total)"
    )


def _cmd_sweep(argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Plan / execute / inspect a declarative sweep "
        "(a SweepSpec JSON file), locally or against a running sweep "
        "service (see 'python -m repro serve'). Sampling policies: fixed, "
        "ci_width, budget, cluster (run cluster representatives, map "
        "results back), transition (concentrate trials where the fitted "
        "response curve is steep).",
    )
    sub.add_argument(
        "action", choices=("run", "plan", "status", "submit", "watch")
    )
    sub.add_argument(
        "sweep_file",
        help="JSON file holding one SweepSpec object; with --server, "
        "status/watch also accept a sweep id (e.g. sw0-ab12cd34)",
    )
    sub.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for trial fan-out (default: auto)",
    )
    sub.add_argument("--json", default=None, help="also write the result as JSON")
    sub.add_argument(
        "--store", default=None,
        help="persistent result store: completed trials are reused instead "
        "of re-executed (resume at trial granularity)",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help=f"shorthand for --store {DEFAULT_STORE}",
    )
    sub.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="force the batched (--batch) or scalar (--no-batch) trial "
        "engine; default: auto — batch eligible multi-trial grid points. "
        "Results are bit-identical either way",
    )
    sub.add_argument(
        "--backend", choices=("auto", "numpy", "numba"), default=None,
        help="kernel backend for batched execution (default: auto — numba "
        "when importable, else numpy). Results are bit-identical across "
        "backends",
    )
    sub.add_argument(
        "--server", default=None, metavar="URL",
        help="a running sweep service (python -m repro serve); required "
        "for submit/watch, and switches status to the service's view",
    )
    sub.add_argument(
        "--priority", type=int, default=0,
        help="scheduling priority when submitting via --server "
        "(lower drains first; default 0)",
    )
    args = sub.parse_args(argv)
    from .api.sweeps import SweepSpec, run_sweep

    if args.action in ("submit", "watch") and not args.server:
        print(f"sweep {args.action} needs --server URL", file=sys.stderr)
        return 2
    if args.server:
        return _sweep_remote(args)

    try:
        sweep = SweepSpec.from_json(Path(args.sweep_file).read_text())
    except (OSError, ValueError, ReproError) as exc:
        print(f"cannot load sweep from {args.sweep_file}: {exc}", file=sys.stderr)
        return 2

    points = sweep.points()
    cap, description = _planned_trials(sweep)

    if args.action == "plan":
        print(f"sweep {sweep.hash()} ({sweep.label or 'unlabelled'})")
        print(f"  axes:     {len(sweep.axes)}  "
              + "  ".join(f"{a.path}[{len(a.values)}]" for a in sweep.axes))
        print(f"  points:   {len(points)}")
        print(f"  policy:   {sweep.policy.kind} — {description}")
        print(f"  metrics:  {', '.join(sweep.metrics)}")
        if sweep.policy.kind == "budget":
            print(f"  max trials: {sweep.policy.budget} (total)")
        else:
            print(f"  max trials: {len(points) * cap}")
        rows = [
            {"point": p.index, **{k.rsplit('.', 1)[-1]: v
                                  for k, v in p.coords if not isinstance(v, dict)},
             "label": p.spec.label}
            for p in points
        ]
        print()
        print(format_row_dicts(rows, title="grid"))
        return 0

    if args.action == "status":
        store_dir = args.store or DEFAULT_STORE
        if not Path(store_dir).is_dir():
            print(f"no store at {store_dir}")
            return 2
        from .api.store import ResultStore

        store = ResultStore(store_dir)
        rows = []
        total_done = 0
        for p in points:
            if sweep.policy.kind == "budget":
                # a budget is a *total*; per point, report the contiguous
                # cached frontier (probe until the first missing trial)
                done = 0
                while (
                    done < sweep.policy.budget
                    and store.get_result(sweep.trial_spec(p, done)) is not None
                ):
                    done += 1
                cached = f"{done}"
            else:
                done = sum(
                    1 for t in range(cap)
                    if store.get_result(sweep.trial_spec(p, t)) is not None
                )
                cached = f"{done}/{cap}"
            total_done += done
            rows.append(
                {"point": p.index, "label": p.spec.label,
                 "cached_trials": cached}
            )
        print(format_row_dicts(
            rows, title=f"store {store_dir}: {total_done} trial(s) cached"
        ))
        return 0

    store = _store_path(args)
    session, err = _open_session(
        store, args.workers, _batch_mode(args), args.backend
    )
    if session is None:
        return err
    t0 = time.perf_counter()

    def _on_round(round_no: int, units: int, done: int) -> None:
        print(f"round {round_no}: dispatching {units} trial(s) "
              f"({done} done so far)")

    try:
        result = run_sweep(sweep, session, on_round=_on_round)
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    print()
    print(format_row_dicts(
        result.rows(),
        title=f"sweep {sweep.hash()}: {result.total_trials} trial(s), "
        f"{result.rounds} round(s) ({elapsed:.1f}s)",
    ))
    print(f"fingerprint {result.fingerprint()}")
    if store is not None:
        print(f"store {store}: {session.hits} cached, {session.misses} computed")
    if args.json:
        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2))
        print(f"wrote sweep result to {args.json}")
    return 0


def _resolve_remote_sweep(client, arg: str):
    """Map a CLI positional to a server-side sweep id.

    A path to a SweepSpec file resolves by content hash against the
    service's sweep index (returning the spec too, so ``watch`` can
    submit it when absent); anything else is taken as a sweep id.
    """
    from .api.sweeps import SweepSpec

    if not Path(arg).is_file():
        return arg, None
    spec = SweepSpec.from_json(Path(arg).read_text())
    sweep_hash = spec.hash()
    for entry in client.sweeps()["sweeps"]:
        if entry["hash"] == sweep_hash:
            return entry["id"], spec
    return None, spec


def _print_remote_status(status: dict) -> None:
    print(f"sweep {status['id']} ({status['label'] or 'unlabelled'})")
    print(f"  state:    {status['state']}"
          + (f" — {status['error']}" if status.get("error") else ""))
    print(f"  trials:   {status['trials_done']}/{status['trials_allocated']} "
          f"done, {status['rounds']} round(s), {status['points']} point(s)")
    print(f"  store:    {status['store']['hits']} cached, "
          f"{status['store']['misses']} computed")
    if status.get("dedup_count"):
        print(f"  shared:   {status['dedup_count']} deduplicated submission(s)")
    if status.get("fingerprint"):
        print(f"  fingerprint {status['fingerprint']}")
    service = status.get("service", {})
    if service:
        print(
            "  service:  "
            f"{service['workers_alive']} worker(s), "
            f"{service['jobs_queued']} queued, "
            f"{service['jobs_running']} running, "
            f"{service['sweeps_active']} sweep(s) active, "
            f"{service['workers_crashed_total']} crash(es)"
        )
        if "store_segments" in service:
            print(
                "  storage:  "
                f"{service['store_entries']} entr(ies) in "
                f"{service['store_segments']} segment(s), "
                f"garbage {service['store_garbage_ratio']:.0%}, "
                f"{service['store_compactions_total']} compaction(s), "
                f"{service['store_index_hits_total']} index hit(s)"
            )


def _sweep_remote(args: argparse.Namespace) -> int:
    """The --server side of the sweep verbs: submit / status / watch."""
    from .api.sweeps import SweepSpec
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if args.action == "plan":
            print("sweep plan is local-only; drop --server", file=sys.stderr)
            return 2

        if args.action == "submit":
            try:
                spec = SweepSpec.from_json(Path(args.sweep_file).read_text())
            except (OSError, ValueError, ReproError) as exc:
                print(f"cannot load sweep from {args.sweep_file}: {exc}",
                      file=sys.stderr)
                return 2
            response = client.submit(spec, priority=args.priority)
            verb = "joined" if response["deduped"] else "submitted"
            print(f"{verb} sweep {response['id']} "
                  f"(hash {response['hash']}, state {response['state']})")
            print(f"follow with: python -m repro sweep watch "
                  f"{response['id']} --server {args.server}")
            return 0

        sweep_id, spec = _resolve_remote_sweep(client, args.sweep_file)
        if args.action == "status":
            if sweep_id is None:
                print(f"{args.sweep_file} (hash {spec.hash()}) is not on "
                      f"{args.server}; submit it first")
                return 2
            _print_remote_status(client.status(sweep_id))
            return 0

        # watch (and run, which aliases it): submit-if-absent, then follow.
        if sweep_id is None:
            response = client.submit(spec, priority=args.priority)
            sweep_id = response["id"]
            print(f"submitted sweep {sweep_id}")
        t0 = time.perf_counter()
        last = {"done": -1}

        def _progress(status: dict) -> None:
            if status["trials_done"] != last["done"]:
                last["done"] = status["trials_done"]
                print(f"  {status['trials_done']}/{status['trials_allocated']}"
                      f" trial(s) done ({status['state']})")

        results = client.watch(sweep_id, on_status=_progress)
        elapsed = time.perf_counter() - t0
        print()
        print(format_row_dicts(
            results["rows"],
            title=f"sweep {results['hash']}: {results['total_trials']} "
            f"trial(s), {results['rounds']} round(s) ({elapsed:.1f}s)",
        ))
        print(f"fingerprint {results['fingerprint']}")
        if args.json:
            Path(args.json).write_text(json.dumps(results, indent=2))
            print(f"wrote sweep result to {args.json}")
        return 0
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1


def _cmd_serve(argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the sweep service: an HTTP server scheduling "
        "submitted SweepSpecs over a pool of worker processes that share "
        "one result store.  SIGTERM/SIGINT drain gracefully.",
    )
    sub.add_argument(
        "--store", default=DEFAULT_STORE,
        help=f"shared result store directory (default: {DEFAULT_STORE})",
    )
    sub.add_argument(
        "--workers", type=int, default=2,
        help="worker processes executing trials (default: 2)",
    )
    sub.add_argument("--host", default="127.0.0.1", help="bind address")
    sub.add_argument(
        "--port", type=int, default=8750,
        help="bind port; 0 picks an ephemeral port (default: 8750)",
    )
    sub.add_argument(
        "--job-timeout", type=float, default=300.0,
        help="seconds a dispatched job may run before its worker is "
        "recycled and the job requeued (default: 300)",
    )
    sub.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries a job gets (crashes/timeouts) before its sweep "
        "fails (default: 3)",
    )
    sub.add_argument(
        "--job-chunk", type=int, default=None,
        help="split grid-point trial requests into jobs of at most this "
        "many trials (default: one job per request)",
    )
    sub.add_argument(
        "--fsync", action="store_true",
        help="fsync every result-store append (durable, slower)",
    )
    sub.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="force the batched (--batch) or scalar (--no-batch) trial "
        "engine in workers; default: auto",
    )
    sub.add_argument(
        "--backend", choices=("auto", "numpy", "numba"), default="auto",
        help="kernel backend for worker sessions (default: auto — numba "
        "when importable, else numpy)",
    )
    sub.add_argument(
        "--no-merge-points", action="store_true",
        help="dispatch one grid point per job instead of merging "
        "compatible points into stacked multi-point jobs",
    )
    args = sub.parse_args(argv)
    import signal
    import threading

    from .service import ServiceConfig, SweepService

    config = ServiceConfig(
        store=args.store,
        workers=args.workers,
        host=args.host,
        port=args.port,
        batch=_batch_mode(args),
        backend=args.backend,
        job_timeout=args.job_timeout,
        max_attempts=args.max_attempts,
        job_chunk=args.job_chunk,
        merge_points=not args.no_merge_points,
        fsync=args.fsync,
    )
    service = SweepService(config)
    stop = threading.Event()

    def _on_signal(signum, frame):
        print(f"received {signal.Signals(signum).name}; draining...",
              flush=True)
        service.begin_drain()
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        service.start()
    except OSError as exc:
        print(f"cannot start service: {exc}", file=sys.stderr)
        return 2
    print(
        f"sweep service listening on {service.url} "
        f"(store {args.store}, {args.workers} worker(s))",
        flush=True,
    )
    while not stop.wait(0.2):
        pass
    clean = service.stop()
    print("drained cleanly" if clean else
          "drain timed out; workers terminated", flush=True)
    return 0 if clean else 1


def _cmd_paper(argv: list[str]) -> int:
    actions = ("run", "render", "diff")
    if not argv or argv[0] not in actions:
        print(
            "usage: python -m repro paper {run,render,diff} ...\n"
            "  run    --out DIR [--smoke] [--seed N] [--scale N] "
            "[--workers N] [--store DIR] [--only e1,e5,...] [--refresh]\n"
            "  render OUT_DIR\n"
            "  diff   DIR_A DIR_B [--json PATH]",
            file=sys.stderr,
        )
        return 2
    action, rest = argv[0], argv[1:]
    from .errors import ReproError

    if action == "diff":
        sub = argparse.ArgumentParser(
            prog="python -m repro paper diff",
            description="Compare two paper artifacts by manifest; flag only "
            "results whose confidence intervals do not overlap.",
        )
        sub.add_argument("dir_a", help="first artifact directory")
        sub.add_argument("dir_b", help="second artifact directory")
        sub.add_argument("--json", default=None, help="also write the diff as JSON")
        args = sub.parse_args(rest)
        from .report.paper import diff_paper

        try:
            diff = diff_paper(args.dir_a, args.dir_b)
        except (OSError, ValueError) as exc:
            print(f"cannot diff: {exc}", file=sys.stderr)
            return 2
        print(diff.to_text())
        if args.json:
            Path(args.json).write_text(json.dumps(diff.to_dict(), indent=2))
            print(f"wrote diff to {args.json}")
        return 0 if diff.clean else 1

    if action == "render":
        sub = argparse.ArgumentParser(
            prog="python -m repro paper render",
            description="Re-render report.md/report.html/figures/manifest "
            "from an artifact's tables/*.json (no execution).",
        )
        sub.add_argument("out_dir", help="artifact directory to re-render")
        args = sub.parse_args(rest)
        from .report.paper import render_paper

        try:
            render_paper(args.out_dir)
        except (OSError, ValueError) as exc:
            print(f"cannot render {args.out_dir}: {exc}", file=sys.stderr)
            return 2
        print(f"re-rendered {args.out_dir} (report.md, report.html, "
              "figures/, manifest.json)")
        return 0

    sub = argparse.ArgumentParser(
        prog="python -m repro paper run",
        description="Run the paper's experiment suite and emit a "
        "self-contained reproduction artifact directory.",
    )
    sub.add_argument(
        "--out", default="paper-artifact",
        help="artifact output directory (default: paper-artifact)",
    )
    sub.add_argument(
        "--store", default=None,
        help="result store shared by the runners (default: <out>/store — "
        "rerunning with the same --out is warm and performs zero engine "
        "calls)",
    )
    sub.add_argument("--seed", type=int, default=0, help="base RNG seed")
    sub.add_argument("--scale", type=int, default=1, help="instance size multiplier")
    sub.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for scenario fan-out (0 = auto)",
    )
    sub.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: same experiments, reduced trials/samples",
    )
    sub.add_argument(
        "--only", default=None,
        help="comma-separated experiment subset (e.g. e1,e5,e8)",
    )
    sub.add_argument(
        "--refresh", action="store_true",
        help="ignore cached results/tables; recompute and rewrite the store",
    )
    sub.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="force the batched (--batch) or scalar (--no-batch) trial "
        "engine for the experiment sweeps; default: auto. Results — and "
        "the manifest — are bit-identical either way",
    )
    args = sub.parse_args(rest)
    from .report.paper import PaperConfig, run_paper

    try:
        config = PaperConfig(
            seed=args.seed,
            scale=args.scale,
            smoke=args.smoke,
            experiments=tuple(
                e.strip() for e in args.only.split(",") if e.strip()
            ) if args.only else (),
            workers=args.workers,
            batch=_batch_mode(args),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    try:
        run = run_paper(
            config, args.out, store=args.store, refresh=args.refresh,
            progress=print,
        )
    except (OSError, ReproError) as exc:
        print(f"paper run failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    print(
        f"tables: {run.table_hits} cached, {run.table_misses} computed; "
        f"scenarios: {run.scenario_hits} cached, "
        f"{run.scenario_misses} computed (engine calls: {run.engine_calls})"
    )
    print(
        f"wrote {args.out}: report.md, report.html, "
        f"{len(run.manifest.get('figures', {}))} figure(s), "
        f"{len(run.tables)} table(s), manifest.json ({elapsed:.1f}s)"
    )
    return 0


def _cmd_cache(argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect / maintain a persistent result store.",
    )
    sub.add_argument("action", choices=("stats", "prune", "clear", "compact"))
    sub.add_argument(
        "--store", default=DEFAULT_STORE,
        help=f"store directory (default: {DEFAULT_STORE})",
    )
    sub.add_argument(
        "--min-garbage", type=float, default=0.3, metavar="RATIO",
        help="compact: only rewrite shards at or above this garbage ratio "
        "(default: 0.3)",
    )
    sub.add_argument(
        "--force", action="store_true",
        help="compact: rewrite every shard regardless of garbage ratio",
    )
    sub.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="compact: evict oldest entries until live bytes fit the budget",
    )
    sub.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="compact: evict entries older than this many days",
    )
    args = sub.parse_args(argv)
    from .api.store import ResultStore

    if not Path(args.store).is_dir():
        print(f"no store at {args.store}")
        return 0 if args.action == "stats" else 2
    store = ResultStore(args.store)
    if args.action == "stats":
        for key, value in store.stats().to_dict().items():
            print(f"{key:>13}  {value}")
        for row in store.shard_rows("results"):
            if not row["segments"] and not row["entries"]:
                continue  # empty shards add nothing to the picture
            print(
                f"  results/shard-{row['shard']:02d}  "
                f"entries={row['entries']}  segments={row['segments']}  "
                f"garbage_ratio={row['garbage_ratio']:.2f}"
            )
    elif args.action == "prune":
        counts = store.prune()
        print(
            f"pruned {args.store}: kept {counts['kept']} result(s), "
            f"dropped {counts['dropped']}"
        )
    elif args.action == "compact":
        counts = store.compact(
            force=args.force,
            min_garbage=args.min_garbage,
            max_bytes=args.max_bytes,
            max_age_s=(
                args.max_age_days * 86400.0
                if args.max_age_days is not None
                else None
            ),
        )
        print(
            f"compacted {args.store}: kept {counts['kept']}, dropped "
            f"{counts['superseded']} superseded, {counts['corrupt']} corrupt, "
            f"{counts['evicted']} evicted"
        )
    else:
        n = len(store)
        store.clear()
        print(f"cleared {args.store}: removed {n} result(s)")
    return 0


def _cmd_registry(argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="python -m repro registry",
        description="List registered components and their metadata.",
    )
    sub.add_argument(
        "kind",
        nargs="?",
        choices=("generators", "fault-models", "pruners", "finders"),
        help="restrict the listing to one registry",
    )
    args = sub.parse_args(argv)
    from .api.registry import (
        list_fault_models,
        list_finders,
        list_generators,
        list_pruners,
    )

    sections = {
        "generators": list_generators,
        "fault-models": list_fault_models,
        "pruners": list_pruners,
        "finders": list_finders,
    }
    wanted = [args.kind] if args.kind else list(sections)
    for kind in wanted:
        rows = sections[kind]()
        print(f"{kind.replace('-', ' ')} ({len(rows)}):")
        width = max((len(r["name"]) for r in rows), default=0)
        for row in rows:
            flags = "".join(
                f" [{flag}]"
                for flag, on in (("seeded", row["seeded"]), ("raw", row["takes_raw"]))
                if on
            )
            summary = f" — {row['summary']}" if row["summary"] else ""
            print(f"  {row['name']:<{width}}  {row['signature']}{flags}{summary}")
        print()
    return 0


def _cmd_components() -> int:
    from .api import FAULT_MODELS, FINDERS, GENERATORS, PRUNERS
    from .api import engine as _engine  # noqa: F401  (populates the registries)

    for registry in (GENERATORS, FAULT_MODELS, PRUNERS, FINDERS):
        print(f"{registry.kind}s:")
        for name in registry:
            print(f"  {name}")
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    wanted = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    store = _store_path(args)
    session = None
    if store is not None:
        session, err = _open_session(store, args.workers)
        if session is None:
            return err
    for key in wanted:
        runner = ALL_EXPERIMENTS[key]
        params = inspect.signature(runner).parameters
        kwargs = {"seed": args.seed, "scale": args.scale}
        if "workers" in params:
            kwargs["workers"] = args.workers
        if "session" in params and session is not None:
            kwargs["session"] = session
        t0 = time.perf_counter()
        rows = runner(**kwargs)
        elapsed = time.perf_counter() - t0
        print(
            format_row_dicts(
                rows, title=f"{key.upper()} — {_DESCRIPTIONS[key]} ({elapsed:.1f}s)"
            )
        )
        print()
    if session is not None:
        print(f"store {store}: {session.hits} cached, {session.misses} computed")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)

    if argv and argv[0] in ("run", "run-batch"):
        sub = argparse.ArgumentParser(
            prog=f"python -m repro {argv[0]}",
            description="Execute declarative scenario spec(s) from a JSON file.",
        )
        sub.add_argument("spec_file", help="JSON file: one spec object or an array")
        sub.add_argument(
            "--workers", type=int, default=None,
            help="worker processes for run-batch (default: auto)",
        )
        sub.add_argument("--json", default=None, help="also write results as JSON")
        sub.add_argument(
            "--store", default=None,
            help="persistent result store directory: completed scenarios are "
            "reused instead of re-executed",
        )
        sub.add_argument(
            "--resume", action="store_true",
            help=f"shorthand for --store {DEFAULT_STORE} (resume an "
            "interrupted sweep from the default store)",
        )
        args = sub.parse_args(argv[1:])
        args.command = argv[0]
        return _cmd_run(args)

    if argv and argv[0] == "sweep":
        return _cmd_sweep(argv[1:])

    if argv and argv[0] == "serve":
        return _cmd_serve(argv[1:])

    if argv and argv[0] == "paper":
        return _cmd_paper(argv[1:])

    if argv and argv[0] == "cache":
        return _cmd_cache(argv[1:])

    if argv and argv[0] == "registry":
        return _cmd_registry(argv[1:])

    if argv and argv[0] == "components":
        return _cmd_components()

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from 'The Effect of Faults on "
        "Network Expansion' (SPAA 2004), or run declarative scenarios "
        "(see 'python -m repro run --help').",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e1..e14) or 'all'; or the subcommands "
        "run/run-batch/sweep/serve/paper/cache/registry/components",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--scale", type=int, default=1, help="instance size multiplier")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for batch-capable experiments (0 = auto)",
    )
    parser.add_argument(
        "--store", default=None,
        help="persistent result store directory shared by the experiment "
        "runners (reruns serve completed scenarios from disk)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=f"shorthand for --store {DEFAULT_STORE}",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for key in ALL_EXPERIMENTS:
            print(f"{key:>4}  {_DESCRIPTIONS[key]}")
        print(
            "\nsubcommands: run <spec.json> | run-batch <specs.json> | "
            "sweep <run|plan|status|submit|watch> <sweep.json> | "
            "serve | paper <run|render|diff> | "
            "cache <stats|prune|clear> | registry | components"
        )
        return 0
    return _run_experiments(args)


if __name__ == "__main__":
    raise SystemExit(main())
