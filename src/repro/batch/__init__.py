"""Batched trial engine: evaluate many fault trials on one graph at once.

The paper's experiments are Monte-Carlo: at every grid point of a sweep,
hundreds of i.i.d. fault trials hit *the same graph* with *the same
analysis* and differ only in their run seed.  The scalar engine executes
each trial as an independent ``fault → subgraph → components`` pipeline —
correct, but the per-trial Python and subgraph-construction overhead
dominates at sweep scale.

This package stacks a grid point's trials into one ``(T × n)`` alive-mask
matrix and evaluates them with the mask-parallel kernels in
:mod:`repro.graphs.traversal`:

* :mod:`repro.batch.faults` — vectorised fault injection: per-trial fault
  masks drawn without ever materialising per-trial subgraphs, bit-identical
  to the scalar fault models' draws;
* :mod:`repro.batch.engine` — :func:`~repro.batch.engine.run_trials`, the
  batched counterpart of :func:`repro.api.engine.run` for measure-only
  analyses, plus :func:`~repro.batch.engine.supports`, the eligibility
  test the sweep layer auto-batches on;
* :mod:`repro.batch.metrics` — batched largest-component (γ) and
  set-expansion metrics shared with the percolation modules;
* :mod:`repro.batch.rounds` — sequential-round mask kernels
  (:func:`~repro.batch.rounds.run_rounds`) for fault dynamics that
  iterate, e.g. the load-redistribution cascade.

**The scalar-equivalence guarantee.**  The batched path is an *execution
strategy*, never a semantic switch: for every supported scenario it
produces :class:`~repro.api.specs.RunResult` records that are equal to the
scalar engine's (and hash to identical fingerprints) — the same per-trial
RNG streams, the same component statistics, the same store entries.  The
guarantee is enforced, not assumed: ``tests/batch/test_differential.py``
property-tests batched-vs-scalar equality across randomly generated
(graph, fault rate, seed) cases, and the sweep/percolation layers expose
``batch`` switches so any suspected divergence can be bisected at runtime.
See ``docs/batch.md`` and DESIGN.md §8.
"""

from .engine import run_trials, supports
from .faults import MASK_SAMPLERS, batched_fault_masks, register_mask_sampler
from .metrics import batched_gamma, batched_set_expansion
from .rounds import cascade_rounds, run_rounds

__all__ = [
    "run_trials",
    "supports",
    "MASK_SAMPLERS",
    "batched_fault_masks",
    "register_mask_sampler",
    "batched_gamma",
    "batched_set_expansion",
    "run_rounds",
    "cascade_rounds",
]
