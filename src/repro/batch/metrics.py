"""Batched per-trial metrics: γ and set-expansion ratios.

These are the measurement-side counterparts of the scalar helpers in
:mod:`repro.graphs.traversal` / :mod:`repro.graphs.ops`, evaluated for all
trials of a mask matrix at once.  Degenerate trials are *defined* rather
than raised (the scalar set helpers raise on empty sets; a batched run
cannot afford one bad row aborting the other T−1): undefined ratios come
back as ``nan`` and all-dead rows as ``0.0``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.traversal import (
    batched_boundary_sizes,
    batched_largest_component_fraction,
)

__all__ = ["batched_gamma", "batched_set_expansion"]


def batched_gamma(
    graph: Graph,
    alive: np.ndarray,
    *,
    edge_alive: Optional[np.ndarray] = None,
    backend: Optional[object] = None,
) -> np.ndarray:
    """``γ`` per trial — largest surviving-component fraction relative to
    the original node count (paper §1.1), shape ``(T,)``.

    Matches the scalar percolation trials exactly: ``0.0`` for ``n = 0``
    or an all-dead row, ``1/n`` when the survivors are all isolated.
    ``backend`` selects the kernel backend (results are identical).
    """
    return batched_largest_component_fraction(
        graph, alive, edge_alive=edge_alive, backend=backend
    )


def batched_set_expansion(
    graph: Graph, masks: np.ndarray, *, mode: str = "node"
) -> np.ndarray:
    """Per-trial expansion ratio of the given sets, shape ``(T,)`` float.

    ``mode="node"``: ``α(S) = |Γ(S)| / |S|`` (``nan`` for an empty row —
    the scalar :func:`~repro.graphs.ops.node_expansion_of_set` raises
    there).  ``mode="edge"``: ``αe(S) = |(S, V∖S)| / min(|S|, |V∖S|)``
    (``nan`` when ``S`` is empty or the whole node set).
    """
    if mode not in ("node", "edge"):
        raise InvalidParameterError(f"mode must be 'node' or 'edge', got {mode!r}")
    masks = np.asarray(masks)
    if masks.dtype != np.bool_ or masks.ndim != 2 or masks.shape[1] != graph.n:
        raise InvalidParameterError(
            f"masks must be a boolean (T, {graph.n}) matrix"
        )
    T, n = masks.shape
    sizes = masks.sum(axis=1, dtype=np.int64)
    out = np.full(T, np.nan, dtype=np.float64)
    if T == 0:
        return out
    if mode == "node":
        boundary = batched_boundary_sizes(graph, masks)
        ok = sizes > 0
        np.divide(boundary, sizes, out=out, where=ok)
        return np.where(ok, out, np.nan)
    # edge mode: count directed slots u→v with u ∈ S, v ∉ S — each cut
    # edge contributes exactly one such slot.
    if graph.indices.size:
        src = graph.index.slot_src
        cut = (masks[:, src] & ~masks[:, graph.indices]).sum(axis=1, dtype=np.int64)
    else:
        cut = np.zeros(T, dtype=np.int64)
    denom = np.minimum(sizes, n - sizes)
    ok = denom > 0
    np.divide(cut, denom, out=out, where=ok)
    return np.where(ok, out, np.nan)
