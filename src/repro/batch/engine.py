"""The batched trial engine: many ``(spec, seed)`` trials, one graph pass.

:func:`run_trials` is the batched counterpart of
:func:`repro.api.engine.run` for the *measure-only* analysis family
(``pruner=None``, ``measure_expansion=False`` — the percolation-style
scenarios behind γ curves and disintegration sweeps).  Instead of
building one induced subgraph per trial and BFS-ing it, the whole trial
set becomes a ``(T, n)`` alive-mask matrix evaluated by the mask-parallel
kernels in :mod:`repro.graphs.traversal`.

Equivalence contract: for every supported spec list,
``run_trials(specs)[i] == repro.api.engine.run(specs[i])`` as
:class:`~repro.api.specs.RunResult` records (equality and
:meth:`~repro.api.specs.RunResult.fingerprint` both exclude wall-clock
timings).  The contract is property-tested in
``tests/batch/test_differential.py``; anything the contract cannot cover
— unregistered fault models, pruning analyses, survivor expansion
estimates — is rejected by :func:`supports` and stays on the scalar path.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

import numpy as np

from ..errors import SpecError
from ..expansion.estimate import ExpansionEstimate
from ..graphs.graph import Graph
from ..graphs.traversal import batched_component_stats, batched_connected_components
from ..api.engine import baseline_expansion, default_epsilon, resolve_graph
from ..api.registry import FAULT_MODELS
from ..api.specs import RunResult, ScenarioSpec
from .faults import MASK_SAMPLERS, batched_fault_masks

__all__ = ["supports", "run_trials"]


def supports(spec: ScenarioSpec) -> bool:
    """Whether the batched engine can execute ``spec`` scalar-equivalently.

    Three conditions, checked syntactically (no graph resolution):

    * no pruner — the prune loop is adaptive per trial and not batchable;
    * no survivor expansion estimate — sweep-cut/Fiedler estimates are
      per-subgraph algorithms;
    * the fault model (if any) has a registered mask sampler
      (:data:`~repro.batch.faults.MASK_SAMPLERS`).
    """
    if not isinstance(spec, ScenarioSpec):
        return False
    if spec.analysis.pruner is not None or spec.analysis.measure_expansion:
        return False
    if spec.fault is None:
        return True
    return spec.fault.model in MASK_SAMPLERS


def _check_homogeneous(specs: List[ScenarioSpec]) -> ScenarioSpec:
    head = specs[0]
    for spec in specs:
        if not isinstance(spec, ScenarioSpec):
            raise SpecError(
                f"run_trials takes ScenarioSpecs, got {type(spec).__name__}"
            )
        if (
            spec.graph != head.graph
            or spec.fault != head.fault
            or spec.analysis != head.analysis
        ):
            raise SpecError(
                "run_trials needs trials sharing one (graph, fault, analysis) "
                "— only seeds and labels may vary across the batch"
            )
    if not supports(head):
        raise SpecError(
            "scenario is not batchable (needs pruner=None, "
            "measure_expansion=False and a mask-sampler fault model); "
            "use the scalar engine"
        )
    return head


def run_trials(
    specs: List[ScenarioSpec],
    *,
    baseline: Optional[ExpansionEstimate] = None,
    graph: Optional[Graph] = None,
) -> List[RunResult]:
    """Execute homogeneous trials as one batched evaluation.

    ``specs`` must share graph/fault/analysis and differ only in ``seed``
    (and ``label``); pass ``baseline`` (the shared fault-free expansion
    estimate) and/or ``graph`` to skip re-resolving them — the session
    layer supplies ``baseline`` from its cache and lets the (cheap,
    once-per-point) graph resolution happen here.  Results come back in
    input order.
    """
    specs = list(specs)
    if not specs:
        return []
    head = _check_homogeneous(specs)
    analysis = head.analysis
    timings = {"graph": 0.0, "baseline": 0.0, "fault": 0.0, "analyze": 0.0}

    t0 = time.perf_counter()
    if graph is None:
        graph, _raw = resolve_graph(head.graph)
    timings["graph"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if baseline is None:
        baseline = baseline_expansion(
            graph, analysis.mode, exact_threshold=analysis.exact_threshold
        )
    timings["baseline"] = time.perf_counter() - t0

    epsilon = analysis.epsilon
    if epsilon is None:
        epsilon = default_epsilon(graph, analysis.mode)

    t0 = time.perf_counter()
    n = graph.n
    T = len(specs)
    if head.fault is None:
        fault_masks = np.zeros((T, n), dtype=bool)
        kind = "none"
    else:
        entry = FAULT_MODELS.get(head.fault.model)
        params = head.fault.params
        if entry.seeded and "seed" not in params:
            seeds: List[Any] = [spec.seed for spec in specs]
        else:
            # the model pins its own seed (or takes none): every trial
            # replays the same draw, exactly like T scalar engine calls
            seeds = [params.get("seed")] * T
        fault_masks, kind = batched_fault_masks(
            graph, head.fault.model, params, seeds
        )
    alive = ~fault_masks
    timings["fault"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    labels = batched_connected_components(graph, alive)
    n_components, largest = batched_component_stats(labels)
    n_alive = alive.sum(axis=1, dtype=np.int64)
    timings["analyze"] = time.perf_counter() - t0

    # amortise the shared wall-clock across the records (provenance only —
    # timings are excluded from fingerprints and equality)
    shared = {k: v / T for k, v in timings.items()}
    results: List[RunResult] = []
    baseline_value = float(baseline.value)
    baseline_exact = bool(baseline.exact)
    for i, spec in enumerate(specs):
        f = int(n - n_alive[i])
        surviving = graph.original_ids[alive[i]]
        results.append(
            RunResult(
                spec=spec,
                spec_hash=spec.hash(),
                seed=spec.seed,
                label=spec.label,
                graph_name=graph.name,
                n_original=n,
                mode=analysis.mode,
                fault_kind=kind,
                f=f,
                fault_fraction=float(f / n if n else 0.0),
                faulty_components=int(n_components[i]),
                largest_faulty_component=int(largest[i]),
                n_surviving=int(n_alive[i]),
                surviving_fraction=float(n_alive[i] / n if n else 0.0),
                n_culled_sets=0,
                prune_iterations=0,
                baseline_expansion=baseline_value,
                baseline_exact=baseline_exact,
                surviving_expansion=None,
                expansion_retention=None,
                surviving_nodes=tuple(surviving.tolist()),
                epsilon=float(epsilon),
                timings=dict(shared),
            )
        )
    return results
