"""The batched trial engine: many ``(spec, seed)`` trials, one graph pass.

:func:`run_trials` is the batched counterpart of
:func:`repro.api.engine.run` for the *measure-only* analysis family
(``pruner=None``, ``measure_expansion=False`` — the percolation-style
scenarios behind γ curves and disintegration sweeps).  Instead of
building one induced subgraph per trial and BFS-ing it, the whole trial
set becomes a ``(T, n)`` alive-mask matrix evaluated by the mask-parallel
kernels in :mod:`repro.graphs.traversal`.

Equivalence contract: for every supported spec list,
``run_trials(specs)[i] == repro.api.engine.run(specs[i])`` as
:class:`~repro.api.specs.RunResult` records (equality and
:meth:`~repro.api.specs.RunResult.fingerprint` both exclude wall-clock
timings).  The contract is property-tested in
``tests/batch/test_differential.py``; anything the contract cannot cover
— unregistered fault models, pruning analyses, survivor expansion
estimates — is rejected by :func:`supports` and stays on the scalar path.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

import numpy as np

from ..errors import SpecError
from ..expansion.estimate import ExpansionEstimate
from ..graphs.graph import Graph
from ..graphs.traversal import batched_component_stats, batched_connected_components
from ..api.engine import baseline_expansion, default_epsilon, resolve_graph
from ..api.registry import FAULT_MODELS
from ..api.specs import RunResult, ScenarioSpec, canonical_json
from .faults import MASK_SAMPLERS, batched_fault_masks

__all__ = ["supports", "stack_key", "run_trials", "run_points"]

# Soft cap on the bytes the per-round (T, 2m) gather buffer of one
# stacked kernel call may take.  run_points packs whole point-groups into
# super-batches under this budget; a single oversized group still runs in
# one call (matching run_trials' historical behaviour).
_STACK_BUDGET_BYTES = 256 << 20


def supports(spec: ScenarioSpec) -> bool:
    """Whether the batched engine can execute ``spec`` scalar-equivalently.

    Three conditions, checked syntactically (no graph resolution):

    * no pruner — the prune loop is adaptive per trial and not batchable;
    * no survivor expansion estimate — sweep-cut/Fiedler estimates are
      per-subgraph algorithms;
    * the fault model (if any) has a registered mask sampler
      (:data:`~repro.batch.faults.MASK_SAMPLERS`).
    """
    if not isinstance(spec, ScenarioSpec):
        return False
    if spec.analysis.pruner is not None or spec.analysis.measure_expansion:
        return False
    if spec.fault is None:
        return True
    return spec.fault.model in MASK_SAMPLERS


def stack_key(spec: ScenarioSpec) -> Optional[str]:
    """Cross-point stacking compatibility key, or ``None`` if unbatchable.

    Two grid points whose specs return the same key share a graph and an
    analysis configuration, so their trials can be evaluated as rows of
    one stacked alive-mask tensor by :func:`run_points` (fault models and
    parameters may differ — masks are sampled per point).  The key is the
    canonical JSON of the (graph, analysis) sub-specs.
    """
    if not supports(spec):
        return None
    return canonical_json(
        {"graph": spec.graph.to_dict(), "analysis": spec.analysis.to_dict()}
    )


def _check_homogeneous(specs: List[ScenarioSpec]) -> ScenarioSpec:
    head = specs[0]
    for spec in specs:
        if not isinstance(spec, ScenarioSpec):
            raise SpecError(
                f"run_trials takes ScenarioSpecs, got {type(spec).__name__}"
            )
        if (
            spec.graph != head.graph
            or spec.fault != head.fault
            or spec.analysis != head.analysis
        ):
            raise SpecError(
                "run_trials needs trials sharing one (graph, fault, analysis) "
                "— only seeds and labels may vary across the batch"
            )
    if not supports(head):
        raise SpecError(
            "scenario is not batchable (needs pruner=None, "
            "measure_expansion=False and a mask-sampler fault model); "
            "use the scalar engine"
        )
    return head


def run_trials(
    specs: List[ScenarioSpec],
    *,
    baseline: Optional[ExpansionEstimate] = None,
    graph: Optional[Graph] = None,
    backend: Optional[object] = None,
) -> List[RunResult]:
    """Execute homogeneous trials as one batched evaluation.

    ``specs`` must share graph/fault/analysis and differ only in ``seed``
    (and ``label``); pass ``baseline`` (the shared fault-free expansion
    estimate) and/or ``graph`` to skip re-resolving them — the session
    layer supplies ``baseline`` from its cache and lets the (cheap,
    once-per-point) graph resolution happen here.  Results come back in
    input order.

    This is the single-point special case of :func:`run_points`.
    """
    specs = list(specs)
    if not specs:
        return []
    return run_points([specs], baseline=baseline, graph=graph, backend=backend)[0]


def _group_masks(
    graph: Graph, head: ScenarioSpec, specs: List[ScenarioSpec]
) -> Tuple[np.ndarray, str]:
    """Fault masks for one homogeneous group, exactly as T scalar runs."""
    T = len(specs)
    if head.fault is None:
        return np.zeros((T, graph.n), dtype=bool), "none"
    entry = FAULT_MODELS.get(head.fault.model)
    params = head.fault.params
    if entry.seeded and "seed" not in params:
        seeds: List[Any] = [spec.seed for spec in specs]
    else:
        # the model pins its own seed (or takes none): every trial
        # replays the same draw, exactly like T scalar engine calls
        seeds = [params.get("seed")] * T
    return batched_fault_masks(graph, head.fault.model, params, seeds)


def run_points(
    groups: List[List[ScenarioSpec]],
    *,
    baseline: Optional[ExpansionEstimate] = None,
    graph: Optional[Graph] = None,
    backend: Optional[object] = None,
) -> List[List[RunResult]]:
    """Execute several grid points sharing one graph as stacked batches.

    ``groups`` holds one non-empty spec list per grid point.  Every group
    must be internally homogeneous (the :func:`run_trials` contract) and
    all groups must agree on ``graph`` and ``analysis`` — i.e. share a
    :func:`stack_key`; fault models and parameters may differ per group.

    The graph is resolved once, the baseline computed once, and all
    groups' trials are evaluated as rows of stacked ``(ΣT, n)`` alive-mask
    tensors (packed under a fixed memory budget), so the per-call kernel
    setup and graph resolution are paid once per *graph* instead of once
    per *point*.  Masks are sampled per group from the same per-spec seeds
    the per-point path uses, and the kernel is row-independent, so every
    record — and therefore every sweep fingerprint — is bit-identical to
    running :func:`run_trials` per point.

    Returns one result list per group, in input order.
    """
    groups = [list(g) for g in groups]
    if not groups:
        return []
    heads = []
    for g in groups:
        if not g:
            raise SpecError("run_points groups must be non-empty")
        heads.append(_check_homogeneous(g))
    head = heads[0]
    for other in heads[1:]:
        if other.graph != head.graph or other.analysis != head.analysis:
            raise SpecError(
                "run_points needs grid points sharing one (graph, analysis) "
                "— only fault models, seeds and labels may vary across points"
            )
    analysis = head.analysis
    timings = {"graph": 0.0, "baseline": 0.0, "fault": 0.0, "analyze": 0.0}

    t0 = time.perf_counter()
    if graph is None:
        graph, _raw = resolve_graph(head.graph)
    timings["graph"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if baseline is None:
        baseline = baseline_expansion(
            graph, analysis.mode, exact_threshold=analysis.exact_threshold
        )
    timings["baseline"] = time.perf_counter() - t0

    epsilon = analysis.epsilon
    if epsilon is None:
        epsilon = default_epsilon(graph, analysis.mode)

    n = graph.n
    # Pack whole groups into super-batches whose stacked gather buffer
    # stays under budget; a single oversized group runs alone (one call,
    # like run_trials always did).
    bytes_per_row = 4 * (graph.indices.shape[0] + 1)
    cap_rows = max(1, _STACK_BUDGET_BYTES // max(1, bytes_per_row))
    batches: List[List[int]] = []
    current: List[int] = []
    current_rows = 0
    for gi, g in enumerate(groups):
        if current and current_rows + len(g) > cap_rows:
            batches.append(current)
            current, current_rows = [], 0
        current.append(gi)
        current_rows += len(g)
    if current:
        batches.append(current)

    out: List[List[RunResult]] = [[] for _ in groups]
    baseline_value = float(baseline.value)
    baseline_exact = bool(baseline.exact)
    total_T = sum(len(g) for g in groups)
    # amortise the shared wall-clock across the records (provenance only —
    # timings are excluded from fingerprints and equality): graph/baseline
    # across every trial, fault/analyze across each super-batch's rows
    for batch in batches:
        t0 = time.perf_counter()
        masks = []
        kinds = []
        for gi in batch:
            fault_masks, kind = _group_masks(graph, heads[gi], groups[gi])
            masks.append(fault_masks)
            kinds.append(kind)
        alive = ~np.vstack(masks) if len(masks) > 1 else ~masks[0]
        fault_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        labels = batched_connected_components(graph, alive, backend=backend)
        n_components, largest = batched_component_stats(labels)
        n_alive = alive.sum(axis=1, dtype=np.int64)
        analyze_s = time.perf_counter() - t0

        batch_T = alive.shape[0]
        shared = {
            "graph": timings["graph"] / total_T,
            "baseline": timings["baseline"] / total_T,
            "fault": fault_s / batch_T,
            "analyze": analyze_s / batch_T,
        }
        row = 0
        for gi, kind in zip(batch, kinds):
            specs = groups[gi]
            for spec in specs:
                i = row
                row += 1
                f = int(n - n_alive[i])
                surviving = graph.original_ids[alive[i]]
                out[gi].append(
                    RunResult(
                        spec=spec,
                        spec_hash=spec.hash(),
                        seed=spec.seed,
                        label=spec.label,
                        graph_name=graph.name,
                        n_original=n,
                        mode=analysis.mode,
                        fault_kind=kind,
                        f=f,
                        fault_fraction=float(f / n if n else 0.0),
                        faulty_components=int(n_components[i]),
                        largest_faulty_component=int(largest[i]),
                        n_surviving=int(n_alive[i]),
                        surviving_fraction=float(n_alive[i] / n if n else 0.0),
                        n_culled_sets=0,
                        prune_iterations=0,
                        baseline_expansion=baseline_value,
                        baseline_exact=baseline_exact,
                        surviving_expansion=None,
                        expansion_retention=None,
                        surviving_nodes=tuple(surviving.tolist()),
                        epsilon=float(epsilon),
                        timings=dict(shared),
                    )
                )
    return out
