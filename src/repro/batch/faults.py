"""Vectorised fault injection: per-trial fault masks without subgraphs.

The scalar engine materialises one induced subgraph per trial just to count
components on it.  The batched engine skips that entirely: a *mask sampler*
reproduces a fault model's node-fault draws for ``T`` seeds as one
``(T, n)`` boolean matrix, and the mask-parallel traversal kernels consume
the matrix directly.

Bit-identical by construction: each trial's row is drawn from the *same*
:class:`numpy.random.Generator` stream the scalar model would have used for
that ``(spec, seed)`` pair — the per-trial draw loop is kept (independent
streams cannot be fused), but it is a loop of single vectorised
``rng.random(n)`` calls, which is a negligible slice of a trial's scalar
cost.  The expensive parts — subgraph construction and component
traversal — are what the mask matrix eliminates.

Only fault models registered here are batchable
(:data:`MASK_SAMPLERS`); :func:`repro.batch.engine.supports` falls back to
the scalar path for everything else.  Third-party vectorisable models plug
in with :func:`register_mask_sampler`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..errors import SpecError
from ..graphs.graph import Graph
from ..util.rng import SeedLike

__all__ = ["MASK_SAMPLERS", "register_mask_sampler", "batched_fault_masks"]

#: ``fn(graph, params, seeds) -> (fault_masks, kind)`` where ``fault_masks``
#: is a ``(len(seeds), n)`` boolean matrix (True = the node failed) and
#: ``kind`` is the provenance tag the scalar model would stamp on its
#: :class:`~repro.faults.model.FaultScenario`.
MaskSampler = Callable[[Graph, Dict, Sequence[SeedLike]], tuple]

MASK_SAMPLERS: Dict[str, MaskSampler] = {}


def register_mask_sampler(name: str):
    """Register the batched mask sampler of a fault model (decorator).

    The sampler must replay the scalar model's RNG consumption exactly:
    same stream per seed, same draw order, same post-processing — that is
    what makes the batched engine's results substitutable for scalar ones.
    """

    def _add(fn: MaskSampler) -> MaskSampler:
        MASK_SAMPLERS[name] = fn
        return fn

    return _add


@register_mask_sampler("random_node")
def _random_node_masks(
    graph: Graph, params: Dict, seeds: Sequence[SeedLike]
) -> tuple:
    """Batched twin of :func:`repro.faults.random_faults.random_node_faults`.

    Row ``i`` *is* ``sample_fault_mask(n, p, seeds[i], protected=...)`` —
    the scalar model's own draw helper, called once per seed — so
    equivalence holds by construction, not by a parallel implementation
    that could drift.
    """
    from ..faults.random_faults import sample_fault_mask

    if "p" not in params:
        raise SpecError("fault model 'random_node': missing required param 'p'")
    p = params["p"]
    protected: Optional[Sequence[int]] = params.get("protected")
    masks = np.empty((len(seeds), graph.n), dtype=bool)
    for i, seed in enumerate(seeds):
        masks[i] = sample_fault_mask(graph.n, p, seed, protected=protected)
    return masks, f"random(p={p:g})"


@register_mask_sampler("cascade")
def _cascade_masks(graph: Graph, params: Dict, seeds: Sequence[SeedLike]) -> tuple:
    """Batched twin of :func:`repro.faults.cascade.load_cascade`.

    Seed-node draws replay the scalar model's RNG stream per trial (one
    ``rng.choice`` each, exactly as the scalar model consumes it); the
    cascade itself runs as one ``(T, n)`` fixpoint iteration in
    :func:`repro.batch.rounds.cascade_rounds`, whose rows are
    bit-identical to the scalar reference loop.
    """
    from ..faults.cascade import check_cascade_params
    from ..util.rng import as_generator
    from .rounds import cascade_rounds

    if "alpha" not in params:
        raise SpecError("fault model 'cascade': missing required param 'alpha'")
    alpha, n_seeds = check_cascade_params(
        graph.n, params["alpha"], params.get("n_seeds", 1)
    )
    seed_masks = np.zeros((len(seeds), graph.n), dtype=bool)
    for i, seed in enumerate(seeds):
        rng = as_generator(seed)
        picks = rng.choice(graph.n, size=n_seeds, replace=False).astype(np.int64)
        seed_masks[i, picks] = True
    failed, _rounds = cascade_rounds(graph, seed_masks, alpha)
    return failed, f"cascade(alpha={alpha:g},seeds={n_seeds})"


def batched_fault_masks(
    graph: Graph, model: str, params: Dict, seeds: Sequence[SeedLike]
) -> tuple:
    """Fault masks for ``T`` trials of one fault model: ``(masks, kind)``.

    ``masks`` is ``(len(seeds), n)`` boolean, True = failed.  Raises
    :class:`~repro.errors.SpecError` for models without a registered
    sampler — callers gate on :data:`MASK_SAMPLERS` membership first
    (that is what :func:`repro.batch.engine.supports` does).
    """
    sampler = MASK_SAMPLERS.get(model)
    if sampler is None:
        raise SpecError(
            f"fault model {model!r} has no batched mask sampler; "
            f"batchable models: {sorted(MASK_SAMPLERS)}"
        )
    masks, kind = sampler(graph, dict(params), seeds)
    masks = np.asarray(masks)
    if masks.shape != (len(seeds), graph.n) or masks.dtype != np.bool_:
        raise SpecError(
            f"mask sampler for {model!r} returned shape {masks.shape} "
            f"dtype {masks.dtype}; expected boolean ({len(seeds)}, {graph.n})"
        )
    return masks, kind
