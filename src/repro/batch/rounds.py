"""Sequential-round mask kernels: iterate (T, n) updates to fixpoint.

The batched engine's existing kernels are single-shot — one gather/reduce
pass answers the whole question (components, distances, boundaries).
Cascading failures are different: each round's fault set depends on the
loads the previous round redistributed, so the kernel must *iterate*.
:func:`run_rounds` is the generic driver — it applies a caller-supplied
per-round step to a ``(T, n)`` boolean matrix until no row changes,
tracking per-row round counts — and :func:`cascade_rounds` instantiates
it for the load-redistribution cascade of
:mod:`repro.faults.cascade`.

Bit-identity contract: row ``t`` of :func:`cascade_rounds` equals
:func:`repro.faults.cascade.cascade_fixpoint` on seed row ``t`` — same
per-round operations on the cached :class:`~repro.graphs.index.GraphIndex`
views, and the same padded ``np.add.reduceat`` over CSR segments (numpy's
segment reduction is bitwise identical for a 1-D row and a 2-D ``axis=1``
batch), so float summation order matches exactly.  Rows are independent,
so stacking trials never changes any row's trajectory; rows that reach
their fixpoint early pass through later rounds unchanged (their shares
are all zero).  The contract is enforced by
``tests/batch/test_cascade_differential.py``.

The kernels are pure numpy and row-independent, so they behave the same
under every execution backend; backend selection only affects the
component-labelling kernels that consume the masks afterwards.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError, SolverError
from ..graphs.graph import Graph

__all__ = ["run_rounds", "cascade_rounds"]


def _check_mask_matrix(graph: Graph, masks: np.ndarray) -> np.ndarray:
    """Validate a ``(T, n)`` boolean mask matrix (loudly, like the
    single-shot kernels: NaN/negative entries arrive as a non-bool dtype
    and are rejected rather than silently truthified)."""
    masks = np.asarray(masks)
    if masks.dtype != np.bool_:
        raise InvalidParameterError(
            f"mask matrix must be boolean, got dtype {masks.dtype}"
        )
    if masks.ndim != 2 or masks.shape[1] != graph.n:
        raise InvalidParameterError(
            f"mask matrix must have shape (T, {graph.n}), got {masks.shape}"
        )
    return masks


def run_rounds(
    masks: np.ndarray,
    step: Callable[[np.ndarray], np.ndarray],
    *,
    max_rounds: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drive a per-round ``(T, n)`` mask update to fixpoint.

    ``step`` maps the current boolean matrix to the next one; iteration
    stops when an application leaves every row unchanged.  Returns
    ``(final_masks, rounds)`` where ``rounds[t]`` counts the applications
    that changed row ``t``.  ``step`` must be monotone per row (a row at
    its fixpoint stays there), which is what makes per-row counts
    well-defined while rows finish at different times.

    Raises :class:`~repro.errors.SolverError` after ``max_rounds``
    changing applications without convergence (``None`` = no cap).
    """
    masks = np.asarray(masks)
    if masks.ndim != 2:
        raise InvalidParameterError(
            f"run_rounds needs a (T, n) matrix, got shape {masks.shape}"
        )
    rounds = np.zeros(masks.shape[0], dtype=np.int64)
    applied = 0
    while True:
        new = step(masks)
        changed = (new != masks).any(axis=1)
        if not changed.any():
            return new, rounds
        rounds += changed
        masks = new
        applied += 1
        if max_rounds is not None and applied >= max_rounds:
            raise SolverError(
                f"run_rounds did not converge within {max_rounds} rounds"
            )


def cascade_rounds(
    graph: Graph, seed_masks: np.ndarray, alpha: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched load-redistribution cascades: ``T`` trials, one graph pass
    per round.

    ``seed_masks`` is ``(T, n)`` boolean (True = initially failed); the
    return is ``(failed_masks, rounds)`` with ``failed_masks[t]`` the
    fixpoint fault set of trial ``t`` and ``rounds[t]`` its recruiting
    round count — both bit-identical to
    :func:`repro.faults.cascade.cascade_fixpoint` per row.
    """
    seed_masks = _check_mask_matrix(graph, seed_masks)
    alpha = float(alpha)
    if not np.isfinite(alpha) or alpha < 0.0:
        raise InvalidParameterError(
            f"alpha must be a finite float >= 0, got {alpha!r}"
        )
    T, n = seed_masks.shape
    if T == 0 or n == 0:
        return seed_masks.copy(), np.zeros(T, dtype=np.int64)
    idx = graph.index
    indices = graph.indices
    starts = idx.starts
    m2 = indices.shape[0]
    degrees = idx.degrees.astype(np.float64)
    capacity = (1.0 + alpha) * degrees
    load = np.broadcast_to(degrees, (T, n)).copy()
    # closure state: which nodes failed in the previous round (they are
    # the only givers this round) and each trial's current load vector
    state = {"newly": seed_masks.copy(), "load": load}
    buf = np.zeros((T, m2 + 1), dtype=np.float64)

    def _rows(values: np.ndarray) -> np.ndarray:
        buf[:, :m2] = values
        out = np.add.reduceat(buf, starts, axis=1)
        if idx.has_isolated:
            out[:, idx.isolated] = 0
        return out

    def _step(failed: np.ndarray) -> np.ndarray:
        newly, load = state["newly"], state["load"]
        alive = ~failed
        alive_deg = _rows(alive[:, indices])
        denom = np.where(alive_deg > 0, alive_deg, 1.0)
        share = np.where(newly & (alive_deg > 0), load / denom, 0.0)
        incoming = _rows(share[:, indices])
        load = np.where(alive, load + incoming, load)
        newly = alive & (load > capacity)
        state["newly"], state["load"] = newly, load
        return failed | newly

    # each changing round recruits >= 1 node in some row, so n + 1
    # applications always suffice; exceeding the cap means a kernel bug
    return run_rounds(seed_masks, _step, max_rounds=n + 1)
