"""repro — reproduction of "The Effect of Faults on Network Expansion" (SPAA 2004).

Public API re-exports live here; subpackages remain importable directly for
power users.  See README.md for the architecture overview and DESIGN.md for
the experiment index.
"""

from . import (
    api,
    core,
    embedding,
    expansion,
    faults,
    graphs,
    percolation,
    pruning,
    routing,
    span,
    spectral,
    util,
)
from .core import FaultExpansionAnalyzer, FaultToleranceReport
from .errors import (
    BudgetExceededError,
    InvalidGraphError,
    InvalidParameterError,
    NotConnectedError,
    ReproError,
    SolverError,
)
from .expansion import estimate_edge_expansion, estimate_node_expansion
from .faults import random_node_faults
from .graphs import Graph
from .pruning import prune, prune2
from .span import span_exact, span_sampled

__version__ = "1.0.0"

__all__ = [
    "api",
    "Graph",
    "FaultExpansionAnalyzer",
    "FaultToleranceReport",
    "estimate_node_expansion",
    "estimate_edge_expansion",
    "random_node_faults",
    "prune",
    "prune2",
    "span_exact",
    "span_sampled",
    "core",
    "embedding",
    "expansion",
    "faults",
    "graphs",
    "percolation",
    "pruning",
    "routing",
    "span",
    "spectral",
    "util",
    "ReproError",
    "InvalidGraphError",
    "InvalidParameterError",
    "NotConnectedError",
    "SolverError",
    "BudgetExceededError",
    "__version__",
]
