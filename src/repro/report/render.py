"""Assembly of the human-readable paper report (Markdown + HTML).

Both renderers walk the same structured inputs — the experiment tables,
the manifest, and the figure SVGs — so the two documents always agree;
neither is derived from the other.  Output is deterministic: no
timestamps, no environment-dependent ordering (experiments render in
e1..e11 order, manifest fields sorted).

The Markdown report links figures by relative path (``figures/*.svg``,
next to ``report.md`` in the artifact directory); the HTML report embeds
the SVGs inline so ``report.html`` is fully self-contained.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from .figures import PAPER_FIGURES
from .tables import ExperimentTable, experiment_sort_key, fmt_float, markdown_table

__all__ = ["experiment_order", "render_markdown", "render_html"]


def experiment_order(tables: Mapping[str, ExperimentTable]) -> List[str]:
    """e1..e11 ordering (numeric, not lexicographic)."""
    return sorted(tables, key=experiment_sort_key)


def _figures_for(eid: str, figures: Mapping[str, str]) -> List[str]:
    """Figure file stems that plot experiment ``eid`` (declaration order)."""
    return [
        name for name, (fig_eid, _) in PAPER_FIGURES.items()
        if fig_eid == eid and name in figures
    ]


def _summary_rows(
    tables: Mapping[str, ExperimentTable], manifest: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    rows = []
    for eid in experiment_order(tables):
        table = tables[eid]
        passed, total = table.checks()
        rows.append(
            {
                "id": eid,
                "experiment": table.title,
                "paper": table.paper_section,
                "rows": len(table),
                "checks": f"{passed}/{total}" if total else "—",
                "table": f"[tables/{eid}.json](tables/{eid}.json)",
            }
        )
    return rows


def _config_lines(manifest: Mapping[str, Any]) -> List[str]:
    config = manifest.get("config", {})
    versions = manifest.get("versions", {})
    cfg = ", ".join(f"{k}={config[k]}" for k in sorted(config))
    ver = ", ".join(f"{k} {versions[k]}" for k in sorted(versions))
    return [
        f"*Configuration:* {cfg}.",
        f"*Versions:* {ver}.",
        "*Regenerate:* `python -m repro paper run --out <dir>` "
        "(append `--smoke` for the CI-sized run); two artifact directories "
        "compare with `python -m repro paper diff A B`.",
    ]


def render_markdown(
    tables: Mapping[str, ExperimentTable],
    manifest: Mapping[str, Any],
    figures: Mapping[str, str],
) -> str:
    """The ``report.md`` document."""
    paper = manifest.get("paper", {})
    lines: List[str] = []
    lines.append(f"# Reproduction report — {paper.get('title', 'paper')}")
    lines.append("")
    lines.append(
        f"*{paper.get('authors', '')}* — {paper.get('venue', '')}. "
        "Every table below is regenerated from source by this repository; "
        "`manifest.json` records the spec hashes, seed policies, trial "
        "counts and CI half-widths that make two runs diffable."
    )
    lines.append("")
    lines.extend(_config_lines(manifest))
    lines.append("")
    lines.append("## Summary")
    lines.append("")
    lines.append(
        markdown_table(
            ["id", "experiment", "paper", "rows", "checks", "table"],
            [
                [r["id"], r["experiment"], r["paper"], r["rows"], r["checks"], r["table"]]
                for r in _summary_rows(tables, manifest)
            ],
        )
    )
    lines.append("")
    for eid in experiment_order(tables):
        table = tables[eid]
        lines.append(f"## {eid.upper()} — {table.title}")
        lines.append("")
        if table.paper_section:
            lines.append(f"*Paper:* {table.paper_section}.")
        if table.caption:
            lines.append(f"{table.caption}")
        lines.append("")
        for fig in _figures_for(eid, figures):
            lines.append(f"![{fig}](figures/{fig}.svg)")
            lines.append("")
        if len(table):
            lines.append(table.to_markdown())
        else:
            lines.append("*(no rows)*")
        lines.append("")
        sweeps = [p for p in table.provenance if p.get("kind") == "sweep"]
        graphs = [p for p in table.provenance if p.get("kind") == "graph"]
        prov_bits = []
        if sweeps:
            prov_bits.append(
                "sweeps "
                + ", ".join(
                    f"`{p['hash']}` ({p.get('seed_policy', 'scenario')}, "
                    f"{p.get('trials', '?')}×{p.get('points', '?')})"
                    for p in sweeps
                )
            )
        if graphs:
            prov_bits.append(
                "graphs " + ", ".join(f"`{p['hash']}`" for p in graphs)
            )
        if prov_bits:
            lines.append(f"<sub>Provenance: {'; '.join(prov_bits)}.</sub>")
            lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2rem auto;
       max-width: 62rem; padding: 0 1rem; color: #1a1a2e; }
h1, h2 { color: #16213e; }
h2 { border-bottom: 2px solid #e0e0e8; padding-bottom: 0.3rem;
     margin-top: 2.2rem; }
table { border-collapse: collapse; margin: 0.8rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #d0d0d8; padding: 0.3rem 0.55rem;
         text-align: right; }
th { background: #f0f0f5; }
td:first-child, th:first-child { text-align: left; }
figure { margin: 1rem 0; }
.caption { color: #444455; }
.provenance { color: #777788; font-size: 0.75rem; }
"""


def _html_escape(s: Any) -> str:
    return (
        str(s).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _html_cell(v: Any) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return _html_escape(fmt_float(v))
    return _html_escape(v)


def _html_table(rows: List[Mapping[str, Any]]) -> str:
    if not rows:
        return "<p><em>(no rows)</em></p>"
    headers = list(rows[0].keys())
    parts = ["<table>", "<thead><tr>"]
    parts += [f"<th>{_html_escape(h)}</th>" for h in headers]
    parts.append("</tr></thead>")
    parts.append("<tbody>")
    for row in rows:
        parts.append(
            "<tr>" + "".join(f"<td>{_html_cell(row.get(h, ''))}</td>" for h in headers)
            + "</tr>"
        )
    parts.append("</tbody></table>")
    return "\n".join(parts)


def render_html(
    tables: Mapping[str, ExperimentTable],
    manifest: Mapping[str, Any],
    figures: Mapping[str, str],
) -> str:
    """The self-contained ``report.html`` document (SVGs inlined)."""
    paper = manifest.get("paper", {})
    title = f"Reproduction report — {paper.get('title', 'paper')}"
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append('<html lang="en"><head><meta charset="utf-8">')
    parts.append(f"<title>{_html_escape(title)}</title>")
    parts.append(f"<style>{_HTML_STYLE}</style></head><body>")
    parts.append(f"<h1>{_html_escape(title)}</h1>")
    parts.append(
        f"<p><em>{_html_escape(paper.get('authors', ''))}</em> — "
        f"{_html_escape(paper.get('venue', ''))}.</p>"
    )
    for line in _config_lines(manifest):
        parts.append(
            f'<p class="caption">{_html_escape(line).replace("`", "")}</p>'
        )
    parts.append("<h2>Summary</h2>")
    summary = [
        {k: v for k, v in row.items() if k != "table"}
        for row in _summary_rows(tables, manifest)
    ]
    parts.append(_html_table(summary))
    for eid in experiment_order(tables):
        table = tables[eid]
        parts.append(f"<h2>{eid.upper()} — {_html_escape(table.title)}</h2>")
        if table.paper_section:
            parts.append(
                f'<p class="caption"><em>Paper:</em> '
                f"{_html_escape(table.paper_section)}.</p>"
            )
        if table.caption:
            parts.append(f'<p class="caption">{_html_escape(table.caption)}</p>')
        for fig in _figures_for(eid, figures):
            parts.append(f"<figure>{figures[fig]}</figure>")
        parts.append(_html_table(list(table.rows)))
        sweeps = [p for p in table.provenance if p.get("kind") == "sweep"]
        if sweeps:
            hashes = ", ".join(str(p["hash"]) for p in sweeps)
            parts.append(
                f'<p class="provenance">sweep hashes: {_html_escape(hashes)}</p>'
            )
    parts.append("</body></html>")
    return "\n".join(parts)
