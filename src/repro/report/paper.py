"""One-command paper artifact: run the e1–e14 suite, emit a report directory.

:func:`run_paper` drives every experiment through **one shared**
:class:`~repro.api.session.Session` whose store makes the whole pipeline
incremental at two granularities:

* *scenario granularity* — the sweep-based experiments resume per trial
  through the session's result store (PR 2/3 machinery);
* *table granularity* — each finished
  :class:`~repro.report.tables.ExperimentTable` is cached in the store's
  ``tables.jsonl`` keyed by ``(experiment, runner kwargs, table schema)``,
  which also covers the experiments whose measurement loops fall outside
  the scenario engine (E7/E8/E10).

A rerun against a warm store therefore performs **zero engine calls and
zero measurement loops**: every table is served from cache and the report,
figures and manifest re-render byte-identically (wall-clock data lives in
``timings.json``, outside the manifest).

The artifact directory layout::

    report.md           human-readable report (figures linked)
    report.html         self-contained twin (figures inlined)
    figures/*.svg       deterministic SVG charts
    tables/*.json       machine-readable ExperimentTables
    manifest.json       diffable provenance (spec hashes, CIs, versions)
    timings.json        wall-clock per experiment (never diffed)
    store/              default result store (when none is supplied)

``python -m repro paper run|render|diff`` is the CLI face of this module.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from .figures import PAPER_FIGURES, save_figure
from .manifest import (
    ManifestDiff,
    build_manifest,
    diff_manifests,
    load_manifest,
    write_manifest,
)
from .render import render_html, render_markdown
from .tables import ExperimentTable

__all__ = [
    "SMOKE_KWARGS",
    "PaperConfig",
    "PaperRun",
    "run_paper",
    "render_paper",
    "diff_paper",
]

#: Bumped when the cached-table layout changes (invalidates tables.jsonl).
TABLE_SCHEMA = 1

#: Reduced runner kwargs for ``--smoke``: the same shapes at CI-friendly
#: sizes (the full suite uses every runner's defaults).
SMOKE_KWARGS: Dict[str, Dict[str, Any]] = {
    "e5": {"n_trials": 8},
    "e6": {"n_trials": 4},
    "e7": {"n_samples": 8},
    "e8": {"n_trials": 4, "tol": 0.08},
    "e10": {"n_samples": 6},
    "e11": {"n_trials": 2},
    "e12": {"n_trials": 4},
    "e13": {"n_trials": 4},
    "e14": {"n_trials": 4},
}


def _all_experiment_ids() -> Tuple[str, ...]:
    from ..core.experiments import ALL_EXPERIMENTS

    return tuple(ALL_EXPERIMENTS)


@dataclass(frozen=True)
class PaperConfig:
    """What to run: seed, scale, smoke sizing, experiment subset.

    ``workers`` and ``batch`` affect scheduling/execution strategy only —
    results are invariant to both by the determinism contract (batched
    trials are bit-identical to scalar ones) — so neither is part of the
    manifest config and neither changes table cache keys.
    """

    seed: int = 0
    scale: int = 1
    smoke: bool = False
    experiments: Tuple[str, ...] = ()
    workers: Optional[int] = 1
    batch: Any = "auto"

    def __post_init__(self) -> None:
        all_ids = _all_experiment_ids()
        wanted = tuple(self.experiments) or all_ids
        unknown = [e for e in wanted if e not in all_ids]
        if unknown:
            raise ValueError(f"unknown experiment id(s): {', '.join(unknown)}")
        object.__setattr__(self, "experiments", wanted)
        if not (self.batch is True or self.batch is False or self.batch == "auto"):
            raise ValueError(
                f"batch must be 'auto', True or False, got {self.batch!r}"
            )

    def runner_kwargs(self, eid: str) -> Dict[str, Any]:
        """The kwargs one experiment runner is invoked with (cache-keyed)."""
        kwargs: Dict[str, Any] = {"seed": self.seed, "scale": self.scale}
        if self.smoke:
            kwargs.update(SMOKE_KWARGS.get(eid, {}))
        return kwargs

    def manifest_config(self) -> Dict[str, Any]:
        """The config section of the manifest (no wall-clock, no workers)."""
        return {
            "seed": self.seed,
            "scale": self.scale,
            "smoke": self.smoke,
            "experiments": list(self.experiments),
        }


def _runner_code_hash(eid: str) -> str:
    """Content hash of the runner's source plus the experiments module —
    part of the table cache key, so editing an experiment (or its shared
    helpers/metadata in :mod:`repro.core.experiments`) invalidates cached
    tables instead of silently serving numbers the old code computed.

    Deeper measurement code (percolation/span/engine internals) is *not*
    hashed — like every store entry, a cached table assumes the library
    below the experiment layer is unchanged; after such changes run with
    ``--refresh`` (the same contract the scenario result cache has always
    had)."""
    import inspect

    from ..core import experiments as _experiments

    try:
        runner_src = inspect.getsource(_experiments.ALL_EXPERIMENTS[eid])
        module_src = inspect.getsource(_experiments)
    except (OSError, TypeError):  # pragma: no cover - frozen/interactive envs
        runner_src = module_src = ""
    return hashlib.sha256(
        (runner_src + "\n" + module_src).encode()
    ).hexdigest()[:16]


def table_cache_key(eid: str, kwargs: Mapping[str, Any]) -> str:
    """Store key of one cached table: experiment × runner kwargs × table
    schema × runner code hash (see :func:`_runner_code_hash`)."""
    payload = {
        "experiment": eid,
        "kwargs": dict(kwargs),
        "table_schema": TABLE_SCHEMA,
        "code": _runner_code_hash(eid),
    }
    return "paper:" + hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()[:16]


@dataclass
class PaperRun:
    """Everything one :func:`run_paper` invocation produced."""

    config: PaperConfig
    out: Path
    tables: Dict[str, ExperimentTable]
    manifest: Dict[str, Any]
    #: Tables served from the store vs freshly computed.
    table_hits: int = 0
    table_misses: int = 0
    #: Scenario-level session counters (engine calls = session misses).
    scenario_hits: int = 0
    scenario_misses: int = 0
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def engine_calls(self) -> int:
        return self.scenario_misses


def _write_artifact(
    tables: Dict[str, ExperimentTable],
    config: PaperConfig,
    out: Path,
) -> Dict[str, Any]:
    """Render tables → figures → reports → manifest into ``out``."""
    out.mkdir(parents=True, exist_ok=True)
    tables_dir = out / "tables"
    figures_dir = out / "figures"
    tables_dir.mkdir(exist_ok=True)
    figures_dir.mkdir(exist_ok=True)
    for eid, table in tables.items():
        # No sort_keys: column order is part of the table (deterministic by
        # construction) and must survive the JSON round-trip for
        # ``paper render`` to reproduce the reports byte-for-byte.
        (tables_dir / f"{eid}.json").write_text(
            table.to_json(indent=2) + "\n", encoding="utf-8"
        )
    # Drop leftovers from a previous run with a different experiment set —
    # the artifact directory must describe exactly this run, or a later
    # `paper render`/`paper diff` would resurrect experiments it never ran.
    for stale in (tables_dir).glob("*.json"):
        if stale.stem not in tables:
            stale.unlink()
    figures: Dict[str, str] = {}
    for name, (fig_eid, builder) in PAPER_FIGURES.items():
        table = tables.get(fig_eid)
        if table is None or not len(table):
            continue
        svg = builder(table)
        figures[name] = svg
        save_figure(svg, figures_dir / f"{name}.svg")
    for stale in figures_dir.glob("*.*"):
        if stale.stem not in figures:
            stale.unlink()
    manifest = build_manifest(tables, config.manifest_config(), figures=figures)
    (out / "report.md").write_text(
        render_markdown(tables, manifest, figures) + "\n", encoding="utf-8"
    )
    (out / "report.html").write_text(
        render_html(tables, manifest, figures) + "\n", encoding="utf-8"
    )
    write_manifest(manifest, out / "manifest.json")
    return manifest


def run_paper(
    config: PaperConfig,
    out: Union[str, Path],
    *,
    store: Union[None, str, Path] = None,
    refresh: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> PaperRun:
    """Run the configured experiment suite and write the artifact directory.

    ``store`` defaults to ``<out>/store`` so that re-invoking with the same
    ``out`` is warm by construction.  ``refresh`` forces recomputation
    (results are still written through to the store).
    """
    from ..api.session import Session
    from ..core.experiments import ALL_EXPERIMENTS

    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    store_path = Path(store) if store is not None else out / "store"
    session = Session(store=str(store_path), workers=config.workers,
                      refresh=refresh, batch=config.batch)
    say = progress or (lambda _msg: None)
    run = PaperRun(config=config, out=out, tables={}, manifest={})
    for eid in config.experiments:
        kwargs = config.runner_kwargs(eid)
        key = table_cache_key(eid, kwargs)
        cached = None if refresh else session.store.get_table(key)
        t0 = time.perf_counter()
        table = None
        if cached is not None:
            try:
                table = ExperimentTable.from_dict(cached)
            except Exception:
                # A parseable-but-malformed payload is a cache miss, same
                # as the store's contract for its other entry kinds.
                table = None
        if table is not None:
            run.table_hits += 1
            say(f"{eid}: table served from store ({key})")
        else:
            runner = ALL_EXPERIMENTS[eid]
            table = runner(session=session, **kwargs)
            session.store.put_table(key, table.to_dict())
            run.table_misses += 1
            say(f"{eid}: computed {len(table)} row(s) "
                f"({time.perf_counter() - t0:.1f}s)")
        run.tables[eid] = table
        run.timings[eid] = round(time.perf_counter() - t0, 3)
    run.scenario_hits = session.hits
    run.scenario_misses = session.misses
    run.manifest = _write_artifact(run.tables, config, out)
    # Wall-clock provenance lives *outside* the manifest so identical runs
    # stay byte-identical where it matters.
    (out / "timings.json").write_text(
        json.dumps(
            {"experiments": run.timings,
             "total": round(sum(run.timings.values()), 3)},
            indent=2, sort_keys=True,
        ) + "\n",
        encoding="utf-8",
    )
    return run


def _load_artifact(out: Union[str, Path]) -> Tuple[Dict[str, Any], Dict[str, ExperimentTable]]:
    out = Path(out)
    manifest = load_manifest(out / "manifest.json")
    tables: Dict[str, ExperimentTable] = {}
    for path in sorted((out / "tables").glob("*.json")):
        table = ExperimentTable.from_json(path.read_text(encoding="utf-8"))
        tables[table.experiment] = table
    if not tables:
        raise FileNotFoundError(f"no tables/*.json under {out}")
    return manifest, tables


def render_paper(out: Union[str, Path]) -> Dict[str, Any]:
    """Re-render reports/figures/manifest from an artifact's ``tables/``
    without executing anything (the zero-engine-call path)."""
    out = Path(out)
    manifest, tables = _load_artifact(out)
    raw_config = manifest.get("config", {})
    config = PaperConfig(
        seed=int(raw_config.get("seed", 0)),
        scale=int(raw_config.get("scale", 1)),
        smoke=bool(raw_config.get("smoke", False)),
        experiments=tuple(raw_config.get("experiments", ())) or tuple(tables),
    )
    return _write_artifact(tables, config, out)


def diff_paper(a: Union[str, Path], b: Union[str, Path]) -> ManifestDiff:
    """Compare two artifact directories by manifest (CI-overlap rule)."""
    return diff_manifests(
        load_manifest(Path(a) / "manifest.json"),
        load_manifest(Path(b) / "manifest.json"),
    )
