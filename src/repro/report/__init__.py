"""Report subsystem: tables, figures, manifests and the paper artifact.

Layers (each importable without the execution stack):

* :mod:`repro.report.tables` — cell formatting, monospace/Markdown table
  renderers, and :class:`~repro.report.tables.ExperimentTable` (the
  structured record every experiment runner returns);
* :mod:`repro.report.figures` — dependency-free deterministic SVG charts
  (line/band/bar) plus the per-experiment figure builders;
* :mod:`repro.report.manifest` — provenance manifests (spec hashes, seed
  policies, trial counts, CI half-widths, package versions) and the
  CI-overlap diff between two manifests;
* :mod:`repro.report.render` — assembly of ``report.md`` / ``report.html``
  from tables + figures + manifest.

The orchestration that actually *runs* the paper suite lives in
:mod:`repro.report.paper` (imported explicitly — it pulls in the full
engine/session stack, which this package intentionally does not).
"""

from .tables import (
    ExperimentTable,
    StatColumn,
    fmt_float,
    format_row_dicts,
    format_table,
    markdown_row_dicts,
    markdown_table,
)

__all__ = [
    "ExperimentTable",
    "StatColumn",
    "fmt_float",
    "format_row_dicts",
    "format_table",
    "markdown_row_dicts",
    "markdown_table",
]
