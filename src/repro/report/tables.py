"""Canonical table model + text/markdown renderers for experiment output.

This module owns *all* tabular formatting in the library (the former
``repro.util.tables`` helpers now live here; that module re-exports them
for backward compatibility).  Three layers:

* cell/stringification rules — :func:`fmt_float` and friends, shared by
  every renderer so plain-text experiment output, Markdown reports and the
  HTML report spell numbers identically;
* renderers — :func:`format_table` / :func:`format_row_dicts` (monospace)
  and :func:`markdown_table` / :func:`markdown_row_dicts` (GitHub pipe
  tables);
* the structured result — :class:`ExperimentTable`, the record every
  experiment runner returns: row-dicts plus the metadata the paper-report
  pipeline needs (title, paper section, which columns carry Monte-Carlo
  statistics, sweep provenance).  It behaves as a read-only sequence of
  rows, so pre-existing consumers that indexed the bare row list keep
  working unchanged.

Only the standard library is used here: the table layer sits below the
spec/engine stack and must be importable from anywhere without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "fmt_float",
    "format_table",
    "format_row_dicts",
    "markdown_table",
    "markdown_row_dicts",
    "experiment_sort_key",
    "StatColumn",
    "ExperimentTable",
]

Row = Dict[str, Any]


def fmt_float(x: float, digits: int = 4) -> str:
    """Format a float compactly: fixed-point for moderate magnitudes,
    scientific for very small/large ones, and integers without a fraction.

    >>> fmt_float(3.0)
    '3'
    >>> fmt_float(0.12345)
    '0.1235'
    >>> fmt_float(1.5e-7)
    '1.5000e-07'
    >>> fmt_float(float("nan"))
    'nan'
    """
    if x != x:  # NaN
        return "nan"
    if x == float("inf"):
        return "inf"
    if x == float("-inf"):
        return "-inf"
    if x != 0 and (abs(x) < 10 ** (-digits) or abs(x) >= 10**6):
        return f"{x:.{digits}e}"
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.{digits}g}"


def _stringify(cell: Any) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return fmt_float(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a monospace table with a header rule.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell sequences; cells are stringified via :func:`fmt_float` rules.
    title:
        Optional title printed above the table.
    """
    str_rows = [[_stringify(c) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[j]) for j, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(r[j].rjust(widths[j]) for j in range(ncols)))
    return "\n".join(lines)


def format_row_dicts(rows: Sequence[Mapping[str, Any]], *, title: Optional[str] = None) -> str:
    """Render a list of homogeneous dicts as a table (keys of the first row
    define the columns)."""
    if not rows:
        return title or ""
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows], title=title)


def _md_escape(cell: str) -> str:
    return cell.replace("|", "\\|")


def markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a GitHub-flavoured pipe table (same cell rules as
    :func:`format_table`; pipes inside cells are escaped)."""
    str_rows = [[_md_escape(_stringify(c)) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(_md_escape(str(h)) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for r in str_rows:
        lines.append("| " + " | ".join(r) + " |")
    return "\n".join(lines)


def markdown_row_dicts(
    rows: Sequence[Mapping[str, Any]], *, title: Optional[str] = None
) -> str:
    """:func:`format_row_dicts`'s Markdown twin."""
    if not rows:
        return f"**{title}**" if title else ""
    headers = list(rows[0].keys())
    return markdown_table(
        headers, [[row[h] for h in headers] for row in rows], title=title
    )


def _canonical(payload: Any) -> str:
    # Cycle-safe twin of repro.api.specs.canonical_json: this module sits
    # below the api package in the import graph (util.tables re-exports
    # from here), so it cannot import from it.  Same contract: sorted
    # keys, no whitespace variance, no default= fallback.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def experiment_sort_key(eid: str) -> Tuple[int, str]:
    """Sort key giving e1..e11 numeric order (not lexicographic)."""
    return (len(eid), eid)


# --------------------------------------------------------------------- #
# Structured experiment tables
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StatColumn:
    """Declares that a table column is a Monte-Carlo *estimate*.

    ``mean`` names the column holding the point estimate; ``halfwidth``
    names the column holding its confidence-interval half-width (same
    confidence level across the table); ``count`` optionally names the
    trials column.  The paper-report differ treats two runs of the same
    row as compatible when the declared intervals overlap — columns not
    covered by a :class:`StatColumn` are seed-dependent point values and
    are reported informationally, never flagged.
    """

    mean: str
    halfwidth: str
    count: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"mean": self.mean, "halfwidth": self.halfwidth, "count": self.count}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "StatColumn":
        return cls(
            mean=str(d["mean"]),
            halfwidth=str(d["halfwidth"]),
            count=str(d.get("count", "")),
        )


@dataclass(frozen=True)
class ExperimentTable(Sequence):
    """The structured outcome of one paper experiment.

    A read-only sequence of row-dicts (``table[0]["graph"]``, ``len(table)``
    and iteration all work, so legacy consumers of the bare row list are
    unaffected) plus the metadata the report pipeline renders and diffs:

    * ``experiment`` / ``title`` / ``paper_section`` / ``caption`` — what
      the table shows and which claim of the paper it regenerates;
    * ``key_columns`` — the columns identifying a row across runs (the
      differ's join key);
    * ``stat_columns`` — which columns are Monte-Carlo estimates with CI
      half-widths (see :class:`StatColumn`);
    * ``check_columns`` — boolean pass/fail columns (theory-bound checks);
    * ``provenance`` — one record per sweep/spec executed: content hashes,
      seed policy, trial counts.  Everything is JSON round-trippable.
    """

    experiment: str
    title: str
    rows: Tuple[Row, ...]
    paper_section: str = ""
    caption: str = ""
    key_columns: Tuple[str, ...] = ()
    stat_columns: Tuple[StatColumn, ...] = ()
    check_columns: Tuple[str, ...] = ()
    provenance: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(dict(r) for r in self.rows))
        object.__setattr__(self, "key_columns", tuple(self.key_columns))
        object.__setattr__(
            self,
            "stat_columns",
            tuple(
                s if isinstance(s, StatColumn) else StatColumn.from_dict(s)
                for s in self.stat_columns
            ),
        )
        object.__setattr__(self, "check_columns", tuple(self.check_columns))
        object.__setattr__(
            self, "provenance", tuple(dict(p) for p in self.provenance)
        )

    # -- sequence protocol (rows) --------------------------------------- #

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index):  # type: ignore[override]
        return self.rows[index]

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # -- derived views --------------------------------------------------- #

    @property
    def columns(self) -> List[str]:
        """Column names (keys of the first row; empty table → no columns)."""
        return list(self.rows[0].keys()) if self.rows else []

    def row_key(self, row: Mapping[str, Any]) -> str:
        """Stable identity of a row across runs: the ``key_columns`` values
        (all non-stat columns when none are declared)."""
        cols = self.key_columns
        if not cols:
            stat = {c for s in self.stat_columns for c in (s.mean, s.halfwidth, s.count)}
            cols = tuple(c for c in self.columns if c not in stat)
        return "|".join(f"{c}={_stringify(row.get(c, ''))}" for c in cols)

    def checks(self) -> Tuple[int, int]:
        """``(passed, total)`` over all boolean check cells in the table."""
        passed = total = 0
        for row in self.rows:
            for col in self.check_columns:
                if col in row:
                    total += 1
                    passed += bool(row[col])
        return passed, total

    # -- renderers ------------------------------------------------------- #

    def to_text(self, *, title: Optional[str] = None) -> str:
        """Monospace rendering (the CLI's stdout format)."""
        return format_row_dicts(list(self.rows), title=title or self.title)

    def to_markdown(self, *, title: Optional[str] = None) -> str:
        """GitHub pipe-table rendering (the report format)."""
        return markdown_row_dicts(list(self.rows), title=title)

    # -- serialisation --------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "paper_section": self.paper_section,
            "caption": self.caption,
            "key_columns": list(self.key_columns),
            "stat_columns": [s.to_dict() for s in self.stat_columns],
            "check_columns": list(self.check_columns),
            "provenance": [dict(p) for p in self.provenance],
            "rows": [dict(r) for r in self.rows],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ExperimentTable":
        return cls(
            experiment=str(d["experiment"]),
            title=str(d.get("title", "")),
            rows=tuple(d.get("rows", ())),
            paper_section=str(d.get("paper_section", "")),
            caption=str(d.get("caption", "")),
            key_columns=tuple(d.get("key_columns", ())),
            stat_columns=tuple(
                StatColumn.from_dict(s) for s in d.get("stat_columns", ())
            ),
            check_columns=tuple(d.get("check_columns", ())),
            provenance=tuple(d.get("provenance", ())),
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentTable":
        return cls.from_dict(json.loads(payload))

    def digest(self) -> str:
        """Content hash of the table (canonical JSON, wall-clock free as
        long as the rows themselves carry no timings)."""
        return hashlib.sha256(_canonical(self.to_dict()).encode()).hexdigest()[:16]
