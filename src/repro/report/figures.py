"""Dependency-free deterministic SVG charts for the paper report.

The container this library targets has no plotting stack, so the report
pipeline draws its own figures: a small line/scatter chart and a grouped
bar chart, emitted as standalone SVG strings.  Determinism is a hard
requirement (the paper artifact must be byte-identical across reruns of
the same data), so there are no timestamps, no random element ids, and
every coordinate is formatted with a fixed precision.

Generic primitives:

* :class:`Series` + :func:`line_chart` — polylines with optional markers
  and confidence-interval error bars;
* :func:`bar_chart` — grouped vertical bars.

Figure builders (one per report figure, each consuming the
:class:`~repro.report.tables.ExperimentTable` of the experiment it plots)
live at the bottom; :data:`PAPER_FIGURES` maps figure file names to
``(experiment id, builder)`` and is what the render layer iterates.

When :mod:`cairosvg` happens to be importable, :func:`save_figure`
additionally rasterises a PNG twin next to each SVG — a convenience only;
the SVG is always the canonical artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .tables import ExperimentTable, fmt_float

__all__ = [
    "Series",
    "line_chart",
    "bar_chart",
    "save_figure",
    "fig_disintegration",
    "fig_prune2_success",
    "fig_expansion_vs_fault",
    "fig_percolation_thresholds",
    "fig_cutfinder_ablation",
    "fig_cascade_size",
    "fig_shortcut_robustness",
    "fig_smallworld_disintegration",
    "PAPER_FIGURES",
]

#: Okabe–Ito colourblind-safe palette, cycled across series/groups.
PALETTE = (
    "#0072b2", "#d55e00", "#009e73", "#cc79a7",
    "#e69f00", "#56b4e9", "#f0e442", "#555555",
)

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _n(v: float) -> str:
    """Fixed-precision coordinate formatting (deterministic output)."""
    return f"{v:.2f}".rstrip("0").rstrip(".")


def _esc(s: str) -> str:
    return (
        str(s).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Nice tick positions covering [lo, hi] (endpoints snapped outward)."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return [0.0, 1.0]
    if hi <= lo:
        hi = lo + (abs(lo) if lo else 1.0)
    span = hi - lo
    raw = span / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if step >= raw:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(0.0 if abs(t) < step * 1e-9 else round(t, 12))
        t += step
    return ticks


@dataclass(frozen=True)
class Series:
    """One plotted series: points, an optional CI half-width per point."""

    label: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    halfwidths: Optional[Tuple[float, ...]] = None
    markers_only: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "xs", tuple(float(x) for x in self.xs))
        object.__setattr__(self, "ys", tuple(float(y) for y in self.ys))
        if self.halfwidths is not None:
            object.__setattr__(
                self, "halfwidths", tuple(float(h) for h in self.halfwidths)
            )
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")
        if self.halfwidths is not None and len(self.halfwidths) != len(self.xs):
            raise ValueError("halfwidths must match xs length")


@dataclass
class _Frame:
    """Shared plot geometry + the SVG fragments accumulated so far."""

    width: int
    height: int
    left: float
    right: float
    top: float
    bottom: float
    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    parts: List[str] = field(default_factory=list)

    def px(self, x: float) -> float:
        span = self.x_hi - self.x_lo or 1.0
        return self.left + (x - self.x_lo) / span * (self.width - self.left - self.right)

    def py(self, y: float) -> float:
        span = self.y_hi - self.y_lo or 1.0
        return (
            self.height - self.bottom
            - (y - self.y_lo) / span * (self.height - self.top - self.bottom)
        )


def _frame_open(
    f: _Frame, *, title: str, xlabel: str, ylabel: str,
    x_ticks: Sequence[float], y_ticks: Sequence[float],
) -> None:
    f.parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{f.width}" '
        f'height="{f.height}" viewBox="0 0 {f.width} {f.height}">'
    )
    f.parts.append(
        f'<rect x="0" y="0" width="{f.width}" height="{f.height}" fill="#ffffff"/>'
    )
    if title:
        f.parts.append(
            f'<text x="{_n(f.width / 2)}" y="18" text-anchor="middle" '
            f'{_FONT} font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    x0, x1 = f.left, f.width - f.right
    y0, y1 = f.top, f.height - f.bottom
    for t in y_ticks:
        py = f.py(t)
        f.parts.append(
            f'<line x1="{_n(x0)}" y1="{_n(py)}" x2="{_n(x1)}" y2="{_n(py)}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        f.parts.append(
            f'<text x="{_n(x0 - 6)}" y="{_n(py + 4)}" text-anchor="end" '
            f'{_FONT} font-size="11">{_esc(fmt_float(t))}</text>'
        )
    for t in x_ticks:
        px = f.px(t)
        f.parts.append(
            f'<line x1="{_n(px)}" y1="{_n(y1)}" x2="{_n(px)}" y2="{_n(y1 + 4)}" '
            f'stroke="#333333" stroke-width="1"/>'
        )
        f.parts.append(
            f'<text x="{_n(px)}" y="{_n(y1 + 18)}" text-anchor="middle" '
            f'{_FONT} font-size="11">{_esc(fmt_float(t))}</text>'
        )
    # axes on top of the grid
    f.parts.append(
        f'<line x1="{_n(x0)}" y1="{_n(y1)}" x2="{_n(x1)}" y2="{_n(y1)}" '
        f'stroke="#333333" stroke-width="1.5"/>'
    )
    f.parts.append(
        f'<line x1="{_n(x0)}" y1="{_n(y0)}" x2="{_n(x0)}" y2="{_n(y1)}" '
        f'stroke="#333333" stroke-width="1.5"/>'
    )
    if xlabel:
        f.parts.append(
            f'<text x="{_n((x0 + x1) / 2)}" y="{_n(f.height - 8)}" '
            f'text-anchor="middle" {_FONT} font-size="12">{_esc(xlabel)}</text>'
        )
    if ylabel:
        cy = (y0 + y1) / 2
        f.parts.append(
            f'<text x="14" y="{_n(cy)}" text-anchor="middle" {_FONT} '
            f'font-size="12" transform="rotate(-90 14 {_n(cy)})">{_esc(ylabel)}</text>'
        )


def _legend(f: _Frame, labels: Sequence[str]) -> None:
    x = f.width - f.right + 10
    y = f.top + 6
    for i, label in enumerate(labels):
        colour = PALETTE[i % len(PALETTE)]
        f.parts.append(
            f'<rect x="{_n(x)}" y="{_n(y + i * 18)}" width="12" height="12" '
            f'fill="{colour}"/>'
        )
        f.parts.append(
            f'<text x="{_n(x + 17)}" y="{_n(y + i * 18 + 10)}" {_FONT} '
            f'font-size="11">{_esc(label)}</text>'
        )


def line_chart(
    series: Sequence[Series],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    vlines: Sequence[Tuple[float, str]] = (),
) -> str:
    """Render line/scatter series (optional CI error bars) as an SVG string.

    ``vlines`` draws labelled vertical reference lines (e.g. a theory
    threshold).  Axis limits are padded nice-tick ranges unless pinned via
    ``y_min`` / ``y_max``.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    xs = [x for s in series for x in s.xs]
    ys = [y for s in series for y in s.ys]
    for s in series:
        if s.halfwidths:
            ys += [y + h for y, h in zip(s.ys, s.halfwidths)]
            ys += [y - h for y, h in zip(s.ys, s.halfwidths)]
    xs += [v for v, _ in vlines]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    x_ticks = _ticks(x_lo, x_hi)
    y_ticks = _ticks(y_lo, y_hi)
    y_lo = min(y_lo, y_ticks[0]) if y_min is None else y_min
    y_hi = max(y_hi, y_ticks[-1]) if y_max is None else y_max
    y_ticks = [t for t in y_ticks if y_lo <= t <= y_hi]
    legend_w = 10 + max((len(s.label) for s in series), default=0) * 7 if len(series) > 1 else 0
    f = _Frame(
        width=width + legend_w, height=height,
        left=56, right=16 + legend_w, top=28, bottom=44,
        x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi,
    )
    _frame_open(
        f, title=title, xlabel=xlabel, ylabel=ylabel,
        x_ticks=x_ticks, y_ticks=y_ticks,
    )
    for v, label in vlines:
        px = f.px(v)
        f.parts.append(
            f'<line x1="{_n(px)}" y1="{_n(f.top)}" x2="{_n(px)}" '
            f'y2="{_n(f.height - f.bottom)}" stroke="#888888" '
            f'stroke-width="1" stroke-dasharray="4 3"/>'
        )
        if label:
            f.parts.append(
                f'<text x="{_n(px + 4)}" y="{_n(f.top + 12)}" {_FONT} '
                f'font-size="10" fill="#555555">{_esc(label)}</text>'
            )
    for i, s in enumerate(series):
        colour = PALETTE[i % len(PALETTE)]
        pts = [(f.px(x), f.py(y)) for x, y in zip(s.xs, s.ys)]
        # error bars (clipped to the plot area)
        if s.halfwidths is not None:
            for x, y, h in zip(s.xs, s.ys, s.halfwidths):
                if not (h == h and math.isfinite(h)) or h <= 0:
                    continue
                px = f.px(x)
                top = f.py(min(y + h, f.y_hi))
                bot = f.py(max(y - h, f.y_lo))
                f.parts.append(
                    f'<line x1="{_n(px)}" y1="{_n(top)}" x2="{_n(px)}" '
                    f'y2="{_n(bot)}" stroke="{colour}" stroke-width="1.2"/>'
                )
                for yy in (top, bot):
                    f.parts.append(
                        f'<line x1="{_n(px - 3)}" y1="{_n(yy)}" '
                        f'x2="{_n(px + 3)}" y2="{_n(yy)}" stroke="{colour}" '
                        f'stroke-width="1.2"/>'
                    )
        if not s.markers_only and len(pts) > 1:
            path = " ".join(
                f"{'M' if j == 0 else 'L'}{_n(px)},{_n(py)}"
                for j, (px, py) in enumerate(pts)
            )
            f.parts.append(
                f'<path d="{path}" fill="none" stroke="{colour}" stroke-width="2"/>'
            )
        for px, py in pts:
            f.parts.append(
                f'<circle cx="{_n(px)}" cy="{_n(py)}" r="3.2" fill="{colour}"/>'
            )
    if len(series) > 1:
        _legend(f, [s.label for s in series])
    f.parts.append("</svg>")
    return "\n".join(f.parts)


def bar_chart(
    categories: Sequence[str],
    groups: Sequence[Tuple[str, Sequence[float]]],
    *,
    title: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render grouped vertical bars as an SVG string.

    ``groups`` is ``[(group label, one value per category), ...]``; bars of
    one category are laid side by side, one colour per group.
    """
    if not categories or not groups:
        raise ValueError("bar_chart needs categories and at least one group")
    for label, values in groups:
        if len(values) != len(categories):
            raise ValueError(f"group {label!r} has {len(values)} values, "
                             f"expected {len(categories)}")
    values_flat = [float(v) for _, vs in groups for v in vs]
    y_lo = min(0.0, min(values_flat))
    y_hi = max(values_flat)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    y_ticks = _ticks(y_lo, y_hi)
    y_lo, y_hi = min(y_lo, y_ticks[0]), max(y_hi, y_ticks[-1])
    legend_w = 10 + max(len(g) for g, _ in groups) * 7 if len(groups) > 1 else 0
    f = _Frame(
        width=width + legend_w, height=height,
        left=56, right=16 + legend_w, top=28, bottom=58,
        x_lo=0.0, x_hi=float(len(categories)), y_lo=y_lo, y_hi=y_hi,
    )
    _frame_open(f, title=title, xlabel="", ylabel=ylabel, x_ticks=(), y_ticks=y_ticks)
    n_groups = len(groups)
    slot = (f.width - f.left - f.right) / len(categories)
    bar_w = slot * 0.8 / n_groups
    base_py = f.py(max(0.0, y_lo))
    for gi, (label, vs) in enumerate(groups):
        colour = PALETTE[gi % len(PALETTE)]
        for ci, v in enumerate(vs):
            x = f.left + ci * slot + slot * 0.1 + gi * bar_w
            py = f.py(float(v))
            top, bot = min(py, base_py), max(py, base_py)
            f.parts.append(
                f'<rect x="{_n(x)}" y="{_n(top)}" width="{_n(bar_w)}" '
                f'height="{_n(bot - top)}" fill="{colour}"/>'
            )
    for ci, cat in enumerate(categories):
        cx = f.left + (ci + 0.5) * slot
        f.parts.append(
            f'<text x="{_n(cx)}" y="{_n(f.height - f.bottom + 16)}" '
            f'text-anchor="middle" {_FONT} font-size="11">{_esc(cat)}</text>'
        )
    if len(groups) > 1:
        _legend(f, [g for g, _ in groups])
    f.parts.append("</svg>")
    return "\n".join(f.parts)


# --------------------------------------------------------------------- #
# Figure builders: ExperimentTable → SVG
# --------------------------------------------------------------------- #


def _series_by(
    table: ExperimentTable,
    group_col: str,
    x_col: str,
    y_col: str,
    half_col: Optional[str] = None,
) -> List[Series]:
    """Split a table into one series per distinct ``group_col`` value
    (stable first-appearance order)."""
    order: List[str] = []
    buckets: Dict[str, List[Mapping[str, Any]]] = {}
    for row in table:
        key = str(row[group_col])
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(row)
    def _half(row: Mapping[str, Any]) -> float:
        v = row.get(half_col)
        # None marks "no CI yet" (n < 2) — render that point without a bar
        return float(v) if isinstance(v, (int, float)) else math.nan

    out = []
    for key in order:
        rows = buckets[key]
        halfwidths = (
            tuple(_half(r) for r in rows)
            if half_col and any(half_col in r for r in rows)
            else None
        )
        out.append(
            Series(
                label=key,
                xs=tuple(float(r[x_col]) for r in rows),
                ys=tuple(float(r[y_col]) for r in rows),
                halfwidths=halfwidths,
            )
        )
    return out


def fig_disintegration(table: ExperimentTable) -> str:
    """E5 — the paper's headline contrast: γ (largest-component fraction)
    vs the expansion-relative fault level p/α, chain graph vs torus."""
    return line_chart(
        _series_by(table, "graph", "p_over_alpha", "gamma_mean", "gamma_ci95"),
        title="Disintegration under random faults (E5)",
        xlabel="fault probability multiple p / α",
        ylabel="mean largest-component fraction γ",
        y_min=0.0, y_max=1.05,
    )


def fig_prune2_success(table: ExperimentTable) -> str:
    """E6 — Prune2 success probability vs fault probability, with the
    (very conservative) Theorem 3.4 threshold marked."""
    theory = float(table[0]["theory_p_max"]) if len(table) else 0.0
    return line_chart(
        _series_by(table, "graph", "p_fault", "success_rate", "success_ci95"),
        title="Prune2 success rate vs fault probability (E6)",
        xlabel="fault probability p",
        ylabel="success rate (|H| ≥ n/2 and αe(H) ≥ ε·αe)",
        y_min=0.0, y_max=1.05,
        vlines=((theory, "Thm 3.4 p_max"),) if theory > 0 else (),
    )


def fig_expansion_vs_fault(table: ExperimentTable) -> str:
    """E9 — survivor fraction after prune vs fault rate (the
    expansion-vs-fault-rate view of the routing experiment)."""
    return line_chart(
        _series_by(table, "graph", "p", "survivor_frac"),
        title="Surviving fraction after Prune vs fault rate (E9)",
        xlabel="fault probability p",
        ylabel="surviving fraction |H| / n",
        y_min=0.0, y_max=1.05,
    )


def fig_percolation_thresholds(table: ExperimentTable) -> str:
    """E8 — measured percolation thresholds (bracket as error bar) against
    the literature values the paper surveys (table T1)."""
    measured = Series(
        label="measured p*",
        xs=tuple(float(i) for i in range(len(table))),
        ys=tuple(float(r["measured_p*"]) for r in table),
        halfwidths=tuple(
            (float(r["bracket_hi"]) - float(r["bracket_lo"])) / 2.0 for r in table
        ),
        markers_only=True,
    )
    literature = Series(
        label="literature p*",
        xs=tuple(float(i) + 0.14 for i in range(len(table))),
        ys=tuple(
            (float(r["lit_lo"]) + float(r["lit_hi"])) / 2.0 for r in table
        ),
        halfwidths=tuple(
            (float(r["lit_hi"]) - float(r["lit_lo"])) / 2.0 for r in table
        ),
        markers_only=True,
    )
    svg = line_chart(
        [measured, literature],
        title="Critical probabilities: measured vs literature (E8 / table T1)",
        xlabel="family index (see table E8)",
        ylabel="critical probability p*",
        y_min=0.0,
    )
    return svg


def fig_cutfinder_ablation(table: ExperimentTable) -> str:
    """E11 — mean surviving size per cut-finder strategy, grouped by
    instance (the DESIGN.md §2 substitution quantified)."""
    categories: List[str] = []
    for row in table:
        g = str(row["graph"])
        if g not in categories:
            categories.append(g)
    finders: List[str] = []
    for row in table:
        fd = str(row["finder"])
        if fd not in finders:
            finders.append(fd)
    lookup = {(str(r["graph"]), str(r["finder"])): float(r["mean_H"]) for r in table}
    groups = [
        (fd, [lookup.get((cat, fd), 0.0) for cat in categories]) for fd in finders
    ]
    return bar_chart(
        categories, groups,
        title="Cut-finder ablation: mean |H| per strategy (E11)",
        ylabel="mean surviving nodes |H|",
    )


def fig_cascade_size(table: ExperimentTable) -> str:
    """E12 — mean cascade size (failed fraction) vs the capacity margin α,
    one series per topology."""
    return line_chart(
        _series_by(table, "graph", "alpha", "cascade_mean", "cascade_ci95"),
        title="Cascade size vs tolerance margin (E12)",
        xlabel="capacity margin α",
        ylabel="mean failed fraction",
        y_min=0.0, y_max=1.05,
    )


def fig_shortcut_robustness(table: ExperimentTable) -> str:
    """E13 — γ vs shortcut count k, one series per fault probability."""
    series = _series_by(table, "p_fault", "k", "gamma_mean", "gamma_ci95")
    series = [
        Series(
            label=f"p={s.label}",
            xs=s.xs, ys=s.ys, halfwidths=s.halfwidths,
        )
        for s in series
    ]
    return line_chart(
        series,
        title="Robustness gain from added shortcuts (E13)",
        xlabel="shortcut edges added k",
        ylabel="mean largest-component fraction γ",
        y_min=0.0, y_max=1.05,
    )


def fig_smallworld_disintegration(table: ExperimentTable) -> str:
    """E14 — γ vs fault probability for small-world rewirings against
    their regular lattices."""
    return line_chart(
        _series_by(table, "graph", "p_fault", "gamma_mean", "gamma_ci95"),
        title="Small-world vs regular lattices under faults (E14)",
        xlabel="fault probability p",
        ylabel="mean largest-component fraction γ",
        y_min=0.0, y_max=1.05,
    )


#: Report figures: file stem → (experiment id, builder).
PAPER_FIGURES: Dict[str, Tuple[str, Callable[[ExperimentTable], str]]] = {
    "disintegration": ("e5", fig_disintegration),
    "prune2_success": ("e6", fig_prune2_success),
    "expansion_vs_fault": ("e9", fig_expansion_vs_fault),
    "percolation_thresholds": ("e8", fig_percolation_thresholds),
    "cutfinder_ablation": ("e11", fig_cutfinder_ablation),
    "cascade_size": ("e12", fig_cascade_size),
    "shortcut_robustness": ("e13", fig_shortcut_robustness),
    "smallworld_disintegration": ("e14", fig_smallworld_disintegration),
}


def save_figure(svg: str, path) -> List[str]:
    """Write ``svg`` to ``path`` (and a PNG twin when cairosvg is
    importable — gated, never required).  Returns the file names written."""
    from pathlib import Path

    path = Path(path)
    path.write_text(svg, encoding="utf-8")
    written = [path.name]
    try:  # pragma: no cover - exercised only where cairosvg exists
        import cairosvg  # type: ignore

        png = path.with_suffix(".png")
        cairosvg.svg2png(bytestring=svg.encode(), write_to=str(png))
        written.append(png.name)
    except Exception:
        pass
    return written
