"""Provenance manifests for the paper artifact, and the CI-overlap diff.

``manifest.json`` is the diffable identity of one paper run: which
experiments ran with which config, the content hashes of every sweep/spec
they executed (seed policies, trial counts included), per-table digests,
the Monte-Carlo estimates with their CI half-widths, figure digests, and
the package versions that produced it all.  Wall-clock data is deliberately
excluded — two runs of the same config on the same code must produce
*byte-identical* manifests (timestamps live in the separate
``timings.json``, which is never diffed).

:func:`diff_manifests` compares two manifests statistically rather than
textually: a difference is **flagged** only when both runs carry a
confidence interval for the same quantity (joined on experiment × row key
× column) and the intervals do not overlap — the reproduction-failed
signal.  Everything else (config changes, version skew, row-count or
digest mismatches, seed-dependent point values) is reported
informationally.  Two smoke runs that differ only in seed therefore diff
clean unless an estimate actually moved by more than its error bars.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .tables import (
    ExperimentTable,
    _canonical,
    experiment_sort_key,
    fmt_float,
    format_row_dicts,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "DiffEntry",
    "ManifestDiff",
    "diff_manifests",
]

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

_PAPER = {
    "title": "The effect of faults on network expansion",
    "authors": "Bagchi, Bhargava, Chaudhary, Eppstein, Scheideler",
    "venue": "SPAA 2004",
}


def package_versions() -> Dict[str, str]:
    """The version stamp embedded in every manifest."""
    import numpy

    try:
        from importlib.metadata import version

        repro_version = version("repro-fault-expansion")
    except Exception:
        repro_version = "source"
    return {
        "python": platform.python_version(),
        "numpy": str(numpy.__version__),
        "repro": repro_version,
    }


def _stat_entries(table: ExperimentTable) -> List[Dict[str, Any]]:
    """One entry per (row, stat column): the diffable estimates."""
    out: List[Dict[str, Any]] = []
    for row in table:
        key = table.row_key(row)
        for sc in table.stat_columns:
            mean = row.get(sc.mean)
            if not isinstance(mean, (int, float)) or isinstance(mean, bool):
                continue
            half = row.get(sc.halfwidth)
            n = row.get(sc.count) if sc.count else None
            out.append(
                {
                    "row": key,
                    "column": sc.mean,
                    "mean": float(mean),
                    "halfwidth": (
                        float(half)
                        if isinstance(half, (int, float)) and not isinstance(half, bool)
                        else None
                    ),
                    "n": int(n) if isinstance(n, (int, float)) else None,
                }
            )
    return out


def build_manifest(
    tables: Mapping[str, ExperimentTable],
    config: Mapping[str, Any],
    *,
    figures: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one paper run.

    ``tables`` maps experiment id → :class:`ExperimentTable`; ``config``
    is the run configuration (seed, scale, smoke, experiment list — no
    wall-clock data, no worker counts); ``figures`` maps figure file name
    → SVG content (digested, not embedded).
    """
    experiments: Dict[str, Any] = {}
    for eid in sorted(tables, key=experiment_sort_key):
        table = tables[eid]
        passed, total = table.checks()
        experiments[eid] = {
            "title": table.title,
            "paper_section": table.paper_section,
            "rows": len(table),
            "table_digest": table.digest(),
            "checks": {"passed": passed, "total": total},
            "provenance": [dict(p) for p in table.provenance],
            "stats": _stat_entries(table),
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "paper": dict(_PAPER),
        "config": dict(config),
        "versions": package_versions(),
        "experiments": experiments,
        "figures": {
            name: hashlib.sha256(svg.encode()).hexdigest()[:16]
            for name, svg in (figures or {}).items()
        },
    }


def write_manifest(manifest: Mapping[str, Any], path) -> None:
    """Write a manifest deterministically (sorted keys, fixed indent)."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_manifest(path) -> Dict[str, Any]:
    manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: manifest must be a JSON object")
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {schema!r} "
            f"(this build reads schema {MANIFEST_SCHEMA})"
        )
    return manifest


# --------------------------------------------------------------------- #
# Diff
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class DiffEntry:
    """One observed difference between two manifests."""

    experiment: str
    location: str  # row key / config key / "figures" ...
    column: str
    a: Any
    b: Any
    detail: str = ""

    def row(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "where": self.location,
            "column": self.column,
            "a": self.a,
            "b": self.b,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ManifestDiff:
    """Outcome of :func:`diff_manifests`.

    ``flagged`` holds statistically significant differences (non-overlapping
    confidence intervals — the reproduction-failed signal); ``informational``
    holds everything else that changed.  ``clean`` is true when nothing is
    flagged — seed-to-seed variation within error bars diffs clean.
    """

    flagged: Tuple[DiffEntry, ...]
    informational: Tuple[DiffEntry, ...]

    @property
    def clean(self) -> bool:
        return not self.flagged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clean": self.clean,
            "flagged": [e.row() for e in self.flagged],
            "informational": [e.row() for e in self.informational],
        }

    def to_text(self) -> str:
        lines: List[str] = []
        if self.flagged:
            lines.append(
                f"FLAGGED — {len(self.flagged)} result(s) with non-overlapping "
                "confidence intervals:"
            )
            lines.append(format_row_dicts([e.row() for e in self.flagged]))
        else:
            lines.append("clean: no statistically significant differences "
                         "(all compared CIs overlap)")
        if self.informational:
            lines.append("")
            lines.append(
                f"{len(self.informational)} informational difference(s) "
                "(point values / config / structure — not significance-tested):"
            )
            lines.append(format_row_dicts([e.row() for e in self.informational]))
        return "\n".join(lines)


def _fmt(v: Any) -> Any:
    if isinstance(v, float):
        return fmt_float(v)
    return v


def diff_manifests(a: Mapping[str, Any], b: Mapping[str, Any]) -> ManifestDiff:
    """Statistically compare two manifests (see the module docstring for
    the flag-vs-informational rule)."""
    flagged: List[DiffEntry] = []
    info: List[DiffEntry] = []

    for key in ("config", "versions"):
        da, db = a.get(key, {}), b.get(key, {})
        for field_name in sorted(set(da) | set(db)):
            if da.get(field_name) != db.get(field_name):
                info.append(
                    DiffEntry(
                        experiment="-", location=key, column=str(field_name),
                        a=da.get(field_name), b=db.get(field_name),
                    )
                )

    exps_a = a.get("experiments", {})
    exps_b = b.get("experiments", {})
    for eid in sorted(set(exps_a) | set(exps_b), key=experiment_sort_key):
        ea, eb = exps_a.get(eid), exps_b.get(eid)
        if ea is None or eb is None:
            info.append(
                DiffEntry(
                    experiment=eid, location="experiments", column="present",
                    a=ea is not None, b=eb is not None,
                    detail="experiment present in only one run",
                )
            )
            continue
        if ea.get("rows") != eb.get("rows"):
            info.append(
                DiffEntry(
                    experiment=eid, location="table", column="rows",
                    a=ea.get("rows"), b=eb.get("rows"),
                )
            )
        if ea.get("checks") != eb.get("checks"):
            info.append(
                DiffEntry(
                    experiment=eid, location="table", column="checks",
                    a=ea.get("checks"), b=eb.get("checks"),
                    detail="theory-bound pass counts differ",
                )
            )
        if ea.get("table_digest") != eb.get("table_digest"):
            info.append(
                DiffEntry(
                    experiment=eid, location="table", column="table_digest",
                    a=ea.get("table_digest"), b=eb.get("table_digest"),
                    detail="table content differs (see stats for significance)",
                )
            )
        stats_a = {(s["row"], s["column"]): s for s in ea.get("stats", ())}
        stats_b = {(s["row"], s["column"]): s for s in eb.get("stats", ())}
        for skey in sorted(set(stats_a) | set(stats_b)):
            sa, sb = stats_a.get(skey), stats_b.get(skey)
            row_key, column = skey
            if sa is None or sb is None:
                info.append(
                    DiffEntry(
                        experiment=eid, location=row_key, column=column,
                        a=None if sa is None else _fmt(sa["mean"]),
                        b=None if sb is None else _fmt(sb["mean"]),
                        detail="estimate present in only one run",
                    )
                )
                continue
            ha, hb = sa.get("halfwidth"), sb.get("halfwidth")
            ma, mb = float(sa["mean"]), float(sb["mean"])
            if ha is None or hb is None:
                if ma != mb:
                    info.append(
                        DiffEntry(
                            experiment=eid, location=row_key, column=column,
                            a=_fmt(ma), b=_fmt(mb),
                            detail="no CI on one side",
                        )
                    )
                continue
            gap = abs(ma - mb)
            if gap > float(ha) + float(hb):
                flagged.append(
                    DiffEntry(
                        experiment=eid, location=row_key, column=column,
                        a=f"{fmt_float(ma)}±{fmt_float(float(ha))}",
                        b=f"{fmt_float(mb)}±{fmt_float(float(hb))}",
                        detail=f"CIs disjoint (gap {fmt_float(gap)})",
                    )
                )
            elif ma != mb:
                info.append(
                    DiffEntry(
                        experiment=eid, location=row_key, column=column,
                        a=_fmt(ma), b=_fmt(mb),
                        detail="within CI overlap",
                    )
                )
    return ManifestDiff(flagged=tuple(flagged), informational=tuple(info))
