"""The shard router: key placement, policies, legacy migration.

A :class:`StorageEngine` owns one store directory and splits each record
*kind* (``results``, ``baselines``, ``tables``) across a fixed number of
:class:`~repro.storage.shard.Shard` directories::

    <store>/
      engine.json              # layout metadata (shard counts, version)
      results/shard-00/…       # seg-*.jsonl + index.log + epoch + .lock
      results/shard-01/…
      baselines/shard-00/…
      tables/shard-00/…

Placement is ``sha256(key)`` reduced modulo the shard count — stable
across opens because the counts are persisted in ``engine.json`` the first
time the store is created.  Records are stored as **raw encoded lines**
and handed back undecoded; the engine decodes JSON only inside
:meth:`get_record` (and counts it), which is what keeps warm opens and
membership checks free of per-record work.

The engine also performs the one-time migration of legacy single-file
stores (PR1–PR6 layout: ``results.jsonl`` etc. at the store root).  Lines
are moved **verbatim** — byte-for-byte, in file order — into the shards,
so every fingerprint embedded in a record survives bit-identically and
last-entry-wins semantics are preserved (identical keys always land in
the same shard, in the same order).
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..util.locking import FileLock
from .counters import StorageCounters
from .shard import IndexEntry, Shard

__all__ = ["DEFAULT_SEGMENT_BYTES", "DEFAULT_SHARDS", "StorageEngine"]

#: Shards per record kind.  Results dominate (one record per trial) and
#: get the most write parallelism; baselines and tables are tiny.
DEFAULT_SHARDS: Dict[str, int] = {"results": 16, "baselines": 4, "tables": 4}
DEFAULT_SEGMENT_BYTES = 32 << 20

_META_FILE = "engine.json"
_LEGACY_FILES = {
    "results": "results.jsonl",
    "baselines": "baselines.jsonl",
    "tables": "tables.jsonl",
}

#: Auto-compaction fires on append once a shard is at least this fraction
#: garbage *and* has enough lines for the rewrite to be worth a lock hold.
AUTO_COMPACT_GARBAGE = 0.6
AUTO_COMPACT_MIN_LINES = 512


class StorageEngine:
    """Sharded, indexed, compacting record store (see module docstring)."""

    def __init__(
        self,
        path: Path,
        *,
        lock: bool = True,
        fsync: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        shards: Optional[Dict[str, int]] = None,
        auto_compact: bool = True,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.auto_compact = auto_compact
        self.counters = StorageCounters()
        #: Optional ``verify(kind, key, record) -> bool`` hook applied during
        #: compaction (the integrity sweep) — set by the ResultStore facade.
        self.verifier: Optional[Callable[[str, str, dict], bool]] = None
        self._lock_enabled = lock
        self._global_lock: Optional[FileLock] = (
            FileLock(self.path / ".lock") if lock else None
        )
        self._shard_counts = self._load_or_init_meta(
            shards if shards is not None else dict(DEFAULT_SHARDS)
        )
        self._shards: Dict[str, List[Shard]] = {}
        for kind, n in self._shard_counts.items():
            self._shards[kind] = [
                Shard(
                    self.path / kind / f"shard-{i:02d}",
                    lock=lock,
                    fsync=fsync,
                    segment_bytes=segment_bytes,
                    counters=self.counters,
                )
                for i in range(n)
            ]
        self._migration_corrupt = 0
        self._migrate_legacy()

    # -- layout ----------------------------------------------------------- #

    def _load_or_init_meta(self, wanted: Dict[str, int]) -> Dict[str, int]:
        meta_path = self.path / _META_FILE
        try:
            meta = json.loads(meta_path.read_text())
            counts = meta["shards"]
            if isinstance(counts, dict) and all(
                isinstance(v, int) and v > 0 for v in counts.values()
            ):
                return {str(k): int(v) for k, v in counts.items()}
        except (OSError, ValueError, KeyError, TypeError):
            pass
        try:
            tmp = self.path / f".{_META_FILE}.tmp"
            tmp.write_text(
                json.dumps({"version": 1, "shards": wanted}, sort_keys=True)
            )
            os.replace(tmp, meta_path)
        except OSError:
            pass  # read-only store: defaults apply in memory
        return wanted

    def kinds(self) -> List[str]:
        return list(self._shards)

    def shard_for(self, kind: str, key: str) -> Shard:
        shards = self._shards[kind]
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return shards[int.from_bytes(digest[:4], "big") % len(shards)]

    def shards(self, kind: str) -> List[Shard]:
        return self._shards[kind]

    # -- legacy migration --------------------------------------------------- #

    def _legacy_files_present(self) -> List[str]:
        return [
            kind
            for kind, name in _LEGACY_FILES.items()
            if kind in self._shards and (self.path / name).exists()
        ]

    def _migrate_legacy(self) -> None:
        """Move PR6-format root files into the shards, verbatim.

        Runs under the store-global lock so two processes opening the same
        legacy store concurrently migrate exactly once (the loser re-checks
        after acquiring and finds the files gone).  Each parseable line is
        appended as its **original bytes**; unparseable lines are dropped
        and counted, matching the legacy store's corrupt-line tolerance.
        """
        if not self._legacy_files_present():
            return
        with contextlib.ExitStack() as stack:
            if self._global_lock is not None:
                with contextlib.suppress(OSError):
                    stack.enter_context(self._global_lock)
            migrated_any = False
            for kind in self._legacy_files_present():
                legacy = self.path / _LEGACY_FILES[kind]
                batches: Dict[int, List[Tuple[str, bytes]]] = {}
                shards = self._shards[kind]
                try:
                    raw = legacy.read_bytes()
                except OSError:
                    continue
                for line in raw.splitlines(keepends=False):
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                        key = record["key"]
                        if not isinstance(record, dict) or not isinstance(
                            key, str
                        ):
                            raise ValueError
                    except (ValueError, KeyError, TypeError):
                        self._migration_corrupt += 1
                        self.counters.inc("corrupt")
                        continue
                    digest = hashlib.sha256(key.encode("utf-8")).digest()
                    idx = int.from_bytes(digest[:4], "big") % len(shards)
                    batches.setdefault(idx, []).append(
                        (key, bytes(stripped) + b"\n")
                    )
                for idx, items in batches.items():
                    shards[idx].append_many(items)
                with contextlib.suppress(OSError):
                    os.unlink(legacy)
                migrated_any = True
            if migrated_any:
                self.counters.inc("stores_migrated")

    @property
    def migration_corrupt(self) -> int:
        return self._migration_corrupt

    def export_legacy(self, dest: Path, kind: str = "results") -> int:
        """Write every live record of ``kind`` to one legacy-format file.

        Raw line bytes are concatenated in append order — the output is a
        valid PR6 ``results.jsonl`` with identical fingerprints.  Returns
        the number of records written.  (Used by tests to round-trip
        new-format stores back to the legacy layout.)
        """
        n = 0
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        with io.open(dest, "wb") as out:
            for _key, raw in self.iter_raw(kind):
                out.write(raw)
                n += 1
        return n

    # -- record I/O --------------------------------------------------------- #

    @staticmethod
    def encode(record: dict) -> bytes:
        """The canonical line encoding (identical to the legacy store)."""
        return (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")

    def append(self, kind: str, key: str, record: dict) -> bool:
        """Append one record; returns True if ``key`` was superseded."""
        return self.append_raw(kind, key, self.encode(record))

    def append_raw(self, kind: str, key: str, line: bytes) -> bool:
        shard = self.shard_for(kind, key)
        superseded = shard.append(key, line)
        self._maybe_auto_compact(kind, shard)
        return superseded

    def append_many(self, kind: str, records: List[Tuple[str, dict]]) -> int:
        """Batch append grouped by shard; returns superseded count."""
        batches: Dict[int, List[Tuple[str, bytes]]] = {}
        shards = self._shards[kind]
        for key, record in records:
            digest = hashlib.sha256(key.encode("utf-8")).digest()
            idx = int.from_bytes(digest[:4], "big") % len(shards)
            batches.setdefault(idx, []).append((key, self.encode(record)))
        superseded = 0
        for idx, items in batches.items():
            superseded += sum(shards[idx].append_many(items))
            self._maybe_auto_compact(kind, shards[idx])
        return superseded

    def _maybe_auto_compact(self, kind: str, shard: Shard) -> None:
        if not self.auto_compact:
            return
        if (
            shard.garbage_lines + len(shard) >= AUTO_COMPACT_MIN_LINES
            and shard.garbage_ratio >= AUTO_COMPACT_GARBAGE
        ):
            shard.compact(verify=self._verify_fn(kind))

    def get_raw(self, kind: str, key: str) -> Optional[bytes]:
        shard = self.shard_for(kind, key)
        if not shard.contains(key):
            self.counters.inc("index_misses")
            return None
        self.counters.inc("index_hits")
        return shard.get(key)

    def get_record(self, kind: str, key: str) -> Optional[dict]:
        """Decode the record for ``key`` — the only eager-decode read path.

        A line that no longer parses, is not a dict, or carries a different
        ``key`` field is discarded from the index (counted corrupt) and the
        lookup answers None, mirroring the legacy store's tolerance.
        """
        raw = self.get_raw(kind, key)
        if raw is None:
            return None
        self.counters.inc("records_decoded")
        try:
            record = json.loads(raw)
            if not isinstance(record, dict) or record.get("key") != key:
                raise ValueError
        except (ValueError, TypeError):
            self.shard_for(kind, key).discard(key)
            return None
        return record

    def discard(self, kind: str, key: str) -> None:
        self.shard_for(kind, key).discard(key)

    def contains(self, kind: str, key: str) -> bool:
        """O(1) membership from the index — no file read, no counters."""
        return self.shard_for(kind, key).contains(key)

    def keys(self, kind: str) -> List[str]:
        out: List[str] = []
        for shard in self._shards[kind]:
            out.extend(shard.keys())
        return out

    def count(self, kind: str) -> int:
        return sum(len(s) for s in self._shards[kind])

    def iter_raw(self, kind: str) -> Iterator[Tuple[str, bytes]]:
        for shard in self._shards[kind]:
            yield from shard.iter_raw()

    def iter_live(self, kind: str) -> Iterator[Tuple[str, dict]]:
        """Decode every live record (bulk path: ``load_all``, exports)."""
        for key, raw in self.iter_raw(kind):
            try:
                record = json.loads(raw)
                if not isinstance(record, dict) or record.get("key") != key:
                    raise ValueError
            except (ValueError, TypeError):
                self.shard_for(kind, key).discard(key)
                continue
            self.counters.inc("records_decoded")
            yield key, record

    def locate(self, kind: str, key: str) -> Optional[Tuple[Path, IndexEntry]]:
        """(segment path, index entry) for a live key — test/debug helper."""
        shard = self.shard_for(kind, key)
        entry = shard.entry(key)
        if entry is None:
            return None
        return shard._seg_path(entry.seg), entry

    def segment_files(self, kind: str) -> List[Path]:
        out: List[Path] = []
        for shard in self._shards[kind]:
            out.extend(shard.segment_files())
        return out

    # -- maintenance --------------------------------------------------------- #

    def _verify_fn(self, kind: str) -> Optional[Callable[[bytes], bool]]:
        verifier = self.verifier
        if verifier is None:
            return None

        def verify(raw: bytes) -> bool:
            try:
                record = json.loads(raw)
                key = record["key"]
                if not isinstance(record, dict) or not isinstance(key, str):
                    return False
            except (ValueError, KeyError, TypeError):
                return False
            return verifier(kind, key, record)

        return verify

    def compact(
        self,
        *,
        kinds: Optional[List[str]] = None,
        force: bool = False,
        min_garbage: float = 0.0,
        keep: Optional[Dict[str, Callable[[str], bool]]] = None,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> Dict[str, int]:
        """Compact shards; apply eviction policies; return total drop counts.

        ``min_garbage`` skips shards below that garbage ratio unless
        ``force`` (or an eviction policy makes the rewrite mandatory).
        ``max_bytes`` is a **global live-bytes budget across all kinds**:
        oldest entries (by index timestamp) are evicted until the projected
        live size fits.  ``max_age_s`` drops entries older than that many
        seconds.  ``keep`` maps kind → predicate (the prune path).
        """
        kinds = kinds if kinds is not None else self.kinds()
        drop_keys: Dict[str, set] = {}
        if max_bytes is not None:
            drop_keys = self._size_eviction_plan(kinds, max_bytes)
        totals = {
            "kept": 0,
            "superseded": 0,
            "corrupt": 0,
            "evicted": 0,
            "filtered": 0,
        }
        for kind in kinds:
            keep_fn = (keep or {}).get(kind)
            kind_drops = drop_keys.get(kind)
            for shard in self._shards[kind]:
                must = (
                    force
                    or keep_fn is not None
                    or max_age_s is not None
                    or bool(
                        kind_drops
                        and any(shard.contains(k) for k in kind_drops)
                    )
                )
                if not must and shard.garbage_ratio < max(min_garbage, 1e-9):
                    continue
                result = shard.compact(
                    keep=keep_fn,
                    drop_keys=kind_drops,
                    max_age_s=max_age_s,
                    verify=self._verify_fn(kind),
                )
                for field in totals:
                    totals[field] += result[field]
        self._migration_corrupt = 0
        return totals

    def _size_eviction_plan(
        self, kinds: List[str], max_bytes: int
    ) -> Dict[str, set]:
        """Oldest-first eviction set bringing projected live bytes under
        budget.  Uses index entry lengths — no record is read."""
        ranked: List[Tuple[int, int, str, str]] = []  # (ts, length, kind, key)
        live_bytes = 0
        for kind in kinds:
            for shard in self._shards[kind]:
                shard.ensure_loaded()
                for key in shard.keys():
                    entry = shard.entry(key)
                    if entry is None:
                        continue
                    ranked.append((entry.ts, entry.length, kind, key))
                    live_bytes += entry.length
        if live_bytes <= max_bytes:
            return {}
        ranked.sort()
        drops: Dict[str, set] = {}
        for ts, length, kind, key in ranked:
            if live_bytes <= max_bytes:
                break
            drops.setdefault(kind, set()).add(key)
            live_bytes -= length
        return drops

    def clear(self, kinds: Optional[List[str]] = None) -> None:
        for kind in kinds if kinds is not None else self.kinds():
            for shard in self._shards[kind]:
                shard.clear()
        self._migration_corrupt = 0

    def reload(self) -> None:
        for shards in self._shards.values():
            for shard in shards:
                shard.reload()
        self._migrate_legacy()

    def load_all(self) -> None:
        for shards in self._shards.values():
            for shard in shards:
                shard.ensure_loaded()

    # -- introspection -------------------------------------------------------- #

    def counts(self, kind: str) -> Dict[str, int]:
        """Index-served aggregates for one kind — nothing is decoded."""
        entries = superseded = corrupt = garbage = segments = size = 0
        for shard in self._shards[kind]:
            st = shard.stats()
            entries += st["entries"]
            superseded += st["superseded"]
            corrupt += st["corrupt"]
            garbage += st["garbage"]
            segments += st["segments"]
            size += st["bytes"]
        return {
            "entries": entries,
            "superseded": superseded,
            "corrupt": corrupt,
            "garbage": garbage,
            "segments": segments,
            "bytes": size,
        }

    def garbage_ratio(self, kind: str = "results") -> float:
        c = self.counts(kind)
        total = c["entries"] + c["garbage"]
        return (c["garbage"] / total) if total else 0.0

    def shard_rows(self, kind: str) -> List[Dict[str, float]]:
        """Per-shard stats rows for ``cache stats`` output."""
        rows = []
        for i, shard in enumerate(self._shards[kind]):
            st = shard.stats()
            st["shard"] = i
            rows.append(st)
        return rows
