"""Sharded, indexed, compacting storage engine for the result store.

This package is the persistence machinery below
:class:`repro.api.store.ResultStore`.  The facade keeps the public API
(content-addressed keys, corrupt-line tolerance, last-entry-wins); this
layer owns the on-disk layout and its scaling properties:

* :class:`~repro.storage.shard.Shard` — one hash shard: rotated append-only
  segment files, a persistent sidecar offset index, and a per-shard
  advisory lock so writers of different keys never contend.
* :class:`~repro.storage.engine.StorageEngine` — the shard router: key →
  shard placement, lazy per-lookup decode, compaction/eviction policies,
  and transparent one-time migration of legacy single-file stores.
* :class:`~repro.storage.counters.StorageCounters` — monotonic operational
  counters (segments, compactions, evictions, index hits/misses, migrated
  stores) exported through the service's ``/metrics``.

See ``docs/storage.md`` and DESIGN.md §10 for the invariants.
"""

from .counters import StorageCounters
from .engine import DEFAULT_SEGMENT_BYTES, DEFAULT_SHARDS, StorageEngine
from .shard import IndexEntry, Shard

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_SHARDS",
    "IndexEntry",
    "Shard",
    "StorageCounters",
    "StorageEngine",
]
