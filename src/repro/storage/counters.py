"""Monotonic operational counters for the storage engine.

One :class:`StorageCounters` instance is shared by every shard of a
:class:`~repro.storage.engine.StorageEngine`.  All fields are cumulative
since the engine was opened (they never decrease, unlike the *current*
garbage accounting kept per shard), which is what makes them safe to
export as Prometheus counters through :mod:`repro.service.metrics`.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["StorageCounters"]

#: Every counter the engine maintains, with its meaning.  The service
#: metrics catalogue mirrors the operationally interesting subset.
COUNTER_FIELDS: Dict[str, str] = {
    "appends": "records appended (any kind)",
    "superseded": "appends that replaced an existing key",
    "corrupt": "corrupt records seen (scan, heal, or lazy verification)",
    "index_hits": "lookups answered by the offset index",
    "index_misses": "lookups whose key was absent from the index",
    "records_decoded": "records actually read and JSON-decoded",
    "segments_created": "segment files created (rotation or compaction)",
    "segments_deleted": "segment files removed by compaction or clear",
    "compactions": "shard compactions performed",
    "evictions": "entries evicted by size/age policy",
    "stores_migrated": "legacy single-file stores migrated on open",
    "tail_scans": "index tail-scans (appends by other processes picked up)",
    "rebuilds": "full shard index rebuilds (missing or invalid sidecar)",
}


class StorageCounters:
    """Thread-safe monotonic counters (one lock, plain integer fields).

    >>> c = StorageCounters()
    >>> c.inc("appends", 3)
    >>> c.snapshot()["appends"]
    3
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {name: 0 for name in COUNTER_FIELDS}

    def inc(self, name: str, n: int = 1) -> None:
        if name not in self._values:
            raise KeyError(f"unknown storage counter {name!r}")
        if n:
            with self._lock:
                self._values[name] += n

    def get(self, name: str) -> int:
        with self._lock:
            return self._values[name]

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)
