"""One hash shard: segment files, a sidecar offset index, a private lock.

A shard owns a directory with three kinds of files:

* ``seg-NNNNNN.jsonl`` — append-only record segments.  One JSON record per
  line; the highest-numbered segment is *active* and receives appends until
  it crosses the rotation threshold, at which point a new segment is
  started.  Segment numbers are **never reused** — compaction writes
  survivors into fresh numbers and deletes the old files, so a stale index
  held by another process can only ever point at a *deleted* file (a
  detectable failure), never silently at the wrong record.
* ``index.log`` — the persistent sidecar offset index: one tab-separated
  line per appended record (``json-escaped key, segment, offset, length,
  timestamp``), plus ``#cov`` coverage lines recording how many bytes of
  each segment have been accounted for.  Warm open parses this file
  instead of the segments, so it is O(index entries) with **no record
  decoding** — keys and offsets only.  The index is advisory: any byte
  range of a segment not covered by the index is re-scanned on open (crash
  between record- and index-append), a segment that shrank below its
  covered size triggers a full rebuild (tampering/truncation), and a
  missing or unparseable ``index.log`` is rebuilt from the segments.
  Losing the index never loses data.  Coverage lines exist because
  coverage derived from record entries alone understates what has been
  scanned: a rebuilt index holds only *live* entries, so a superseded
  record at a segment's tail would sit beyond entry-derived coverage and
  be re-scanned (and must then lose to the newer entry, never resurrect —
  the scan only replaces an entry at an earlier ``(segment, offset)``).
* ``epoch`` — a monotonically increasing integer, bumped by compaction and
  ``clear``.  Writers re-read it (under the shard lock) before each append
  and reload their in-memory state when it moved, so a process that cached
  the shard layout before another process compacted it can never append to
  a dead segment.

Every mutation runs under an advisory :class:`~repro.util.locking.FileLock`
private to the shard (``<shard>/.lock``), which is the point of sharding:
service workers appending results with different key prefixes lock
*different* files and proceed in parallel.  Reads take no file lock at all
— an entry is located in the in-memory index and fetched with ``os.pread``;
if compaction raced us the segment file is gone (or short), we reload once
and retry, and record-level key/fingerprint verification above this layer
rejects any stale bytes.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from ..util.locking import FileLock
from .counters import StorageCounters

__all__ = ["IndexEntry", "Shard", "INDEX_FILE", "EPOCH_FILE"]

SEG_PREFIX = "seg-"
SEG_SUFFIX = ".jsonl"
INDEX_FILE = "index.log"
EPOCH_FILE = "epoch"
#: First line of every index.log — identifies the format so a corrupted or
#: foreign file is rebuilt rather than trusted.
INDEX_MAGIC = "#repro-index v1"
#: Marker for coverage lines (``#cov\t<segment>\t<bytes>``): bytes of a
#: segment already scanned/accounted for, beyond what the record entries
#: themselves imply.  Keys are JSON strings, so the marker cannot collide.
COV_MARK = "#cov"


class IndexEntry(NamedTuple):
    """Location of one record: which segment, where, how long, when."""

    seg: int
    off: int
    length: int
    ts: int


class Shard:
    """One shard directory (see module docstring for the file layout)."""

    def __init__(
        self,
        path: Path,
        *,
        lock: bool = True,
        fsync: bool = False,
        segment_bytes: int = 32 << 20,
        counters: Optional[StorageCounters] = None,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.counters = counters if counters is not None else StorageCounters()
        #: Serialises this process's threads; the FileLock serialises
        #: processes.  Reentrant so compaction may call back into appends.
        self._mutex = threading.RLock()
        self._flock: Optional[FileLock] = (
            FileLock(self.path / ".lock") if lock else None
        )
        self._entries: Dict[str, IndexEntry] = {}
        self._covered: Dict[int, int] = {}  # segment -> bytes accounted for
        self._total_lines = 0  # parseable record lines currently on disk
        self._resident_corrupt = 0  # unparseable/bad lines currently on disk
        self._corrupt_seen = 0  # corrupt observed since open (incl. healed)
        self._epoch = 0
        self._loaded = False
        self._active = 0
        self._active_size = 0
        self._read_fds: Dict[int, int] = {}

    # -- derived state ---------------------------------------------------- #

    @property
    def loaded(self) -> bool:
        return self._loaded

    def __len__(self) -> int:
        self.ensure_loaded()
        return len(self._entries)

    @property
    def superseded_current(self) -> int:
        """Parseable lines on disk whose key was re-appended later."""
        return self._total_lines - len(self._entries)

    @property
    def corrupt_seen(self) -> int:
        return self._corrupt_seen

    @property
    def garbage_lines(self) -> int:
        """Physical lines compaction would drop (superseded + corrupt)."""
        self.ensure_loaded()
        return self.superseded_current + self._resident_corrupt

    @property
    def garbage_ratio(self) -> float:
        self.ensure_loaded()
        total = len(self._entries) + self.garbage_lines
        return (self.garbage_lines / total) if total else 0.0

    def keys(self) -> List[str]:
        self.ensure_loaded()
        with self._mutex:
            return list(self._entries)

    def contains(self, key: str) -> bool:
        self.ensure_loaded()
        with self._mutex:
            return key in self._entries

    def entry(self, key: str) -> Optional[IndexEntry]:
        self.ensure_loaded()
        with self._mutex:
            return self._entries.get(key)

    # -- paths and small file helpers ------------------------------------- #

    def _seg_path(self, n: int) -> Path:
        return self.path / f"{SEG_PREFIX}{n:06d}{SEG_SUFFIX}"

    def segment_numbers(self) -> List[int]:
        out = []
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        for name in names:
            if name.startswith(SEG_PREFIX) and name.endswith(SEG_SUFFIX):
                try:
                    out.append(int(name[len(SEG_PREFIX) : -len(SEG_SUFFIX)]))
                except ValueError:
                    continue
        return sorted(out)

    def segment_files(self) -> List[Path]:
        return [self._seg_path(n) for n in self.segment_numbers()]

    def bytes(self) -> int:
        total = 0
        for f in self.segment_files():
            try:
                total += f.stat().st_size
            except OSError:
                pass
        return total

    def _read_epoch(self) -> int:
        try:
            return int((self.path / EPOCH_FILE).read_text())
        except (OSError, ValueError):
            return 0

    def _write_epoch(self, value: int) -> None:
        tmp = self.path / f".{EPOCH_FILE}.tmp"
        try:
            tmp.write_text(str(value))
            os.replace(tmp, self.path / EPOCH_FILE)
        except OSError:  # read-only store: epoch stays advisory
            pass

    @contextlib.contextmanager
    def _guard(self):
        """Mutate-side critical section: thread mutex + (best-effort) flock.

        The flock acquire is allowed to fail (read-only filesystems) — the
        shard then degrades to process-local safety, matching the legacy
        store's behaviour.
        """
        with self._mutex:
            acquired = False
            if self._flock is not None:
                try:
                    self._flock.acquire()
                    acquired = True
                except OSError:
                    pass
            try:
                yield
            finally:
                if acquired:
                    self._flock.release()

    # -- load / reload ----------------------------------------------------- #

    def ensure_loaded(self) -> None:
        if self._loaded:
            return
        with self._guard():
            if not self._loaded:
                self._load_locked()

    def reload(self) -> None:
        """Drop in-memory state; the next touch re-reads the sidecar index."""
        with self._mutex:
            self._close_fds()
            self._entries = {}
            self._covered = {}
            self._total_lines = 0
            self._resident_corrupt = 0
            self._corrupt_seen = 0
            self._loaded = False

    def _reload_locked(self) -> None:
        self._close_fds()
        self._entries = {}
        self._covered = {}
        self._total_lines = 0
        self._resident_corrupt = 0
        self._loaded = False
        self._load_locked()

    def _close_fds(self) -> None:
        for fd in self._read_fds.values():
            try:
                os.close(fd)
            except OSError:
                pass
        self._read_fds = {}

    def _load_locked(self) -> None:
        """Warm open: parse ``index.log``, reconcile against the segments.

        Fast path (clean shutdown, or appends only): the index covers every
        segment byte and nothing is decoded.  Tail path: segments grew past
        their covered size — scan only the new bytes.  Rebuild path: the
        index is missing/invalid, references deleted segments, or a segment
        shrank — rescan everything and rewrite the sidecar.
        """
        entries: Dict[str, IndexEntry] = {}
        covered: Dict[int, int] = {}
        total = 0
        index_ok = False
        index_path = self.path / INDEX_FILE
        if index_path.exists():
            try:
                with io.open(index_path, "r", encoding="utf-8") as fh:
                    if fh.readline().rstrip("\n") == INDEX_MAGIC:
                        index_ok = True
                        for line in fh:
                            parts = line.rstrip("\n").split("\t")
                            if parts[0] == COV_MARK:
                                if len(parts) == 3:
                                    try:
                                        cseg, cend = int(parts[1]), int(parts[2])
                                    except ValueError:
                                        continue
                                    if cend > covered.get(cseg, 0):
                                        covered[cseg] = cend
                                continue
                            if len(parts) != 5:
                                continue  # torn tail line of the index itself
                            try:
                                key = json.loads(parts[0])
                                entry = IndexEntry(
                                    int(parts[1]), int(parts[2]),
                                    int(parts[3]), int(parts[4]),
                                )
                            except (ValueError, json.JSONDecodeError):
                                continue
                            if not isinstance(key, str):
                                continue
                            prev = entries.get(key)
                            if prev is None or (entry.seg, entry.off) > (
                                prev.seg,
                                prev.off,
                            ):
                                entries[key] = entry
                            total += 1
                            end = entry.off + entry.length
                            if end > covered.get(entry.seg, 0):
                                covered[entry.seg] = end
            except OSError:
                index_ok = False

        segs = self.segment_numbers()
        if segs:
            self._heal_tail(self._seg_path(segs[-1]))
        sizes: Dict[int, int] = {}
        for n in segs:
            try:
                sizes[n] = self._seg_path(n).stat().st_size
            except OSError:
                sizes[n] = 0

        rebuild = not index_ok
        if index_ok:
            for seg, cov in covered.items():
                if seg not in sizes or sizes[seg] < cov:
                    # Covered bytes vanished: mid-compaction crash or
                    # external truncation.  The segments are the truth.
                    rebuild = True
                    break
        if rebuild:
            entries, covered, total = {}, {}, 0
            if index_ok or index_path.exists() or segs:
                self.counters.inc("rebuilds")

        new_lines: List[bytes] = []
        scanned = False
        for n in segs:
            start = covered.get(n, 0)
            if sizes[n] > start:
                scanned = True
                for key, entry, raw_ok in self._scan_segment(n, start):
                    if raw_ok:
                        total += 1
                        # A scanned line supersedes an indexed entry only
                        # when it is *newer* — at a later (segment, offset).
                        # A rebuilt index drops superseded tail lines from
                        # coverage; re-scanning one must not resurrect it
                        # over the live entry in a later segment.
                        prev = entries.get(key)
                        if prev is None or (entry.seg, entry.off) > (
                            prev.seg,
                            prev.off,
                        ):
                            entries[key] = entry
                            new_lines.append(self._index_line(key, entry))
                    else:
                        self._resident_corrupt += 1
                        self._corrupt_seen += 1
                        self.counters.inc("corrupt")
                covered[n] = sizes[n]
                new_lines.append(self._cov_line(n, sizes[n]))
        if scanned and not rebuild:
            self.counters.inc("tail_scans")

        self._entries = entries
        self._covered = covered
        self._total_lines = total
        self._active = segs[-1] if segs else 0
        self._active_size = sizes.get(self._active, 0)
        self._epoch = self._read_epoch()
        self._loaded = True

        try:
            if rebuild:
                self._rewrite_index_locked()
            elif new_lines:
                with io.open(index_path, "ab") as fh:
                    if fh.tell() == 0:
                        fh.write((INDEX_MAGIC + "\n").encode())
                    fh.write(b"".join(new_lines))
        except OSError:  # read-only store: in-memory index only
            pass

    def _scan_segment(
        self, seg: int, start: int
    ) -> Iterator[Tuple[str, IndexEntry, bool]]:
        """Yield ``(key, entry, ok)`` for every line from ``start`` on.

        ``ok`` is False for unparseable lines (reported with a dummy key so
        the caller can count them); records are parsed only far enough to
        extract their key — values stay undecoded until a lookup asks.
        """
        ts = int(time.time())
        path = self._seg_path(seg)
        try:
            fh = io.open(path, "rb")
        except OSError:
            return
        with fh:
            fh.seek(start)
            off = start
            for line in fh:
                length = len(line)
                record_ok = False
                key = ""
                if line.endswith(b"\n") and line.strip():
                    try:
                        record = json.loads(line)
                        key = record["key"]
                        record_ok = isinstance(record, dict) and isinstance(
                            key, str
                        )
                    except (ValueError, KeyError, TypeError):
                        record_ok = False
                elif not line.strip():
                    off += length
                    continue
                yield key, IndexEntry(seg, off, length, ts), record_ok
                off += length

    def _heal_tail(self, file: Path) -> None:
        """Truncate a half-written final line left by a crash (counted as
        one corrupt entry, exactly like the legacy single-file store)."""
        try:
            with io.open(file, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) == b"\n":
                    return
                keep = 0
                pos = size
                block = 4096
                while pos > 0:
                    step = min(block, pos)
                    pos -= step
                    fh.seek(pos)
                    chunk = fh.read(step)
                    idx = chunk.rfind(b"\n")
                    if idx != -1:
                        keep = pos + idx + 1
                        break
                fh.truncate(keep)
                self._corrupt_seen += 1
                self.counters.inc("corrupt")
        except OSError:
            # Read-only store: the fragment stays; the scan path counts it.
            pass

    def _index_line(self, key: str, entry: IndexEntry) -> bytes:
        return (
            f"{json.dumps(key)}\t{entry.seg}\t{entry.off}"
            f"\t{entry.length}\t{entry.ts}\n"
        ).encode()

    def _cov_line(self, seg: int, end: int) -> bytes:
        return f"{COV_MARK}\t{seg}\t{end}\n".encode()

    def _rewrite_index_locked(self) -> None:
        tmp = self.path / f".{INDEX_FILE}.tmp"
        with io.open(tmp, "wb") as fh:
            fh.write((INDEX_MAGIC + "\n").encode())
            # Record full scanned coverage, not just what the live entries
            # imply: superseded/corrupt lines past the last live entry of a
            # segment are already accounted for and must not be re-scanned.
            for seg, end in sorted(self._covered.items()):
                fh.write(self._cov_line(seg, end))
            for key, entry in sorted(
                self._entries.items(), key=lambda kv: (kv[1].seg, kv[1].off)
            ):
                fh.write(self._index_line(key, entry))
        os.replace(tmp, self.path / INDEX_FILE)

    # -- appends ------------------------------------------------------------ #

    def append(self, key: str, line: bytes) -> bool:
        """Append one encoded record line; True if ``key`` was superseded."""
        return self.append_many([(key, line)])[0]

    def append_many(self, items: Iterable[Tuple[str, bytes]]) -> List[bool]:
        """Append a batch under one lock acquisition (one shard, in order).

        Each record line is written to the active segment first and its
        index line second: a crash between the two leaves an indexless
        record the next open's tail-scan recovers.  The epoch file is
        checked once per batch so a compaction by another process forces a
        reload instead of an append to a deleted segment.
        """
        items = list(items)
        if not items:
            return []
        out: List[bool] = []
        with self._guard():
            self.ensure_loaded()
            if self._read_epoch() != self._epoch:
                self._reload_locked()
            seg_fh = idx_fh = None
            try:
                for key, line in items:
                    if not line.endswith(b"\n"):
                        line += b"\n"
                    if (
                        self._active_size > 0
                        and self._active_size + len(line) > self.segment_bytes
                    ):
                        if seg_fh is not None:
                            self._finish_write(seg_fh)
                            seg_fh = None
                        self._active += 1
                        self._active_size = 0
                        # segments_created is counted when the file is
                        # opened below (the rotated-to path never exists).
                    if seg_fh is None:
                        path = self._seg_path(self._active)
                        existed = path.exists()
                        seg_fh = io.open(path, "ab")
                        if not existed:
                            self.counters.inc("segments_created")
                    off = seg_fh.tell()
                    seg_fh.write(line)
                    entry = IndexEntry(
                        self._active, off, len(line), int(time.time())
                    )
                    self._active_size = off + len(line)
                    self._covered[self._active] = self._active_size
                    superseded = key in self._entries
                    self._entries[key] = entry
                    self._total_lines += 1
                    out.append(superseded)
                    self.counters.inc("appends")
                    if superseded:
                        self.counters.inc("superseded")
                    try:
                        if idx_fh is None:
                            idx_fh = io.open(self.path / INDEX_FILE, "ab")
                            if idx_fh.tell() == 0:
                                idx_fh.write((INDEX_MAGIC + "\n").encode())
                        idx_fh.write(self._index_line(key, entry))
                    except OSError:
                        idx_fh = None  # keep appending records regardless
            finally:
                if seg_fh is not None:
                    self._finish_write(seg_fh)
                if idx_fh is not None:
                    with contextlib.suppress(OSError):
                        idx_fh.close()
        return out

    def _finish_write(self, fh) -> None:
        if self.fsync:
            fh.flush()
            os.fsync(fh.fileno())
        fh.close()

    # -- reads --------------------------------------------------------------- #

    def get(self, key: str) -> Optional[bytes]:
        """The raw record line for ``key`` (no decoding), or None.

        Lock-free: a compaction racing us deletes segment files.  Cached
        read fds would happily keep serving the unlinked inode, so the
        epoch file (bumped by every compaction) is checked first and the
        index reloaded when it moved; a short/failed read afterwards (the
        unlocked window between the epoch read and the pread) reloads once
        more, and a second failure discards the entry as corrupt.
        """
        self.ensure_loaded()
        with self._mutex:
            if self._read_epoch() != self._epoch:
                with self._guard():
                    self._reload_locked()
        for attempt in range(2):
            with self._mutex:
                entry = self._entries.get(key)
            if entry is None:
                return None
            data = self._pread(entry)
            if data is not None and len(data) == entry.length:
                return data
            if attempt == 0:
                with self._guard():
                    self._reload_locked()
        self.discard(key)
        return None

    def _pread(self, entry: IndexEntry) -> Optional[bytes]:
        with self._mutex:
            fd = self._read_fds.get(entry.seg)
            if fd is None:
                try:
                    fd = os.open(self._seg_path(entry.seg), os.O_RDONLY)
                except OSError:
                    return None
                self._read_fds[entry.seg] = fd
        try:
            return os.pread(fd, entry.length, entry.off)
        except OSError:
            with self._mutex:
                if self._read_fds.get(entry.seg) == fd:
                    del self._read_fds[entry.seg]
                    with contextlib.suppress(OSError):
                        os.close(fd)
            return None

    def iter_raw(self) -> Iterator[Tuple[str, bytes]]:
        """Live ``(key, raw line)`` pairs in append order."""
        self.ensure_loaded()
        with self._mutex:
            ordered = sorted(
                self._entries.items(), key=lambda kv: (kv[1].seg, kv[1].off)
            )
        for key, entry in ordered:
            data = self._pread(entry)
            if data is not None and len(data) == entry.length:
                yield key, data

    def discard(self, key: str) -> None:
        """Drop ``key`` from the index (a lazily detected corrupt record).

        The line stays on disk as garbage until the next compaction; it is
        counted as corrupt, not superseded.
        """
        with self._mutex:
            if key in self._entries:
                del self._entries[key]
                self._total_lines -= 1
                self._resident_corrupt += 1
                self._corrupt_seen += 1
                self.counters.inc("corrupt")

    # -- compaction / clearing ---------------------------------------------- #

    def compact(
        self,
        *,
        keep: Optional[Callable[[str], bool]] = None,
        drop_keys: Optional[set] = None,
        max_age_s: Optional[float] = None,
        verify: Optional[Callable[[bytes], bool]] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Rewrite the shard with only surviving records.

        Survivors keep their **raw line bytes** — compaction never
        re-serialises a record, so fingerprints are preserved bit for bit.
        Old segments are deleted and survivors land in fresh, higher
        segment numbers (see module docstring for why numbers never come
        back).  Returns drop counts by reason.
        """
        now = time.time() if now is None else now
        with self._guard():
            if self._loaded:
                self._reload_locked()  # pick up other processes' appends
            else:
                self._load_locked()
            before_entries = len(self._entries)
            superseded = self.superseded_current
            corrupt = self._resident_corrupt
            evicted = filtered = 0
            survivors: List[Tuple[str, bytes, int]] = []
            ordered = sorted(
                self._entries.items(), key=lambda kv: (kv[1].seg, kv[1].off)
            )
            for key, entry in ordered:
                if keep is not None and not keep(key):
                    filtered += 1
                    continue
                if drop_keys is not None and key in drop_keys:
                    evicted += 1
                    continue
                if max_age_s is not None and entry.ts < now - max_age_s:
                    evicted += 1
                    continue
                raw = self._pread(entry)
                if raw is None or len(raw) != entry.length:
                    corrupt += 1
                    continue
                if verify is not None and not verify(raw):
                    corrupt += 1
                    continue
                survivors.append((key, raw, entry.ts))

            old_segs = self.segment_numbers()
            first_new = (old_segs[-1] + 1) if old_segs else self._active + 1
            self._close_fds()
            entries: Dict[str, IndexEntry] = {}
            seg = first_new
            size = 0
            fh = None
            try:
                for key, raw, ts in survivors:
                    if fh is not None and size > 0 and size + len(raw) > self.segment_bytes:
                        self._finish_write(fh)
                        fh = None
                        seg += 1
                        size = 0
                    if fh is None:
                        fh = io.open(self._seg_path(seg), "ab")
                        self.counters.inc("segments_created")
                    entries[key] = IndexEntry(seg, size, len(raw), ts)
                    fh.write(raw)
                    size += len(raw)
            finally:
                if fh is not None:
                    self._finish_write(fh)
            for n in old_segs:
                with contextlib.suppress(OSError):
                    os.unlink(self._seg_path(n))
                    self.counters.inc("segments_deleted")
            self._entries = entries
            self._covered = {
                e.seg: max(self._covered.get(e.seg, 0), e.off + e.length)
                for e in entries.values()
            } if entries else {}
            self._total_lines = len(entries)
            self._resident_corrupt = 0
            self._corrupt_seen = 0
            self._active = seg if survivors else first_new
            self._active_size = size if survivors else 0
            with contextlib.suppress(OSError):
                self._rewrite_index_locked()
            self._epoch += 1
            self._write_epoch(self._epoch)
            self.counters.inc("compactions")
            self.counters.inc("evictions", evicted)
            return {
                "kept": len(entries),
                "superseded": superseded,
                "corrupt": corrupt,
                "evicted": evicted,
                "filtered": filtered,
                "entries_before": before_entries,
            }

    def clear(self) -> None:
        """Delete every segment and the sidecar index (numbers stay burnt)."""
        with self._guard():
            segs = self.segment_numbers()
            next_active = (segs[-1] + 1) if segs else self._active + 1
            self._close_fds()
            for n in segs:
                with contextlib.suppress(OSError):
                    os.unlink(self._seg_path(n))
                    self.counters.inc("segments_deleted")
            with contextlib.suppress(OSError):
                os.unlink(self.path / INDEX_FILE)
            self._entries = {}
            self._covered = {}
            self._total_lines = 0
            self._resident_corrupt = 0
            self._corrupt_seen = 0
            self._active = next_active
            self._active_size = 0
            self._loaded = True
            self._epoch += 1
            self._write_epoch(self._epoch)

    def stats(self) -> Dict[str, float]:
        self.ensure_loaded()
        with self._mutex:
            return {
                "entries": len(self._entries),
                "segments": len(self.segment_numbers()),
                "superseded": self.superseded_current,
                "corrupt": self._corrupt_seen,
                "garbage": self.garbage_lines,
                "garbage_ratio": self.garbage_ratio,
                "bytes": self.bytes(),
            }
