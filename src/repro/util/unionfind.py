"""Array-backed disjoint-set union (union–find).

The percolation engine and connected-component routines union millions of
element pairs, so the structure is kept as two flat numpy arrays (parent and
size) with path-halving finds and union-by-size.  Per-call work is a tight
Python loop over machine integers — profiling showed this beats building
scipy sparse structures for the incremental workloads used here (Newman–Ziff
style sweeps add one edge at a time, which no batch API serves well).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set union over the integers ``0 .. n-1``.

    Supports the classic operations plus bookkeeping needed by percolation
    sweeps: the size of the largest current set is maintained incrementally
    so callers can read it in O(1) after every union.

    Parameters
    ----------
    n:
        Number of elements.  Elements are always the integers ``0..n-1``.
    """

    __slots__ = ("_parent", "_size", "_n_sets", "_max_size")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise InvalidParameterError(f"UnionFind size must be >= 0, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self._n_sets = n
        self._max_size = 1 if n > 0 else 0

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently present."""
        return self._n_sets

    @property
    def max_size(self) -> int:
        """Size of the largest set (0 for an empty structure)."""
        return self._max_size

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns
        -------
        bool
            ``True`` if a merge happened, ``False`` if they were already
            in the same set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        if size[ra] > self._max_size:
            self._max_size = int(size[ra])
        self._n_sets -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return int(self._size[self.find(x)])

    def union_edges(self, u: np.ndarray, v: np.ndarray) -> int:
        """Union many pairs at once; returns the number of effective merges.

        ``u`` and ``v`` are equal-length integer arrays.  The loop is plain
        Python over numpy scalars which is the fastest pure-Python option for
        a data-dependent sequential computation (vectorising DSU is not
        possible without changing the algorithm).
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise InvalidParameterError("u and v must have equal shapes")
        merges = 0
        # Localise bound methods: ~30% faster in the hot loop.
        union = self.union
        for a, b in zip(u.tolist(), v.tolist()):
            if union(a, b):
                merges += 1
        return merges

    def union_edges_trace(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Union pairs in order; return the largest-set size after *each* one.

        This is the Newman–Ziff inner kernel: one call replaces the
        per-edge ``union(); read max_size`` loop.  The DSU state is staged
        in plain Python lists (list indexing beats numpy scalar indexing by
        ~4× for data-dependent access patterns), run through one tight loop
        with inlined path-halving finds, and written back, so the structure
        is left exactly as if :meth:`union` had been called edge by edge.
        The returned ``int64`` trace is the running maximum — callers get
        the whole microcanonical curve from a single vectorisable array.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise InvalidParameterError("u and v must have equal shapes")
        m = int(u.shape[0])
        trace = np.empty(m, dtype=np.int64)
        parent = self._parent.tolist()
        size = self._size.tolist()
        max_size = self._max_size
        n_sets = self._n_sets
        us, vs = u.tolist(), v.tolist()
        for k in range(m):
            a, b = us[k], vs[k]
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                if size[a] < size[b]:
                    a, b = b, a
                parent[b] = a
                size[a] += size[b]
                if size[a] > max_size:
                    max_size = size[a]
                n_sets -= 1
            trace[k] = max_size
        self._parent = np.asarray(parent, dtype=np.int64)
        self._size = np.asarray(size, dtype=np.int64)
        self._max_size = max_size
        self._n_sets = n_sets
        return trace

    def labels(self) -> np.ndarray:
        """Return an ``int64`` array mapping each element to a canonical
        component label in ``0..n_sets-1`` (labels are dense and ordered by
        first appearance)."""
        n = len(self)
        roots = np.empty(n, dtype=np.int64)
        for i in range(n):
            roots[i] = self.find(i)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)

    def component_sizes(self) -> np.ndarray:
        """Sizes of all current sets, in canonical label order."""
        labels = self.labels()
        return np.bincount(labels).astype(np.int64)
