"""Lightweight timing utilities for experiment harnesses.

The benchmark suite uses pytest-benchmark for kernel timings; these helpers
serve the *experiment* code paths (tables, sweeps) where we want elapsed-time
bookkeeping without a framework dependency.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Timer", "StageTimer"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Use either as a context manager (accumulates on exit) or via explicit
    :meth:`start` / :meth:`stop` calls.
    """

    elapsed: float = 0.0
    _t0: float | None = None

    def start(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Named-stage timer for multi-phase experiments.

    Example
    -------
    >>> stages = StageTimer()
    >>> with stages.stage("faults"):
    ...     pass
    >>> with stages.stage("prune"):
    ...     pass
    >>> sorted(stages.elapsed)  # doctest: +ELLIPSIS
    ['faults', 'prune']
    """

    elapsed: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed[name] = self.elapsed.get(name, 0.0) + time.perf_counter() - t0

    def summary(self) -> str:
        """One-line ``name=seconds`` summary, sorted by descending cost."""
        parts = sorted(self.elapsed.items(), key=lambda kv: -kv[1])
        return " ".join(f"{k}={v:.3f}s" for k, v in parts)
