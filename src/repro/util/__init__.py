"""Shared utilities: RNG normalisation, union-find, validation, tables, timing."""

from .rng import SeedLike, as_generator, random_subset, spawn
from .tables import fmt_float, format_row_dicts, format_table
from .timing import StageTimer, Timer
from .unionfind import UnionFind
from .parallel import chunked_map, effective_workers
from .stats import (
    OnlineStats,
    P2Quantile,
    normal_interval,
    normal_ppf,
    wilson_interval,
    z_value,
)
from .validation import (
    check_fraction,
    check_in_range,
    check_node_array,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    require,
)

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn",
    "random_subset",
    "UnionFind",
    "Timer",
    "StageTimer",
    "format_table",
    "format_row_dicts",
    "fmt_float",
    "chunked_map",
    "effective_workers",
    "OnlineStats",
    "P2Quantile",
    "normal_ppf",
    "z_value",
    "normal_interval",
    "wilson_interval",
    "check_probability",
    "check_positive_int",
    "check_nonnegative_int",
    "check_fraction",
    "check_in_range",
    "check_node_array",
    "require",
]
