"""Minimal data-parallel map for experiment sweeps.

Experiments in this library are embarrassingly parallel over trials and
parameter points.  Following the hpc-parallel guidance, we keep the
parallelism at the *outermost* loop (one process per independent trial) and
keep the inner kernels vectorised numpy.  ``chunked_map`` degrades gracefully
to a serial loop when ``workers <= 1`` or when the overhead would dominate,
so tests and small runs stay deterministic and debuggable.

Since the session API landed, the pooling strategy itself lives in
:mod:`repro.api.executors` (:class:`~repro.api.executors.SerialExecutor` /
:class:`~repro.api.executors.ProcessExecutor`); this module keeps the
long-standing functional entry point as a thin wrapper over the same
implementation, so the two can never disagree on pooling behaviour.  The
executor import is deferred to call time: util/ sits *below* api/ in the
layer diagram, and a module-level import here would pull the api package
into every util import (and invite cycles).

Notes
-----
Worker functions must be picklable module-level callables.  Random state must
be passed explicitly per task (use :func:`repro.util.rng.spawn`) so results
never depend on process scheduling.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Sequence, TypeVar

from ..errors import InvalidParameterError

__all__ = ["effective_workers", "chunked_map"]

T = TypeVar("T")
R = TypeVar("R")


def effective_workers(workers: int | None = None) -> int:
    """Resolve a worker-count spec.

    ``None`` or 0 means "auto": one worker per CPU, capped at 8 (beyond that
    the fork+pickle overhead outweighs gains for our task sizes).  Negative
    values are invalid.
    """
    if workers is None or workers == 0:
        return max(1, min(8, os.cpu_count() or 1))
    if workers < 0:
        raise InvalidParameterError(f"workers must be >= 0 or None, got {workers}")
    return int(workers)


def chunked_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = 1,
    min_parallel: int = 4,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    Parameters
    ----------
    fn:
        Picklable callable applied to each item.
    items:
        Work items (materialised to a list; order of results matches input).
    workers:
        Parallelism degree; ``1`` (the default) runs serially in-process.
        ``None``/``0`` selects a CPU-count-based default.
    min_parallel:
        Below this many items the serial path is always used — the pool
        start-up cost (~100 ms) is never worth amortising over fewer tasks.
    """
    from ..api.executors import ProcessExecutor  # deferred: api sits above util

    return ProcessExecutor(workers, min_parallel=min_parallel).map(fn, list(items))
