"""Plain-text table rendering for experiment output.

Benchmarks regenerate the paper's quantitative statements as tables; this
module renders them consistently so EXPERIMENTS.md and the bench stdout share
one format.  No external dependencies: column widths are computed from the
stringified cells.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_row_dicts", "fmt_float"]


def fmt_float(x: float, digits: int = 4) -> str:
    """Format a float compactly: fixed-point for moderate magnitudes,
    scientific for very small/large ones, and integers without a fraction."""
    if x != x:  # NaN
        return "nan"
    if x == float("inf"):
        return "inf"
    if x == float("-inf"):
        return "-inf"
    if x != 0 and (abs(x) < 10 ** (-digits) or abs(x) >= 10**6):
        return f"{x:.{digits}e}"
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.{digits}g}"


def _stringify(cell: Any) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return fmt_float(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render a monospace table with a header rule.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell sequences; cells are stringified via :func:`fmt_float` rules.
    title:
        Optional title printed above the table.
    """
    str_rows = [[_stringify(c) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[j]) for j, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(r[j].rjust(widths[j]) for j in range(ncols)))
    return "\n".join(lines)


def format_row_dicts(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render a list of homogeneous dicts as a table (keys of the first row
    define the columns)."""
    if not rows:
        return title or ""
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows], title=title)
