"""Backward-compatibility shim — the table renderers live in
:mod:`repro.report.tables` now.

The formatting logic used to be duplicated between this module and the
report layer; it has a single home in :mod:`repro.report.tables` (which
also owns the Markdown renderers and the structured
:class:`~repro.report.tables.ExperimentTable`).  Import from there in new
code; this module only re-exports the original three helpers so existing
imports keep working.
"""

from __future__ import annotations

from ..report.tables import fmt_float, format_row_dicts, format_table

__all__ = ["format_table", "format_row_dicts", "fmt_float"]
