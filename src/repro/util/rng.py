"""Random-number-generator normalisation.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an integer, a :class:`numpy.random.SeedSequence`,
or an existing :class:`numpy.random.Generator`.  :func:`as_generator` funnels
all of those into a ``Generator`` so downstream code has exactly one code
path.  Centralising this (rather than calling ``default_rng`` ad hoc) keeps
experiment scripts reproducible: a single integer pins every random draw in a
run.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["SeedLike", "as_generator", "spawn", "random_subset"]

#: Accepted types for the ``seed`` argument of stochastic functions.
SeedLike = Union[None, int, np.integer, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed spec.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` / ``SeedSequence`` to derive a
        fresh generator deterministically, or a ``Generator`` which is
        returned unchanged (so callers can thread one generator through a
        pipeline).

    Raises
    ------
    InvalidParameterError
        If ``seed`` is of an unsupported type.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise InvalidParameterError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by parallel experiment sweeps so each trial gets its own stream and
    results do not depend on scheduling order.
    """
    if n < 0:
        raise InvalidParameterError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]  # type: ignore[union-attr]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def random_subset(
    n: int, size: int, seed: SeedLike = None, *, exclude: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(n)`` without replacement.

    Parameters
    ----------
    n:
        Universe size.
    size:
        Number of indices to draw; must satisfy ``0 <= size <= n - len(exclude)``.
    exclude:
        Optional indices that must not be selected (e.g. already-faulty nodes).

    Returns
    -------
    numpy.ndarray
        Sorted ``int64`` array of selected indices.
    """
    rng = as_generator(seed)
    if exclude is None or len(exclude) == 0:
        if not 0 <= size <= n:
            raise InvalidParameterError(f"size {size} out of range for universe {n}")
        return np.sort(rng.choice(n, size=size, replace=False).astype(np.int64))
    mask = np.ones(n, dtype=bool)
    mask[np.asarray(exclude, dtype=np.int64)] = False
    pool = np.flatnonzero(mask)
    if size > pool.size:
        raise InvalidParameterError(
            f"requested {size} indices but only {pool.size} remain after exclusions"
        )
    return np.sort(rng.choice(pool, size=size, replace=False).astype(np.int64))
