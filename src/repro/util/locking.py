"""Advisory cross-process file locking (the store's write-safety primitive).

:class:`FileLock` wraps ``fcntl.flock`` on a dedicated lock file: any number
of processes (service workers, the HTTP server, a concurrently running
``repro cache prune``) serialise their critical sections by locking the same
path.  Properties that matter to callers:

* **Reentrant within a process.**  One :class:`FileLock` instance may be
  acquired recursively (``prune`` holds the lock while calling
  ``put_result``, which acquires it again); an internal
  :class:`threading.RLock` plus a depth counter means the ``flock`` syscall
  happens only on the outermost acquire.  The same :class:`threading.RLock`
  also serialises the service's HTTP handler threads against each other —
  ``flock`` alone would not, because a process's file locks are shared
  across its threads.
* **Crash-safe.**  Kernel advisory locks die with their holder: a worker
  killed mid-append releases the lock automatically, so a crash can never
  wedge the store (unlike lock *files* whose existence is the lock).
* **Degrades to process-local.**  On platforms without :mod:`fcntl`
  (Windows), the thread lock still works and cross-process exclusion is
  silently skipped — single-process usage is unaffected, and the POSIX-only
  service is the only multi-process writer.

Blocking is the only mode offered; store critical sections are a single
buffered write or a bounded compaction, so fairness/starvation machinery
would be dead weight.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - exercised only on POSIX (all CI platforms)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """A reentrant advisory lock on ``path`` (created on first acquire).

    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as d:
    ...     lock = FileLock(pathlib.Path(d) / ".lock")
    ...     with lock:
    ...         with lock:          # reentrant: no self-deadlock
    ...             lock.held
    True
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        """Whether the current process holds the lock right now."""
        return self._depth > 0

    def acquire(self) -> None:
        self._thread_lock.acquire()
        if self._depth == 0 and fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:  # pragma: no cover - e.g. flock-less filesystems
                os.close(fd)
            else:
                self._fd = fd
        self._depth += 1

    def release(self) -> None:
        if self._depth <= 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
