"""Input validation helpers shared across the library.

These are small and deliberately strict: experiments that silently accept a
probability of 1.3 or a negative budget produce plausible-looking garbage,
which is the worst failure mode for a reproduction study.  Each helper raises
:class:`~repro.errors.InvalidParameterError` with a message naming the
offending argument.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "require",
    "check_probability",
    "check_positive_int",
    "check_nonnegative_int",
    "check_fraction",
    "check_node_array",
    "check_in_range",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvalidParameterError` with ``message`` unless ``condition``."""
    if not condition:
        raise InvalidParameterError(message)


def check_probability(p: float, name: str = "p") -> float:
    """Validate that ``p`` is a real number in ``[0, 1]`` and return it as float."""
    try:
        value = float(p)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a real number, got {p!r}") from exc
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive_int(x: int, name: str = "value") -> int:
    """Validate that ``x`` is an integer >= 1 and return it as ``int``."""
    if not isinstance(x, (int, np.integer)) or isinstance(x, bool):
        raise InvalidParameterError(f"{name} must be an int, got {type(x).__name__}")
    if x < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {x}")
    return int(x)


def check_nonnegative_int(x: int, name: str = "value") -> int:
    """Validate that ``x`` is an integer >= 0 and return it as ``int``."""
    if not isinstance(x, (int, np.integer)) or isinstance(x, bool):
        raise InvalidParameterError(f"{name} must be an int, got {type(x).__name__}")
    if x < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {x}")
    return int(x)


def check_fraction(x: float, name: str = "fraction", *, closed_left: bool = False) -> float:
    """Validate a fraction in ``(0, 1]`` (or ``[0, 1]`` with ``closed_left``)."""
    try:
        value = float(x)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a real number, got {x!r}") from exc
    lo_ok = value >= 0.0 if closed_left else value > 0.0
    if not np.isfinite(value) or not lo_ok or value > 1.0:
        interval = "[0, 1]" if closed_left else "(0, 1]"
        raise InvalidParameterError(f"{name} must lie in {interval}, got {value}")
    return value


def check_in_range(
    x: float, lo: float, hi: float, name: str = "value", *, integer: bool = False
) -> float:
    """Validate ``lo <= x <= hi``; returns ``int(x)`` when ``integer``."""
    if integer and (not isinstance(x, (int, np.integer)) or isinstance(x, bool)):
        raise InvalidParameterError(f"{name} must be an int, got {type(x).__name__}")
    value = float(x)
    if not np.isfinite(value) or not lo <= value <= hi:
        raise InvalidParameterError(f"{name} must lie in [{lo}, {hi}], got {x}")
    return int(value) if integer else value


def check_node_array(
    nodes: Iterable[int] | np.ndarray,
    n: int,
    name: str = "nodes",
    *,
    allow_empty: bool = True,
    unique: bool = True,
) -> np.ndarray:
    """Validate and canonicalise an array of node ids against a graph of size ``n``.

    Returns a sorted ``int64`` array.  Checks bounds, integrality and
    (optionally) uniqueness.
    """
    arr = np.asarray(list(nodes) if not isinstance(nodes, np.ndarray) else nodes)
    if arr.size == 0:
        if not allow_empty:
            raise InvalidParameterError(f"{name} must be non-empty")
        return np.empty(0, dtype=np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == arr.astype(np.int64)):
            arr = arr.astype(np.int64)
        else:
            raise InvalidParameterError(f"{name} must contain integers")
    arr = arr.astype(np.int64).ravel()
    if arr.min(initial=0) < 0 or (arr.size and arr.max() >= n):
        raise InvalidParameterError(f"{name} contains ids outside [0, {n})")
    arr = np.sort(arr)
    if unique and arr.size > 1 and np.any(arr[1:] == arr[:-1]):
        raise InvalidParameterError(f"{name} contains duplicate node ids")
    return arr
