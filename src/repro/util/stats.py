"""Online (single-pass) statistics for streaming Monte-Carlo aggregation.

The sweep layer (:mod:`repro.api.sweeps`) consumes trial results one at a
time as :meth:`repro.api.session.Session.run_iter` streams them out of the
executor, so every estimator here is *online*: constant memory, one
``push`` per observation, queryable at any point mid-stream.

* :class:`OnlineStats` — Welford's algorithm for mean/variance (numerically
  stable single pass), with Chan's pairwise ``merge`` for combining
  partial aggregates.
* :func:`normal_interval` / :func:`wilson_interval` — confidence intervals
  for real-valued and Bernoulli metrics respectively.  The Wilson score
  interval stays honest at small ``n`` and near 0/1 rates, which is exactly
  where a sweep's adaptive allocator needs reliable widths.
* :class:`P2Quantile` — the P² (Jain & Chlamtac 1985) streaming quantile
  estimator: five markers, O(1) per observation, no sample storage.
* :func:`normal_ppf` — inverse standard-normal CDF (Acklam's rational
  approximation, |relative error| < 1.2e-9) so confidence levels translate
  to z-values without a scipy dependency.

Everything is pure python + math: these run inside tight result-consumer
loops where a numpy round-trip per observation would dominate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import InvalidParameterError

__all__ = [
    "OnlineStats",
    "P2Quantile",
    "normal_ppf",
    "z_value",
    "t_value",
    "normal_interval",
    "wilson_interval",
    "fit_isotonic",
    "fit_logistic",
    "logistic_value",
    "logistic_slope",
]


# --------------------------------------------------------------------- #
# Inverse normal CDF (no scipy)
# --------------------------------------------------------------------- #

# Acklam's coefficients for the rational approximations of Φ⁻¹.
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
          1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
          6.680131188771972e+01, -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
          -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
          3.754408661907416e+00)
_PPF_LOW, _PPF_HIGH = 0.02425, 1.0 - 0.02425


def normal_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Acklam's rational approximation with one Halley refinement step; the
    result is accurate to full double precision for ``p`` in (0, 1).

    >>> round(normal_ppf(0.975), 4)
    1.96
    >>> normal_ppf(0.5)
    0.0
    >>> round(normal_ppf(0.1), 4)
    -1.2816
    """
    if not 0.0 < p < 1.0:
        raise InvalidParameterError(f"normal_ppf needs p in (0, 1), got {p}")
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    if p < _PPF_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= _PPF_HIGH:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley step against the exact CDF (erfc is in libm).
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


def z_value(confidence: float) -> float:
    """Two-sided z-value for a confidence level (e.g. 0.95 → 1.9600).

    >>> round(z_value(0.95), 4)
    1.96
    >>> round(z_value(0.99), 4)
    2.5758
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return normal_ppf(0.5 + confidence / 2.0)


# --------------------------------------------------------------------- #
# Student-t quantile (no scipy)
# --------------------------------------------------------------------- #


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    x = df / (df + t * t)
    p = 0.5 * _betainc(df / 2.0, 0.5, x)
    return 1.0 - p if t >= 0 else p


def t_value(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value (e.g. ``t_value(0.95, 2)`` ≈ 4.30).

    The honest small-sample replacement for :func:`z_value`: the report
    pipeline uses it for the CI half-widths of mean estimates with a
    handful of trials, where the normal approximation is anti-conservative
    (``t/z`` ≈ 2.2 at 3 observations).  Computed scipy-free by bisecting
    the t CDF (regularised incomplete beta via a Lentz continued
    fraction); converges to :func:`z_value` as ``df`` grows.

    >>> round(t_value(0.95, 2), 3)
    4.303
    >>> round(t_value(0.95, 10), 3)
    2.228
    >>> abs(t_value(0.95, 10_000) - z_value(0.95)) < 1e-3
    True
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if df < 1:
        raise InvalidParameterError(f"df must be >= 1, got {df}")
    target = 0.5 + confidence / 2.0
    lo, hi = 0.0, 2.0
    while _t_cdf(hi, df) < target:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - unreachable for valid inputs
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_cdf(mid, df) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# --------------------------------------------------------------------- #
# Welford online mean / variance
# --------------------------------------------------------------------- #


class OnlineStats:
    """Single-pass mean/variance/extremes (Welford's algorithm).

    ``merge`` combines two partial aggregates exactly (Chan et al.), so
    shards accumulated independently — e.g. per worker — collapse into the
    same numbers one sequential pass would have produced, up to float
    round-off.

    >>> stats = OnlineStats()
    >>> for x in (1.0, 2.0, 3.0, 4.0):
    ...     stats.push(x)
    >>> stats.count, stats.mean, round(stats.std, 4)
    (4, 2.5, 1.291)
    >>> other = OnlineStats()
    >>> other.push(5.0)
    >>> stats.merge(other).count    # fold a worker's shard in place
    5
    >>> stats.mean
    3.0
    >>> lo, hi = stats.interval(0.95)
    >>> lo < stats.mean < hi
    True
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Fold ``other``'s observations into this aggregate (in place)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self.mean += delta * other.count / n
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 below two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def stderr(self) -> float:
        """Standard error of the mean; ``inf`` below two observations."""
        if self.count < 2:
            return math.inf
        return self.std / math.sqrt(self.count)

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (``(-inf, inf)`` if n < 2)."""
        half = self.halfwidth(confidence)
        return self.mean - half, self.mean + half

    def halfwidth(self, confidence: float = 0.95) -> float:
        """CI half-width — the adaptive allocator's tightness measure."""
        if self.count < 2:
            return math.inf
        return z_value(confidence) * self.stderr

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "OnlineStats":
        out = cls()
        out.count = int(d["count"])
        out.mean = float(d["mean"])
        out._m2 = float(d["m2"])
        if out.count > 0:
            out.minimum = float(d["min"])
            out.maximum = float(d["max"])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


def normal_interval(
    mean: float, std: float, n: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation CI for a mean given summary statistics.

    >>> lo, hi = normal_interval(0.5, 0.1, 100)
    >>> (round(lo, 4), round(hi, 4))
    (0.4804, 0.5196)
    >>> normal_interval(0.5, 0.1, 1)
    (-inf, inf)
    """
    if n < 2:
        return -math.inf, math.inf
    half = z_value(confidence) * std / math.sqrt(n)
    return mean - half, mean + half


def wilson_interval(
    successes: int, n: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a Bernoulli proportion.

    Unlike the Wald interval this never collapses to zero width at
    0/n or n/n successes, so adaptive allocation keeps sampling points
    whose rates merely *look* settled after a handful of trials.

    >>> lo, hi = wilson_interval(0, 3)      # 0/3 successes: still wide
    >>> (round(lo, 3), round(hi, 3))
    (0.0, 0.561)
    >>> lo, hi = wilson_interval(90, 100)
    >>> (round(lo, 3), round(hi, 3))
    (0.826, 0.945)
    """
    if n <= 0:
        return 0.0, 1.0
    if not 0 <= successes <= n:
        raise InvalidParameterError(
            f"successes must be in [0, {n}], got {successes}"
        )
    z = z_value(confidence)
    phat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (phat + z2 / (2.0 * n)) / denom
    half = z * math.sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


# --------------------------------------------------------------------- #
# P² streaming quantile estimator
# --------------------------------------------------------------------- #


@dataclass
class _Markers:
    q: List[float]       # marker heights
    n: List[float]       # actual marker positions (1-based)
    np_: List[float]     # desired marker positions
    dn: List[float]      # desired position increments


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the running ``p``-quantile in O(1) memory; below
    five observations the exact order statistic is interpolated from the
    buffered values.  Accuracy is within a few percent of the true
    quantile for the smooth unimodal metric distributions a sweep
    aggregates (γ fractions, retention ratios).

    >>> sketch = P2Quantile(0.5)
    >>> for x in range(1, 100):
    ...     sketch.push(float(x))
    >>> sketch.count
    99
    >>> abs(sketch.value - 50.0) < 2.0   # median of 1..99
    True
    """

    __slots__ = ("p", "_buf", "_m")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidParameterError(f"quantile p must be in (0, 1), got {p}")
        self.p = float(p)
        self._buf: List[float] = []
        self._m: Optional[_Markers] = None

    @property
    def count(self) -> int:
        if self._m is None:
            return len(self._buf)
        return int(self._m.n[4])

    def push(self, x: float) -> None:
        x = float(x)
        if self._m is None:
            self._buf.append(x)
            if len(self._buf) == 5:
                self._buf.sort()
                p = self.p
                self._m = _Markers(
                    q=list(self._buf),
                    n=[1.0, 2.0, 3.0, 4.0, 5.0],
                    np_=[1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
                    dn=[0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
                )
                self._buf = []
            return
        m = self._m
        q, n = m.q, m.n
        # locate the cell and clamp the extremes
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            m.np_[i] += m.dn[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            d = m.np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                qi = self._parabolic(i, d)
                if not q[i - 1] < qi < q[i + 1]:
                    qi = self._linear(i, d)
                q[i] = qi
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._m.q, self._m.n  # type: ignore[union-attr]
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._m.q, self._m.n  # type: ignore[union-attr]
        j = i + (1 if d > 0 else -1)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation)."""
        if self._m is not None:
            return self._m.q[2]
        if not self._buf:
            return math.nan
        ordered = sorted(self._buf)
        # linear interpolation of the order statistic on the small buffer
        pos = self.p * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


# --------------------------------------------------------------------- #
# Online curve fitting (the transition allocator's response models)
# --------------------------------------------------------------------- #


def fit_isotonic(
    ys: List[float],
    weights: Optional[List[float]] = None,
    *,
    increasing: bool = True,
) -> List[float]:
    """Weighted isotonic regression via pool-adjacent-violators (PAV).

    Returns the monotone sequence minimising the weighted squared error to
    ``ys`` — the standard nonparametric smoother for a response known to be
    monotone in the swept axis, like a disintegration curve γ(p).  Pure
    python, deterministic, O(n) per call.

    >>> fit_isotonic([1.0, 3.0, 2.0, 4.0])
    [1.0, 2.5, 2.5, 4.0]
    >>> fit_isotonic([1.0, 0.4, 0.6, 0.1], increasing=False)
    [1.0, 0.5, 0.5, 0.1]
    """
    n = len(ys)
    if n == 0:
        return []
    w = list(weights) if weights is not None else [1.0] * n
    if len(w) != n:
        raise InvalidParameterError(
            f"weights length {len(w)} != data length {n}"
        )
    if any(x <= 0 for x in w):
        raise InvalidParameterError("isotonic weights must be positive")
    seq = list(ys) if increasing else [-y for y in ys]
    # blocks of (weighted mean, total weight, member count)
    blocks: List[List[float]] = []
    for y, wt in zip(seq, w):
        blocks.append([float(y), float(wt), 1.0])
        while len(blocks) > 1 and blocks[-2][0] >= blocks[-1][0]:
            m2, w2, c2 = blocks.pop()
            m1, w1, c1 = blocks.pop()
            total = w1 + w2
            blocks.append([(m1 * w1 + m2 * w2) / total, total, c1 + c2])
    out: List[float] = []
    for mean, _, count in blocks:
        out.extend([mean] * int(count))
    return out if increasing else [-y for y in out]


def logistic_value(params: Tuple[float, float, float, float], x: float) -> float:
    """Evaluate the 4-parameter logistic ``lo + (hi-lo) / (1 + e^{k(x-x0)})``.

    With ``k > 0`` the curve *decreases* from ``hi`` to ``lo`` as ``x``
    grows — the natural orientation for a disintegration curve γ(p).
    """
    lo, hi, x0, k = params
    z = k * (x - x0)
    if z >= 0:
        e = math.exp(-z) if z < 700 else 0.0
        s = e / (1.0 + e)
    else:
        e = math.exp(z) if z > -700 else 0.0
        s = 1.0 / (1.0 + e)
    return lo + (hi - lo) * s


def logistic_slope(params: Tuple[float, float, float, float], x: float) -> float:
    """d/dx of :func:`logistic_value` at ``x`` (analytic, overflow-safe)."""
    lo, hi, x0, k = params
    z = abs(k * (x - x0))
    if z > 700:
        return 0.0
    e = math.exp(-z)
    s = e / (1.0 + e) ** 2
    return -(hi - lo) * k * s


def fit_logistic(
    xs: List[float],
    ys: List[float],
    weights: Optional[List[float]] = None,
) -> Tuple[float, float, float, float]:
    """Fit ``(lo, hi, x0, k)`` of :func:`logistic_value` to ``(xs, ys)``.

    Deterministic scipy-free least squares: asymptotes are pinned to the
    data extremes, then ``(x0, k)`` minimise the weighted SSE over a coarse
    grid refined by three shrinking passes — the same inputs always produce
    the same parameters, which is what lets adaptive allocators consume the
    fit without breaking replay determinism.  ``k`` is constrained positive
    (decreasing curve); pass ``-y`` values to fit an increasing response.

    >>> xs = [0.1 * i for i in range(11)]
    >>> truth = (0.0, 1.0, 0.5, 12.0)
    >>> fit = fit_logistic(xs, [logistic_value(truth, x) for x in xs])
    >>> abs(fit[2] - 0.5) < 0.05 and abs(fit[3] - 12.0) / 12.0 < 0.5
    True
    """
    n = len(xs)
    if n != len(ys):
        raise InvalidParameterError(
            f"xs length {n} != ys length {len(ys)}"
        )
    if n < 2:
        raise InvalidParameterError("fit_logistic needs at least two points")
    w = list(weights) if weights is not None else [1.0] * n
    if len(w) != n or any(x <= 0 for x in w):
        raise InvalidParameterError(
            "weights must match the data length and be positive"
        )
    lo, hi = min(ys), max(ys)
    x_lo, x_hi = min(xs), max(xs)
    span = max(x_hi - x_lo, 1e-12)

    def sse(x0: float, k: float) -> float:
        total = 0.0
        for x, y, wt in zip(xs, ys, w):
            d = logistic_value((lo, hi, x0, k), x) - y
            total += wt * d * d
        return total

    # Coarse grid: x0 across the observed range, k across 3 decades of
    # steepness relative to the axis span.
    best = (math.inf, x_lo + span / 2.0, 1.0 / span)
    k_grid = [10.0 ** e / span for e in (-0.5, 0.0, 0.5, 1.0, 1.5, 2.0)]
    for i in range(17):
        x0 = x_lo + span * i / 16.0
        for k in k_grid:
            err = sse(x0, k)
            if err < best[0] - 1e-15:
                best = (err, x0, k)
    # Three shrinking local refinements around the incumbent.
    dx, fk = span / 16.0, 10.0 ** 0.5
    for _ in range(3):
        _, bx, bk = best
        for x0 in (bx - dx, bx - dx / 2, bx, bx + dx / 2, bx + dx):
            for k in (bk / fk, bk / math.sqrt(fk), bk, bk * math.sqrt(fk), bk * fk):
                err = sse(x0, k)
                if err < best[0] - 1e-15:
                    best = (err, x0, k)
        dx /= 4.0
        fk = math.sqrt(fk)
    return (lo, hi, best[1], best[2])
