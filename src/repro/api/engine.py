"""Execution engine for declarative scenarios.

The engine turns :class:`~repro.api.specs.ScenarioSpec` data into
:class:`~repro.api.specs.RunResult` records:

* :func:`resolve_graph` builds the network named by a :class:`GraphSpec`
  through the generator registry (recursively — params may nest graph
  specs, e.g. a chain replacement's base graph);
* :func:`apply_fault_spec` resolves and applies a fault model, threading
  the run seed into stochastic models;
* :func:`analyze_graph` is the shared fault→prune→measure pipeline — both
  :func:`run` and :class:`repro.core.FaultExpansionAnalyzer` execute
  through it, so the imperative facade and the declarative API can never
  drift apart;
* :func:`run` executes one scenario; :func:`run_batch` executes many
  through a throwaway :class:`~repro.api.session.Session`, deduplicating
  baseline expansion estimates per (graph spec, mode) and fanning scenarios
  out across worker processes via the :mod:`repro.api.executors` layer.

Determinism: a scenario's randomness comes from explicit ``seed`` params
inside its specs (graph identity) plus the scenario ``seed`` (fault draws).
Identical ``(spec, seed)`` pairs therefore produce identical results — byte
for byte, modulo wall-clock ``timings`` — regardless of worker count or
scheduling order (compare with :meth:`RunResult.fingerprint`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SpecError
from ..expansion.estimate import (
    ExpansionEstimate,
    estimate_edge_expansion,
    estimate_node_expansion,
)
from ..faults.model import FaultScenario, apply_node_faults
from ..graphs.graph import Graph
from ..graphs.traversal import component_summary
from ..pruning.cutfinder import CutFinder
from ..pruning.prune import PruneResult
from .registry import FAULT_MODELS, FINDERS, GENERATORS, PRUNERS
from .specs import AnalysisSpec, FaultSpec, GraphSpec, RunResult, ScenarioSpec
from .store import BaselineKey, baseline_key

# Importing the component packages populates the registries; keep these at
# the bottom of the import block so the leaf modules above are ready first.
from .. import faults as _faults  # noqa: F401  (registration side effect)
from ..graphs import generators as _generators  # noqa: F401
from .. import pruning as _pruning  # noqa: F401

__all__ = [
    "resolve_graph",
    "resolve_finder",
    "apply_fault_spec",
    "baseline_expansion",
    "default_epsilon",
    "analyze_graph",
    "run",
    "run_batch",
]

# Late import to avoid a hard cycle with repro.core at module-load time.
from ..core.report import FaultToleranceReport  # noqa: E402


def resolve_finder(
    name: Optional[str], params: Optional[Dict[str, Any]] = None
) -> Optional[CutFinder]:
    """Build a cut-finder from its spec name (``None`` → pruner default).

    Finders resolve through the :data:`~repro.api.registry.FINDERS` registry
    like every other component, so third-party strategies plug in with
    ``@register_finder``.
    """
    if name is None:
        return None
    entry = FINDERS.get(name)
    try:
        return entry.fn(**(params or {}))
    except TypeError as exc:
        raise SpecError(f"finder {name!r}: {exc}") from exc


def resolve_graph(spec: GraphSpec) -> Tuple[Graph, Any]:
    """Build the network described by ``spec``.

    Returns ``(graph, raw)`` where ``raw`` is the generator's unmodified
    output — for most generators the :class:`Graph` itself, for composite
    generators a record with a ``.graph`` attribute plus bookkeeping (e.g.
    :class:`~repro.graphs.generators.chains.ChainReplacement`) that raw-mode
    fault models need.
    """
    entry = GENERATORS.get(spec.generator)
    if entry.seeded and "seed" not in spec.params:
        # Graph identity must be spec content: an unseeded stochastic
        # generator would give the baseline phase and the run phase two
        # *different* graphs for the same spec hash.
        raise SpecError(
            f"stochastic generator {spec.generator!r} requires an explicit "
            "integer 'seed' param — graph identity is part of the spec"
        )
    kwargs: Dict[str, Any] = {}
    for key, value in spec.params.items():
        if isinstance(value, GraphSpec):
            value, _ = resolve_graph(value)
        kwargs[key] = value
    try:
        raw = entry.fn(**kwargs)
    except TypeError as exc:
        raise SpecError(f"generator {spec.generator!r}: {exc}") from exc
    graph = raw.graph if hasattr(raw, "graph") else raw
    if not isinstance(graph, Graph):
        raise SpecError(
            f"generator {spec.generator!r} produced {type(raw).__name__}, "
            "expected a Graph or a record with a .graph attribute"
        )
    return graph, raw


def apply_fault_spec(
    graph: Graph,
    fault: Optional[FaultSpec],
    *,
    seed: Optional[int] = None,
    raw: Any = None,
) -> FaultScenario:
    """Resolve and apply a fault model (``None`` → the fault-free scenario).

    Stochastic models receive ``seed`` unless their params pin one
    explicitly; raw-mode models (``takes_raw``) get the generator's raw
    record instead of the plain graph.
    """
    if fault is None:
        return apply_node_faults(graph, np.empty(0, dtype=np.int64), kind="none")
    entry = FAULT_MODELS.get(fault.model)
    kwargs = dict(fault.params)
    if entry.seeded and "seed" not in kwargs:
        kwargs["seed"] = seed
    target = raw if entry.takes_raw and raw is not None else graph
    try:
        scenario = entry.fn(target, **kwargs)
    except TypeError as exc:
        raise SpecError(f"fault model {fault.model!r}: {exc}") from exc
    if not isinstance(scenario, FaultScenario):
        raise SpecError(
            f"fault model {fault.model!r} returned {type(scenario).__name__}, "
            "expected a FaultScenario"
        )
    return scenario


def baseline_expansion(
    graph: Graph, mode: str = "node", *, exact_threshold: int = 14
) -> ExpansionEstimate:
    """Fault-free expansion of ``graph`` in the given mode."""
    if mode == "node":
        return estimate_node_expansion(graph, exact_threshold=exact_threshold)
    return estimate_edge_expansion(graph, exact_threshold=exact_threshold)


def default_epsilon(graph: Graph, mode: str) -> float:
    """Theorem-default pruning epsilon: 1/2 for node mode (Theorem 2.1 with
    k = 2), ``1/(2δ)`` for edge mode (Theorem 3.4's admissible maximum)."""
    if mode == "node":
        return 0.5
    return 1.0 / (2.0 * max(graph.max_degree, 1))


def _identity_prune_result(faulty: Graph, mode: str) -> PruneResult:
    """A no-op PruneResult for pruner-less (percolation-style) analyses."""
    return PruneResult(
        input_graph=faulty,
        surviving_local=np.arange(faulty.n, dtype=np.int64),
        culled=[],
        threshold=0.0,
        kind=mode,
        iterations=0,
    )


def analyze_graph(
    graph: Graph,
    scenario: FaultScenario,
    *,
    mode: str = "node",
    pruner: Optional[str] = "prune",
    epsilon: Optional[float] = None,
    finder: Optional[CutFinder] = None,
    exact_threshold: int = 14,
    measure_expansion: bool = True,
    baseline: Optional[ExpansionEstimate] = None,
) -> FaultToleranceReport:
    """The shared pipeline: components → prune → measure → report.

    This is the single code path behind both ``repro.api.run`` and the
    :class:`~repro.core.FaultExpansionAnalyzer` facade.
    """
    if baseline is None:
        baseline = baseline_expansion(graph, mode, exact_threshold=exact_threshold)
    if epsilon is None:
        epsilon = default_epsilon(graph, mode)
    faulty = scenario.surviving
    components = component_summary(faulty)
    if pruner is None:
        result = _identity_prune_result(faulty, mode)
    else:
        prune_fn = PRUNERS.get(pruner).fn
        result = prune_fn(faulty, baseline.value, epsilon, finder=finder)
    h = result.surviving_graph
    surviving_est: Optional[ExpansionEstimate] = None
    if measure_expansion and h.n >= 2:
        surviving_est = baseline_expansion(h, mode, exact_threshold=exact_threshold)
    return FaultToleranceReport(
        scenario=scenario,
        baseline_expansion=baseline,
        faulty_components=components,
        prune_result=result,
        surviving_expansion=surviving_est,
        epsilon=float(epsilon),
    )


# --------------------------------------------------------------------- #
# run / run_batch
# --------------------------------------------------------------------- #


# The baseline-cache key (graph hash × mode × exact threshold) is defined
# once, in repro.api.store, and shared with the persistent baseline store.
_baseline_cache_key = baseline_key


def _package(
    spec: ScenarioSpec, report: FaultToleranceReport, timings: Dict[str, float]
) -> RunResult:
    prune_result = report.prune_result
    faulty = prune_result.input_graph
    surviving_original = faulty.original_ids[prune_result.surviving_local]
    retention = report.expansion_retention
    return RunResult(
        spec=spec,
        spec_hash=spec.hash(),
        seed=spec.seed,
        label=spec.label,
        graph_name=report.scenario.original.name,
        n_original=report.n_original,
        mode=spec.analysis.mode,
        fault_kind=report.scenario.kind,
        f=report.scenario.f,
        fault_fraction=float(report.scenario.fault_fraction),
        faulty_components=int(report.faulty_components.n_components),
        largest_faulty_component=int(report.faulty_components.largest_size),
        n_surviving=report.n_surviving,
        surviving_fraction=float(report.surviving_fraction),
        n_culled_sets=len(prune_result.culled),
        prune_iterations=int(prune_result.iterations),
        baseline_expansion=float(report.baseline_expansion.value),
        baseline_exact=bool(report.baseline_expansion.exact),
        surviving_expansion=(
            float(report.surviving_expansion.value)
            if report.surviving_expansion is not None
            else None
        ),
        expansion_retention=None if retention != retention else float(retention),
        surviving_nodes=tuple(int(i) for i in surviving_original),
        epsilon=float(report.epsilon),
        timings=timings,
    )


def run(
    spec: ScenarioSpec,
    *,
    baseline_cache: Optional[Dict[BaselineKey, ExpansionEstimate]] = None,
) -> RunResult:
    """Execute one scenario spec end-to-end.

    ``baseline_cache`` (keyed by graph-spec hash × mode × exact threshold)
    lets callers amortise the fault-free expansion estimate across scenarios
    sharing a graph; :func:`run_batch` manages one automatically.
    """
    if not isinstance(spec, ScenarioSpec):
        raise SpecError(f"run() takes a ScenarioSpec, got {type(spec).__name__}")
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    graph, raw = resolve_graph(spec.graph)
    timings["graph"] = time.perf_counter() - t0

    key = _baseline_cache_key(spec)
    t0 = time.perf_counter()
    if baseline_cache is not None and key in baseline_cache:
        baseline = baseline_cache[key]
    else:
        baseline = baseline_expansion(
            graph, spec.analysis.mode, exact_threshold=spec.analysis.exact_threshold
        )
        if baseline_cache is not None:
            baseline_cache[key] = baseline
    timings["baseline"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    scenario = apply_fault_spec(graph, spec.fault, seed=spec.seed, raw=raw)
    timings["fault"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = analyze_graph(
        graph,
        scenario,
        mode=spec.analysis.mode,
        pruner=spec.analysis.pruner,
        epsilon=spec.analysis.epsilon,
        finder=resolve_finder(spec.analysis.finder, spec.analysis.finder_params),
        exact_threshold=spec.analysis.exact_threshold,
        measure_expansion=spec.analysis.measure_expansion,
        baseline=baseline,
    )
    timings["analyze"] = time.perf_counter() - t0
    return _package(spec, report, timings)


def _baseline_task(spec: ScenarioSpec) -> ExpansionEstimate:
    """Picklable worker: fault-free expansion for one unique graph spec."""
    graph, _ = resolve_graph(spec.graph)
    return baseline_expansion(
        graph, spec.analysis.mode, exact_threshold=spec.analysis.exact_threshold
    )


def _run_task(payload: Tuple[ScenarioSpec, ExpansionEstimate]) -> RunResult:
    """Picklable worker: one scenario with its precomputed baseline."""
    spec, baseline = payload
    return run(spec, baseline_cache={_baseline_cache_key(spec): baseline})


def run_batch(
    specs: Iterable[ScenarioSpec],
    *,
    workers: Optional[int] = 1,
    baseline_cache: Optional[Dict[BaselineKey, ExpansionEstimate]] = None,
    store=None,
) -> List[RunResult]:
    """Execute many scenarios, deduplicating baselines and fanning out.

    This is a thin wrapper over :class:`repro.api.session.Session` — one
    session per call, torn down afterwards.  The session's batch phase 1
    computes the fault-free expansion once per unique ``(graph spec, mode,
    exact threshold)`` — typically the dominant shared cost of a sweep —
    and phase 2 runs every scenario with its baseline pre-resolved.  Both
    phases parallelise over processes when ``workers > 1`` (``None``/``0``
    = auto); results keep input order and are identical to a serial run.

    Pass the same ``baseline_cache`` dict to successive calls to carry the
    phase-1 estimates across batches (it is updated in place), or pass
    ``store`` (a path or :class:`~repro.api.store.ResultStore`) to persist
    and reuse full results across invocations.  For streaming results,
    cross-call cache reuse and hit/miss accounting, hold a ``Session``
    directly.
    """
    from .session import Session  # session builds on the engine; import late

    session = Session(store=store, workers=workers, baseline_cache=baseline_cache)
    return session.run_batch(specs)
