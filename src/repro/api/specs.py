"""Frozen, serialisable scenario specs — configuration as data.

A fault-tolerance scenario is fully described by four small records:

* :class:`GraphSpec` — which generator builds the network and with what
  parameters (parameters may nest further ``GraphSpec``s, e.g. the base
  graph of a chain replacement);
* :class:`FaultSpec` — which fault model hits it;
* :class:`AnalysisSpec` — how the survivors are pruned and measured;
* :class:`ScenarioSpec` — the three above plus the run seed and a label.

Every spec round-trips losslessly through plain dicts (``to_dict`` /
``from_dict``) and JSON (``to_json`` / ``from_json``), so scenarios can be
stored, diffed, shipped over the wire and replayed bit-for-bit.  The
execution side lives in :mod:`repro.api.engine`; registries resolving the
string names live in :mod:`repro.api.registry`.

:class:`RunResult` is the structured outcome of one executed scenario, with
provenance (spec hash, seed, per-stage timings).  Its :meth:`~RunResult.fingerprint`
excludes wall-clock timings, so two runs of the same ``(spec, seed)`` pair
compare equal even though they never take exactly the same time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import SpecError

__all__ = [
    "GraphSpec",
    "FaultSpec",
    "AnalysisSpec",
    "ScenarioSpec",
    "RunResult",
    "canonical_json",
    "spec_hash",
]

#: Dict-form marker for a nested graph spec inside generator params.
_GRAPH_KEY = "__graph__"


def _check_mapping(value: Any, what: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise SpecError(f"{what} must be a mapping, got {type(value).__name__}")
    out: Dict[str, Any] = {}
    for k, v in value.items():
        if not isinstance(k, str):
            raise SpecError(f"{what} keys must be strings, got {k!r}")
        out[k] = v
    return out


def _check_param_value(v: Any, what: str, *, allow_graph: bool = True) -> Any:
    """Normalise/validate one param value: JSON scalars, lists, string-keyed
    dicts, and (as a direct param value only) nested :class:`GraphSpec`s.

    Anything else — arbitrary objects, concrete graphs, generators — is
    rejected here rather than being silently stringified into a hash that
    would differ between processes.
    """
    if v is None or isinstance(v, (bool, str, int, float)):
        return v
    if isinstance(v, GraphSpec):
        if not allow_graph:
            raise SpecError(
                f"{what}: a nested GraphSpec is only allowed as a direct "
                "parameter value of GraphSpec.params (not in fault/finder "
                "params or inside lists/dicts)"
            )
        return v
    if isinstance(v, (list, tuple)):
        return [
            _check_param_value(x, what, allow_graph=False) for x in v
        ]
    if isinstance(v, Mapping):
        return {
            k: _check_param_value(x, what, allow_graph=False)
            for k, x in _check_mapping(v, what).items()
        }
    # numpy scalars and arrays: normalise to the python equivalent
    tolist = getattr(v, "tolist", None)
    if callable(tolist):
        try:
            return _check_param_value(tolist(), what, allow_graph=False)
        except (TypeError, ValueError):
            pass
    raise SpecError(
        f"{what}: value {v!r} of type {type(v).__name__} is not "
        "JSON-serialisable (allowed: None/bool/int/float/str, lists, "
        "string-keyed dicts, nested GraphSpec)"
    )


def _check_params(value: Any, what: str, *, allow_graph: bool = True) -> Dict[str, Any]:
    # Only GraphSpec.params can carry nested GraphSpecs — they are the only
    # params _params_to_dict knows how to serialise.
    return {
        k: _check_param_value(v, what, allow_graph=allow_graph)
        for k, v in _check_mapping(value, what).items()
    }


def _require(d: Mapping[str, Any], key: str, what: str) -> Any:
    if key not in d:
        raise SpecError(f"{what} dict is missing required key {key!r}")
    return d[key]


def _reject_unknown(d: Mapping[str, Any], allowed: Tuple[str, ...], what: str) -> None:
    unknown = sorted(set(d) - set(allowed))
    if unknown:
        raise SpecError(
            f"{what} dict has unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _params_to_dict(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Serialise params, expanding nested :class:`GraphSpec` values."""
    out: Dict[str, Any] = {}
    for k, v in params.items():
        out[k] = {_GRAPH_KEY: v.to_dict()} if isinstance(v, GraphSpec) else v
    return out


def _params_from_dict(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`_params_to_dict`."""
    out: Dict[str, Any] = {}
    for k, v in params.items():
        if isinstance(v, Mapping) and set(v) == {_GRAPH_KEY}:
            out[k] = GraphSpec.from_dict(v[_GRAPH_KEY])
        else:
            out[k] = v
    return out


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance.

    No ``default=`` fallback: anything non-JSON must fail loudly rather
    than hash by ``repr`` (which embeds memory addresses and would break
    the cross-process stability of :func:`spec_hash`).

    >>> canonical_json({"b": 1, "a": [True, None]})
    '{"a":[true,null],"b":1}'
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: "GraphSpec | FaultSpec | AnalysisSpec | ScenarioSpec") -> str:
    """Short content hash identifying a spec (stable across processes).

    >>> a = spec_hash(GraphSpec("torus", {"sides": 8, "d": 2}))
    >>> b = spec_hash(GraphSpec("torus", {"d": 2, "sides": 8}))
    >>> a == b          # parameter order never matters
    True
    >>> len(a)
    16
    """
    return hashlib.sha256(canonical_json(spec.to_dict()).encode()).hexdigest()[:16]


# --------------------------------------------------------------------- #
# GraphSpec
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=True)
class GraphSpec:
    """A network described by registry name + keyword parameters.

    ``params`` values must be JSON-serialisable scalars/lists or nested
    :class:`GraphSpec` instances (used e.g. for ``chain_replacement``'s
    ``base`` graph).  Random generators take an explicit integer ``seed``
    param — graph identity is part of the spec, never of the run seed.

    >>> spec = GraphSpec("torus", {"sides": 8, "d": 2})
    >>> spec.to_dict()
    {'generator': 'torus', 'params': {'sides': 8, 'd': 2}}
    >>> GraphSpec.from_dict(spec.to_dict()) == spec
    True
    >>> nested = GraphSpec("chain_replacement", {"base": spec, "k": 4})
    >>> GraphSpec.from_dict(nested.to_dict()).params["base"] == spec
    True
    """

    generator: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.generator or not isinstance(self.generator, str):
            raise SpecError(f"generator must be a non-empty string, got {self.generator!r}")
        object.__setattr__(self, "params", _check_params(self.params, "GraphSpec.params"))

    def to_dict(self) -> Dict[str, Any]:
        return {"generator": self.generator, "params": _params_to_dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "GraphSpec":
        d = _check_mapping(d, "GraphSpec")
        _reject_unknown(d, ("generator", "params"), "GraphSpec")
        return cls(
            generator=_require(d, "generator", "GraphSpec"),
            params=_params_from_dict(_check_mapping(d.get("params"), "GraphSpec.params")),
        )

    def key(self) -> str:
        """Content hash — the engine's baseline-cache key component."""
        return spec_hash(self)

    def __hash__(self) -> int:
        # The generated field-tuple hash would crash on the params dict;
        # hash by content instead, consistent with __eq__.
        return hash(canonical_json(self.to_dict()))


# --------------------------------------------------------------------- #
# FaultSpec
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=True)
class FaultSpec:
    """A fault model by registry name + parameters.

    Stochastic models (e.g. ``random_node``) draw from the scenario's run
    seed unless ``params`` pins an explicit ``seed`` of its own.

    >>> fault = FaultSpec("random_node", {"p": 0.05})
    >>> FaultSpec.from_dict(fault.to_dict()) == fault
    True
    """

    model: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.model or not isinstance(self.model, str):
            raise SpecError(f"model must be a non-empty string, got {self.model!r}")
        object.__setattr__(
            self, "params",
            _check_params(self.params, "FaultSpec.params", allow_graph=False),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"model": self.model, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSpec":
        d = _check_mapping(d, "FaultSpec")
        _reject_unknown(d, ("model", "params"), "FaultSpec")
        return cls(
            model=_require(d, "model", "FaultSpec"),
            params=_check_mapping(d.get("params"), "FaultSpec.params"),
        )

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


# --------------------------------------------------------------------- #
# AnalysisSpec
# --------------------------------------------------------------------- #

_MODES = ("node", "edge")


@dataclass(frozen=True, eq=True)
class AnalysisSpec:
    """How the faulty network is pruned and measured.

    ``mode`` selects node vs edge expansion (the paper's Theorem 2.1 vs 3.4
    pipelines).  ``pruner`` names a registered pruning algorithm, or ``None``
    to skip pruning (percolation-style measurements on the raw faulty
    network).  ``epsilon=None`` uses the analyzer's theorem defaults.

    >>> spec = AnalysisSpec(mode="edge", pruner="prune2", epsilon=0.25)
    >>> AnalysisSpec.from_dict(spec.to_dict()) == spec
    True
    >>> AnalysisSpec(mode="sideways")
    Traceback (most recent call last):
        ...
    repro.errors.SpecError: mode must be one of ('node', 'edge'), got 'sideways'
    """

    mode: str = "node"
    pruner: Optional[str] = "prune"
    epsilon: Optional[float] = None
    finder: Optional[str] = None
    finder_params: Dict[str, Any] = field(default_factory=dict)
    exact_threshold: int = 14
    #: Skip the (possibly expensive) expansion estimate on the survivors;
    #: component statistics are always reported.
    measure_expansion: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SpecError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.epsilon is not None and not 0 < float(self.epsilon) <= 1:
            raise SpecError(f"epsilon must be in (0, 1], got {self.epsilon}")
        object.__setattr__(
            self, "finder_params",
            _check_params(
                self.finder_params, "AnalysisSpec.finder_params", allow_graph=False
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "pruner": self.pruner,
            "epsilon": self.epsilon,
            "finder": self.finder,
            "finder_params": dict(self.finder_params),
            "exact_threshold": self.exact_threshold,
            "measure_expansion": self.measure_expansion,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AnalysisSpec":
        d = _check_mapping(d, "AnalysisSpec")
        _reject_unknown(
            d,
            ("mode", "pruner", "epsilon", "finder", "finder_params",
             "exact_threshold", "measure_expansion"),
            "AnalysisSpec",
        )
        return cls(
            mode=d.get("mode", "node"),
            pruner=d.get("pruner", "prune"),
            epsilon=d.get("epsilon"),
            finder=d.get("finder"),
            finder_params=_check_mapping(
                d.get("finder_params"), "AnalysisSpec.finder_params"
            ),
            exact_threshold=int(d.get("exact_threshold", 14)),
            measure_expansion=bool(d.get("measure_expansion", True)),
        )

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


# --------------------------------------------------------------------- #
# ScenarioSpec
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=True)
class ScenarioSpec:
    """One complete runnable scenario: graph × fault × analysis × seed.

    >>> spec = ScenarioSpec(
    ...     graph=GraphSpec("torus", {"sides": 8, "d": 2}),
    ...     fault=FaultSpec("random_node", {"p": 0.1}),
    ...     seed=7,
    ... )
    >>> ScenarioSpec.from_json(spec.to_json()) == spec
    True
    >>> spec.with_seed(8).seed
    8
    >>> spec.hash() == spec.with_seed(8).hash()  # the seed is part of identity
    False
    """

    graph: GraphSpec
    fault: Optional[FaultSpec] = None
    analysis: AnalysisSpec = field(default_factory=AnalysisSpec)
    seed: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, GraphSpec):
            raise SpecError("ScenarioSpec.graph must be a GraphSpec")
        if self.fault is not None and not isinstance(self.fault, FaultSpec):
            raise SpecError("ScenarioSpec.fault must be a FaultSpec or None")
        if not isinstance(self.analysis, AnalysisSpec):
            raise SpecError("ScenarioSpec.analysis must be an AnalysisSpec")
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int or None, got {self.seed!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph.to_dict(),
            "fault": self.fault.to_dict() if self.fault is not None else None,
            "analysis": self.analysis.to_dict(),
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ScenarioSpec":
        d = _check_mapping(d, "ScenarioSpec")
        _reject_unknown(d, ("graph", "fault", "analysis", "seed", "label"),
                        "ScenarioSpec")
        fault = d.get("fault")
        analysis = d.get("analysis")
        return cls(
            graph=GraphSpec.from_dict(_require(d, "graph", "ScenarioSpec")),
            fault=FaultSpec.from_dict(fault) if fault is not None else None,
            analysis=(
                AnalysisSpec.from_dict(analysis)
                if analysis is not None
                else AnalysisSpec()
            ),
            seed=d.get("seed"),
            label=str(d.get("label", "")),
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        try:
            d = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(d)

    def hash(self) -> str:
        # Memoised (specs are frozen): every trial is hashed at least
        # twice — engine packaging and store keying — at sweep scale.
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = spec_hash(self)
            object.__setattr__(self, "_hash", cached)
        return cached

    def with_seed(self, seed: Optional[int]) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


# --------------------------------------------------------------------- #
# RunResult
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=True)
class RunResult:
    """Structured outcome of one executed scenario, with provenance.

    All fields are plain JSON types so results serialise as easily as the
    specs that produced them.  ``surviving_nodes`` are node ids of the
    *original* network, so post-processing can rebuild ``H`` via
    ``graph.subgraph(...)`` without re-running the pipeline.
    """

    spec: ScenarioSpec
    spec_hash: str
    seed: Optional[int]
    label: str
    graph_name: str
    n_original: int
    mode: str
    # fault stage
    fault_kind: str
    f: int
    fault_fraction: float
    faulty_components: int
    largest_faulty_component: int
    # prune + measurement stage
    n_surviving: int
    surviving_fraction: float
    n_culled_sets: int
    prune_iterations: int
    baseline_expansion: float
    baseline_exact: bool
    surviving_expansion: Optional[float]
    expansion_retention: Optional[float]
    surviving_nodes: Tuple[int, ...]
    epsilon: float
    # wall-clock provenance (excluded from fingerprint/equality-of-record)
    timings: Dict[str, float] = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        # Built field by field (declaration order) rather than through
        # dataclasses.asdict: asdict deep-copies recursively, which at
        # sweep scale made result serialisation — on the path of every
        # fingerprint and store append — the dominant per-trial cost.
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "label": self.label,
            "graph_name": self.graph_name,
            "n_original": self.n_original,
            "mode": self.mode,
            "fault_kind": self.fault_kind,
            "f": self.f,
            "fault_fraction": self.fault_fraction,
            "faulty_components": self.faulty_components,
            "largest_faulty_component": self.largest_faulty_component,
            "n_surviving": self.n_surviving,
            "surviving_fraction": self.surviving_fraction,
            "n_culled_sets": self.n_culled_sets,
            "prune_iterations": self.prune_iterations,
            "baseline_expansion": self.baseline_expansion,
            "baseline_exact": self.baseline_exact,
            "surviving_expansion": self.surviving_expansion,
            "expansion_retention": self.expansion_retention,
            "surviving_nodes": list(self.surviving_nodes),
            "epsilon": self.epsilon,
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunResult":
        d = dict(_check_mapping(d, "RunResult"))
        d["spec"] = ScenarioSpec.from_dict(_require(d, "spec", "RunResult"))
        d["surviving_nodes"] = tuple(int(i) for i in d.get("surviving_nodes", ()))
        d["timings"] = _check_mapping(d.get("timings"), "RunResult.timings")
        try:
            return cls(**d)
        except TypeError as exc:
            raise SpecError(f"bad RunResult dict: {exc}") from exc

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        return cls.from_dict(json.loads(payload))

    def fingerprint(self) -> str:
        """Content hash of everything *except* wall-clock timings —
        identical ``(spec, seed)`` runs produce identical fingerprints.

        Memoised: the record is frozen and timings are excluded, so the
        hash is a pure function of the content (the sweep layer and the
        store both fingerprint every result).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        d = self.to_dict()
        d.pop("timings", None)
        value = hashlib.sha256(canonical_json(d).encode()).hexdigest()[:16]
        object.__setattr__(self, "_fingerprint", value)
        return value

    def row(self) -> Dict[str, Any]:
        """Flat row-dict for :func:`repro.util.tables.format_row_dicts`."""
        return {
            "label": self.label or self.spec_hash,
            "graph": self.graph_name,
            "n": self.n_original,
            "fault": self.fault_kind,
            "f": self.f,
            "H_size": self.n_surviving,
            "H_frac": round(self.surviving_fraction, 4),
            "alpha_G": round(self.baseline_expansion, 4),
            "alpha_H": (
                round(self.surviving_expansion, 4)
                if self.surviving_expansion is not None
                else "n/a"
            ),
            "retention": (
                round(self.expansion_retention, 4)
                if self.expansion_retention is not None
                else "n/a"
            ),
            "sec": round(sum(self.timings.values()), 3),
        }
