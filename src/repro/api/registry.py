"""String-keyed component registries behind the declarative scenario API.

Specs (:mod:`repro.api.specs`) name graph generators, fault models and
pruners by string; these registries map those names back to the callables
implementing them.  Components self-register at import time via the
decorators below — the decorators return the function unchanged, so
registration adds zero call overhead and the plain Python API is untouched:

    @register_generator("hypercube")
    def hypercube(d: int) -> Graph: ...

This module is a deliberate leaf (stdlib + :mod:`repro.errors` only) so any
component module can import it without creating an import cycle.  The engine
(:mod:`repro.api.engine`) imports the component packages to guarantee the
registries are populated before any lookup.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from ..errors import InvalidParameterError, UnknownComponentError

__all__ = [
    "Registry",
    "RegistryEntry",
    "GENERATORS",
    "FAULT_MODELS",
    "PRUNERS",
    "FINDERS",
    "register_generator",
    "register_fault_model",
    "register_pruner",
    "register_finder",
    "list_generators",
    "list_fault_models",
    "list_pruners",
    "list_finders",
]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component plus the metadata the engine needs."""

    name: str
    fn: Callable[..., Any]
    #: The component accepts a ``seed`` keyword (engine threads run seeds in).
    seeded: bool = False
    #: Fault model wants the raw generator output (e.g. ``ChainReplacement``
    #: with its chain bookkeeping) instead of the unwrapped ``Graph``.
    takes_raw: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """A named string → callable table with decorator-style registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration -------------------------------------------------- #

    def register(
        self,
        name: str,
        fn: Optional[Callable[..., Any]] = None,
        *,
        takes_raw: bool = False,
        **extra: Any,
    ):
        """Register ``fn`` under ``name``; usable as a decorator.

        ``seeded`` is inferred from the signature (a ``seed`` parameter) so
        the engine knows whether to thread a run seed through the call.
        """

        def _add(func: Callable[..., Any]) -> Callable[..., Any]:
            if not name or not isinstance(name, str):
                raise InvalidParameterError(
                    f"{self.kind} registry key must be a non-empty string, got {name!r}"
                )
            if name in self._entries and self._entries[name].fn is not func:
                raise InvalidParameterError(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {self._entries[name].fn.__qualname__})"
                )
            try:
                seeded = "seed" in inspect.signature(func).parameters
            except (TypeError, ValueError):
                seeded = False
            self._entries[name] = RegistryEntry(
                name=name, fn=func, seeded=seeded, takes_raw=takes_raw, extra=extra
            )
            return func

        return _add if fn is None else _add(fn)

    # -- lookup -------------------------------------------------------- #

    def get(self, name: str) -> RegistryEntry:
        """Look up ``name``, raising a helpful error listing what exists."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<registry empty>"
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def describe(self) -> list[Dict[str, Any]]:
        """Metadata rows for every entry — the ``repro registry`` listing."""
        rows: list[Dict[str, Any]] = []
        for name in sorted(self._entries):
            entry = self._entries[name]
            fn = entry.fn
            try:
                sig = inspect.signature(fn)
                signature = str(sig.replace(return_annotation=inspect.Signature.empty))
            except (TypeError, ValueError):
                signature = "(...)"
            doc = inspect.getdoc(fn) or ""
            rows.append(
                {
                    "name": name,
                    "kind": self.kind,
                    "seeded": entry.seeded,
                    "takes_raw": entry.takes_raw,
                    "signature": signature,
                    "summary": doc.splitlines()[0] if doc else "",
                    "qualname": f"{fn.__module__}.{fn.__qualname__}",
                    **entry.extra,
                }
            )
        return rows


#: Graph generators: ``fn(**params) -> Graph`` (or a record with a ``.graph``).
GENERATORS = Registry("generator")
#: Fault models: ``fn(graph, **params) -> FaultScenario``.
FAULT_MODELS = Registry("fault model")
#: Pruners: ``fn(graph, alpha, epsilon, *, finder=None) -> PruneResult``.
PRUNERS = Registry("pruner")
#: Cut finders: ``cls(**params)`` → object with the
#: :class:`repro.pruning.cutfinder.CutFinder` ``find`` interface.
FINDERS = Registry("finder")


def register_generator(name: str, **extra: Any):
    """Class/function decorator registering a graph generator."""
    return GENERATORS.register(name, **extra)


def register_fault_model(name: str, *, takes_raw: bool = False, **extra: Any):
    """Decorator registering a fault model (``takes_raw`` for models that
    need the generator's raw record, e.g. the chain-centre attack)."""
    return FAULT_MODELS.register(name, takes_raw=takes_raw, **extra)


def register_pruner(name: str, **extra: Any):
    """Decorator registering a pruning algorithm."""
    return PRUNERS.register(name, **extra)


def register_finder(name: str, **extra: Any):
    """Class decorator registering a cut-finder strategy (the Prune set
    search); ``AnalysisSpec.finder`` names resolve through this table."""
    return FINDERS.register(name, **extra)


def _ensure_populated() -> None:
    """Import the component packages so every registry is filled.

    Deliberately lazy (inside a function): this module is an import-graph
    leaf the components themselves import at definition time.
    """
    import importlib

    for module in ("repro.graphs.generators", "repro.faults", "repro.pruning"):
        importlib.import_module(module)


def list_generators() -> list[Dict[str, Any]]:
    """Metadata for every registered graph generator."""
    _ensure_populated()
    return GENERATORS.describe()


def list_fault_models() -> list[Dict[str, Any]]:
    """Metadata for every registered fault model."""
    _ensure_populated()
    return FAULT_MODELS.describe()


def list_pruners() -> list[Dict[str, Any]]:
    """Metadata for every registered pruning algorithm."""
    _ensure_populated()
    return PRUNERS.describe()


def list_finders() -> list[Dict[str, Any]]:
    """Metadata for every registered cut-finder strategy."""
    _ensure_populated()
    return FINDERS.describe()
