"""The session front door: cached, streaming, resumable scenario execution.

A :class:`Session` ties together the three execution subsystems:

* the **engine** (:mod:`repro.api.engine`) — how one scenario is executed;
* an **executor** (:mod:`repro.api.executors`) — how a batch is scheduled
  (serial loop or process pool, one interface);
* an optional **result store** (:mod:`repro.api.store`) — content-addressed
  persistence keyed by scenario hash, so identical scenarios are never
  executed twice, across calls *and* across process lifetimes.

The cache logic leans entirely on the API's determinism contract: a
scenario's randomness comes from explicit seeds inside its specs (graph
identity) plus the scenario ``seed`` (fault draws), and
:func:`~repro.api.engine.resolve_graph` rejects unseeded stochastic
generators.  Identical ``(spec, seed)`` therefore ⇒ identical result, which
is exactly what makes ``spec.hash()`` a sound cache key — a stored result is
bit-for-bit substitutable for a fresh execution (modulo wall-clock
``timings``, which are excluded from fingerprints).

Three consequences fall out:

* **warm batches short-circuit** — a fully cached batch performs zero
  engine calls, including the baseline phase;
* **interrupted sweeps resume** — every completed scenario is appended to
  the store the moment it finishes (:meth:`Session.run_iter` streams
  results in completion order), so a crashed or killed sweep restarts from
  whatever already landed on disk;
* **parallelism is invisible** — ``workers=1`` and ``workers=N`` produce
  identical fingerprints, cached or fresh.

:func:`repro.api.engine.run_batch` is a thin wrapper over a default
(storeless) ``Session``; experiments and the CLI build sessions explicitly.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import SpecError
from ..expansion.estimate import ExpansionEstimate
from ..graphs.graph import Graph
from .executors import Executor, make_executor
from .specs import RunResult, ScenarioSpec
from .store import BaselineKey, ResultStore, baseline_key

# The engine import populates the component registries as a side effect, so
# a Session is runnable the moment it is constructed.
from . import engine as _engine

__all__ = ["Session"]


def _validate_specs(specs: Iterable[ScenarioSpec]) -> List[ScenarioSpec]:
    spec_list = list(specs)
    for spec in spec_list:
        if not isinstance(spec, ScenarioSpec):
            raise SpecError(
                f"expected ScenarioSpecs, got {type(spec).__name__}"
            )
    return spec_list


class Session:
    """Execution context with a baseline cache, an executor and (optionally)
    a persistent result store.

    Parameters
    ----------
    store:
        ``None`` (no persistence), a path (a :class:`ResultStore` is opened
        there), or a ready :class:`ResultStore`.
    workers:
        Parallelism degree for the default executor: ``1`` = serial,
        ``None``/``0`` = auto-sized process pool, ``N`` = pool of N.
    executor:
        Explicit :class:`~repro.api.executors.Executor`; overrides
        ``workers``.
    baseline_cache:
        In-memory fault-free-estimate cache, keyed by
        ``(graph hash, mode, exact_threshold)``.  Pass a shared dict to
        carry estimates across sessions; it is updated in place.
    refresh:
        When true, ignore existing store entries (recompute everything) but
        still write results through — a forced cache rebuild.
    batch:
        Default execution strategy for homogeneous trial groups (the sweep
        layer reads it): ``"auto"`` — batch eligible multi-trial groups
        through :mod:`repro.batch` (results are bit-identical to scalar
        execution, so this is on by default); ``True`` — batch every
        eligible group, even singletons; ``False`` — always scalar.
    backend:
        Array backend for the batched kernels: ``"auto"`` (numba when
        importable, else numpy), ``"numpy"``, ``"numba"`` (clean fallback
        to numpy when numba is absent), or ``None`` to defer to the
        ``REPRO_BACKEND`` environment variable.  Backends are
        bit-identical, so this only affects speed.

    A storeless serial session is the cheapest way to execute specs
    programmatically; identical scenarios are deduplicated per session run
    only when a store is attached:

    >>> from repro.api.specs import FaultSpec, GraphSpec, ScenarioSpec
    >>> session = Session()                        # in-process, no store
    >>> spec = ScenarioSpec(
    ...     graph=GraphSpec("cycle_graph", {"n": 12}),
    ...     fault=FaultSpec("random_node", {"p": 0.2}),
    ...     seed=3,
    ... )
    >>> result = session.run(spec)
    >>> (result.n_original, result.graph_name)
    (12, 'C12')
    >>> session.run(spec).fingerprint() == result.fingerprint()  # deterministic
    True
    >>> (session.hits, session.misses)             # no store → all misses
    (0, 2)
    """

    def __init__(
        self,
        store: Union[None, str, os.PathLike, ResultStore] = None,
        *,
        workers: Optional[int] = 1,
        executor: Optional[Executor] = None,
        baseline_cache: Optional[Dict[BaselineKey, ExpansionEstimate]] = None,
        refresh: bool = False,
        batch: Union[str, bool] = "auto",
        backend: Optional[str] = None,
    ) -> None:
        if store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.executor = executor if executor is not None else make_executor(workers)
        self.refresh = refresh
        if not (batch is True or batch is False or batch == "auto"):
            raise SpecError(
                f"batch must be 'auto', True or False, got {batch!r}"
            )
        self.batch = batch
        from ..backend import resolve_backend  # validates the name eagerly

        self.backend = backend
        self._backend = resolve_backend(backend)
        self._baselines = baseline_cache if baseline_cache is not None else {}
        #: Scenarios served from the store / actually executed, cumulatively.
        self.hits = 0
        self.misses = 0

    # -- cache plumbing ------------------------------------------------- #

    def lookup(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The cached result for ``spec`` (refresh mode always misses)."""
        if self.store is None or self.refresh:
            return None
        return self.store.get_result(spec)

    def _record(self, result: RunResult) -> None:
        if self.store is not None:
            self.store.put_result(result)

    def _ensure_baselines(self, specs: List[ScenarioSpec]) -> None:
        """Resolve the fault-free estimate for every unique baseline key in
        ``specs``: memory cache, then store, then one computation per key
        (fanned out through the executor)."""
        missing: Dict[BaselineKey, ScenarioSpec] = {}
        for spec in specs:
            key = baseline_key(spec)
            if key in self._baselines:
                continue
            if self.store is not None and not self.refresh:
                stored = self.store.get_baseline(key)
                if stored is not None:
                    self._baselines[key] = stored
                    continue
            missing.setdefault(key, spec)
        if not missing:
            return
        estimates = self.executor.map(_engine._baseline_task, list(missing.values()))
        for key, estimate in zip(missing, estimates):
            self._baselines[key] = estimate
            if self.store is not None:
                self.store.put_baseline(key, estimate)

    # -- execution ------------------------------------------------------ #

    def run(self, spec: ScenarioSpec) -> RunResult:
        """Execute (or serve from the store) a single scenario."""
        (spec,) = _validate_specs([spec])
        cached = self.lookup(spec)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        self._ensure_baselines([spec])
        result = _engine.run(spec, baseline_cache=self._baselines)
        self._record(result)
        return result

    def run_batch(self, specs: Iterable[ScenarioSpec]) -> List[RunResult]:
        """Execute a batch; results in input order (see :meth:`run_iter`)."""
        return list(self.run_iter(specs))

    def run_iter(
        self, specs: Iterable[ScenarioSpec], *, ordered: bool = True
    ) -> Iterator[RunResult]:
        """Stream results as scenarios complete instead of barriering.

        Cached scenarios are served without any execution (a fully warm
        batch performs zero engine calls — no baseline phase either); the
        rest are dispatched through the executor, and every computed result
        is appended to the store *before* it is yielded, so an interrupted
        consumer loses nothing that was yielded.  Closing the iterator
        mid-sweep cancels still-queued scenarios promptly; at most the
        handful in flight at that moment are recomputed on resume.

        ``ordered=True`` (default) yields input order — each result is
        yielded as soon as it *and all its predecessors* are available.
        ``ordered=False`` yields cached results first, then computed ones in
        completion order (lowest latency to first result).
        """
        spec_list = _validate_specs(specs)
        done: Dict[int, RunResult] = {}
        pending: List[Tuple[int, ScenarioSpec]] = []
        for i, spec in enumerate(spec_list):
            cached = self.lookup(spec)
            if cached is not None:
                done[i] = cached
            else:
                pending.append((i, spec))
        self.hits += len(done)
        self.misses += len(pending)
        return self._merge_stream(spec_list, done, pending, ordered)

    def _merge_stream(
        self,
        spec_list: List[ScenarioSpec],
        done: Dict[int, RunResult],
        pending: List[Tuple[int, ScenarioSpec]],
        ordered: bool,
    ) -> Iterator[RunResult]:
        if pending:
            self._ensure_baselines([spec for _, spec in pending])
            payloads = [
                (spec, self._baselines[baseline_key(spec)]) for _, spec in pending
            ]
            stream = self.executor.imap(_engine._run_task, payloads)
        else:
            stream = iter(())
        indices = [i for i, _ in pending]
        if not ordered:
            for i in sorted(done):
                yield done[i]
            for _, result in stream:
                self._record(result)
                yield result
            return
        next_i = 0
        while next_i in done:  # cached prefix: yield before touching the stream
            yield done.pop(next_i)
            next_i += 1
        for k, result in stream:
            self._record(result)
            done[indices[k]] = result
            while next_i in done:
                yield done.pop(next_i)
                next_i += 1
        while next_i in done:
            yield done.pop(next_i)
            next_i += 1

    def run_trials_batched(self, specs: Iterable[ScenarioSpec]) -> List[RunResult]:
        """Execute homogeneous trials through the batched engine.

        ``specs`` must share one (graph, fault, analysis) and differ only in
        seed/label — the shape of one sweep grid point.  Store semantics are
        identical to :meth:`run_iter`: cached trials are served without
        execution, the rest are evaluated as **one** mask-matrix batch
        (:func:`repro.batch.engine.run_trials`) and appended to the store;
        hit/miss counters advance exactly as the scalar path's would, and
        the results (input order) are bit-identical to scalar execution.
        """
        from ..batch import engine as _batch_engine  # late: batch builds on api

        spec_list = _validate_specs(specs)
        if not spec_list:
            return []
        results: List[Optional[RunResult]] = []
        missing: List[Tuple[int, ScenarioSpec]] = []
        for i, spec in enumerate(spec_list):
            cached = self.lookup(spec)
            results.append(cached)
            if cached is None:
                missing.append((i, spec))
        self.hits += len(spec_list) - len(missing)
        self.misses += len(missing)
        if missing:
            missing_specs = [spec for _, spec in missing]
            self._ensure_baselines(missing_specs)
            baseline = self._baselines[baseline_key(missing_specs[0])]
            for (i, _), result in zip(
                missing,
                _batch_engine.run_trials(
                    missing_specs, baseline=baseline, backend=self._backend
                ),
            ):
                self._record(result)
                results[i] = result
        return results  # type: ignore[return-value]  # every slot is filled

    def run_points_batched(
        self, groups: List[List[ScenarioSpec]]
    ) -> List[List[RunResult]]:
        """Execute several compatible grid points as stacked batches.

        ``groups`` holds one homogeneous spec list per grid point; all
        groups must share a :func:`repro.batch.engine.stack_key` (same
        graph + analysis; fault models may differ).  Store semantics match
        :meth:`run_trials_batched` per group — cached trials are served
        without execution, the rest are evaluated by **one**
        :func:`repro.batch.engine.run_points` call stacking every group's
        missing trials into shared mask tensors — and each record is
        bit-identical to the per-point path, so sweep fingerprints are
        unchanged.  Returns one result list per group, in input order.
        """
        from ..batch import engine as _batch_engine  # late: batch builds on api

        group_lists = [_validate_specs(g) for g in groups]
        results: List[List[Optional[RunResult]]] = []
        missing: List[Tuple[int, List[int], List[ScenarioSpec]]] = []
        n_specs = 0
        n_missing = 0
        for gi, spec_list in enumerate(group_lists):
            slots: List[Optional[RunResult]] = []
            idxs: List[int] = []
            for i, spec in enumerate(spec_list):
                cached = self.lookup(spec)
                slots.append(cached)
                if cached is None:
                    idxs.append(i)
            results.append(slots)
            n_specs += len(spec_list)
            if idxs:
                missing.append((gi, idxs, [spec_list[i] for i in idxs]))
                n_missing += len(idxs)
        self.hits += n_specs - n_missing
        self.misses += n_missing
        if missing:
            flat = [spec for _, _, specs in missing for spec in specs]
            self._ensure_baselines(flat)
            baseline = self._baselines[baseline_key(flat[0])]
            computed = _batch_engine.run_points(
                [specs for _, _, specs in missing],
                baseline=baseline,
                backend=self._backend,
            )
            for (gi, idxs, _), group_results in zip(missing, computed):
                for i, result in zip(idxs, group_results):
                    self._record(result)
                    results[gi][i] = result
        return results  # type: ignore[return-value]  # every slot is filled

    # -- conveniences ---------------------------------------------------- #

    def resolve_graph(self, spec) -> Tuple[Graph, Any]:
        """Resolve a :class:`GraphSpec` through the generator registry (the
        session-level alias of :func:`repro.api.engine.resolve_graph`)."""
        return _engine.resolve_graph(spec)

    def stats(self):
        """Store statistics (:class:`~repro.api.store.StoreStats`), or
        ``None`` for a storeless session."""
        return None if self.store is None else self.store.stats()
