"""Content-addressed on-disk store for scenario results and baselines.

:class:`ResultStore` is the persistence layer behind
:class:`repro.api.session.Session`.  Two append-only JSONL files live in the
store directory:

* ``results.jsonl`` — one :class:`~repro.api.specs.RunResult` per line,
  keyed by the scenario's content hash (:meth:`ScenarioSpec.hash`, which
  covers graph + fault + analysis + seed).  The determinism contract —
  identical ``(spec, seed)`` ⇒ identical result — is what makes the key
  sound: a hit can be substituted for execution byte-for-byte.
* ``baselines.jsonl`` — fault-free :class:`ExpansionEstimate`s keyed by
  ``(GraphSpec.key(), mode, exact_threshold)``, so a warm store skips even
  the baseline phase of a batch.
* ``tables.jsonl`` — arbitrary JSON payloads keyed by an opaque string,
  used by the paper-report pipeline (:mod:`repro.report.paper`) to cache
  whole rendered experiment tables keyed by (experiment, runner kwargs,
  table schema, experiment-layer source hash): a warm paper rerun then
  re-renders with *zero* recomputation, including the experiments whose
  measurement loops fall outside the scenario engine (E7/E8/E10).  Like
  every other entry kind, a cached table presumes the library code below
  the keyed layer is unchanged — recompute with ``refresh`` after such
  changes.

Robustness properties:

* **Append-only writes.**  A crash mid-write can only truncate the final
  line; every earlier entry stays intact, which is what makes interrupted
  sweeps resumable.  A truncated tail (no trailing newline) is detected the
  first time the file is touched again and physically truncated back to the
  last complete line, so the next append can never be swallowed by a
  half-written predecessor.
* **Multi-process write safety.**  Every append — and the whole of
  :meth:`prune` / :meth:`clear` — runs under an advisory
  :class:`~repro.util.locking.FileLock` on ``<store>/.lock``, so N service
  workers plus the server (plus a concurrent ``repro cache prune``) never
  interleave partial lines.  Pass ``lock=False`` to opt out when a store is
  provably single-writer.  ``fsync=True`` additionally forces each append
  to disk before returning (the service's durability option).
* **Corrupt-entry tolerance.**  Unparseable or truncated lines are counted
  and skipped on load, never fatal.  Result entries additionally store the
  :meth:`RunResult.fingerprint`; an entry whose recomputed fingerprint
  disagrees is treated as corrupt (the cache can serve wrong-but-parseable
  data to no one).
* **Last-entry-wins.**  Re-running a scenario appends a fresh entry;
  :meth:`prune` compacts the files, dropping superseded and corrupt lines.

Maintenance operations: :meth:`stats`, :meth:`prune`, :meth:`clear`.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from ..expansion.estimate import ExpansionEstimate
from ..util.locking import FileLock
from .specs import RunResult, ScenarioSpec

__all__ = ["BaselineKey", "ResultStore", "StoreStats", "baseline_key"]

#: ``(graph content hash, expansion mode, exact threshold)`` — the identity
#: of one fault-free baseline estimate.
BaselineKey = Tuple[str, str, int]

_RESULTS_FILE = "results.jsonl"
_BASELINES_FILE = "baselines.jsonl"
_TABLES_FILE = "tables.jsonl"


def baseline_key(spec: ScenarioSpec) -> BaselineKey:
    """The baseline-cache key of a scenario (graph identity × measurement)."""
    return (spec.graph.key(), spec.analysis.mode, spec.analysis.exact_threshold)


def _baseline_key_str(key: BaselineKey) -> str:
    return f"{key[0]}:{key[1]}:{key[2]}"


def _estimate_to_dict(estimate: ExpansionEstimate) -> Dict[str, Any]:
    return {
        "kind": estimate.kind,
        "lower": float(estimate.lower),
        "upper": float(estimate.upper),
        "witness": [int(i) for i in np.asarray(estimate.witness).tolist()],
        "exact": bool(estimate.exact),
        "method": str(estimate.method),
    }


def _estimate_from_dict(d: Dict[str, Any]) -> ExpansionEstimate:
    return ExpansionEstimate(
        kind=d["kind"],
        lower=float(d["lower"]),
        upper=float(d["upper"]),
        witness=np.asarray(d["witness"], dtype=np.int64),
        exact=bool(d["exact"]),
        method=str(d["method"]),
    )


@dataclass(frozen=True)
class StoreStats:
    """Aggregate state of a store (the ``repro cache stats`` payload)."""

    path: str
    results: int
    baselines: int
    corrupt: int
    superseded: int
    bytes: int
    tables: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "results": self.results,
            "baselines": self.baselines,
            "tables": self.tables,
            "corrupt": self.corrupt,
            "superseded": self.superseded,
            "bytes": self.bytes,
        }


class ResultStore:
    """Persistent scenario-result + baseline cache rooted at a directory.

    The in-memory index is built lazily on first read and kept in sync with
    appends made through this instance; entries appended by *other*
    processes after the index is built are picked up by :meth:`reload`.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        lock: bool = True,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Cross-process advisory lock serialising appends and compaction
        #: (``None`` when the caller vouches for a single writer).
        self.lock: Optional[FileLock] = (
            FileLock(self.path / ".lock") if lock else None
        )
        self._results: Optional[Dict[str, RunResult]] = None
        self._baselines: Optional[Dict[str, ExpansionEstimate]] = None
        self._tables: Optional[Dict[str, Dict[str, Any]]] = None
        self._healed: set = set()  # files whose trailing newline was checked
        #: Unreadable / truncated / fingerprint-mismatched lines seen on load.
        self.corrupt_entries = 0
        #: Parsed lines superseded by a later entry with the same key.
        self.superseded_entries = 0

    # -- file plumbing -------------------------------------------------- #

    @property
    def results_file(self) -> Path:
        return self.path / _RESULTS_FILE

    @property
    def baselines_file(self) -> Path:
        return self.path / _BASELINES_FILE

    @property
    def tables_file(self) -> Path:
        return self.path / _TABLES_FILE

    def _locked(self):
        """The store-wide critical-section guard (no-op when ``lock=False``)."""
        if self.lock is not None:
            return self.lock
        import contextlib

        return contextlib.nullcontext()

    def _heal_tail(self, file: Path) -> None:
        """Truncate a half-written final line left by a crash.

        A crash mid-append leaves the file without a trailing newline; the
        fragment is unparseable and, left in place, would swallow the next
        appended record.  On the first touch of each file (read *or* write)
        the tail is checked and the file truncated back to its last complete
        line.  Runs under the store lock so a reader can never truncate a
        line another process is mid-way through writing — an in-progress
        locked append is, by definition, not a crash remnant.
        """
        if file in self._healed:
            return
        self._healed.add(file)
        if not file.exists() or file.stat().st_size == 0:
            return
        with self._locked():
            with io.open(file, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) == b"\n":
                    return
                # Scan backwards in blocks for the last newline; everything
                # after it is the crash remnant.
                keep = 0
                pos = size
                block = 4096
                while pos > 0:
                    step = min(block, pos)
                    pos -= step
                    fh.seek(pos)
                    chunk = fh.read(step)
                    idx = chunk.rfind(b"\n")
                    if idx != -1:
                        keep = pos + idx + 1
                        break
                fh.truncate(keep)
                self.corrupt_entries += 1

    def _append(self, file: Path, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # A single buffered write per line: a crash can truncate the final
        # line (healed away on the next touch) but never interleave two
        # entries from one process — and the advisory lock extends that
        # guarantee across processes (service workers share one store).
        self._heal_tail(file)
        with self._locked():
            with io.open(file, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())

    def _iter_lines(self, file: Path):
        if not file.exists():
            return
        try:
            self._heal_tail(file)
        except OSError:
            # Read-only store: leave the fragment in place — the parse loop
            # below tolerates (and counts) it anyway.
            pass
        with io.open(file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_entries += 1
                    continue
                if not isinstance(record, dict):
                    self.corrupt_entries += 1
                    continue
                yield record

    # -- load / reload -------------------------------------------------- #

    def _load_results(self) -> Dict[str, RunResult]:
        if self._results is None:
            index: Dict[str, RunResult] = {}
            for record in self._iter_lines(self.results_file):
                entry = self._decode_result(record)
                if entry is None:
                    self.corrupt_entries += 1
                    continue
                key, result = entry
                if key in index:
                    self.superseded_entries += 1
                index[key] = result
            self._results = index
        return self._results

    def _decode_result(self, record: Dict[str, Any]) -> Optional[Tuple[str, RunResult]]:
        try:
            key = record["key"]
            result = RunResult.from_dict(record["result"])
        except Exception:
            return None
        # Reject silently-corrupted values: the key must match the spec the
        # entry claims to answer for, and the stored fingerprint must match
        # the record content.
        if key != result.spec.hash():
            return None
        if record.get("fingerprint") != result.fingerprint():
            return None
        return key, result

    def _load_baselines(self) -> Dict[str, ExpansionEstimate]:
        if self._baselines is None:
            index: Dict[str, ExpansionEstimate] = {}
            for record in self._iter_lines(self.baselines_file):
                try:
                    key = record["key"]
                    estimate = _estimate_from_dict(record["estimate"])
                except Exception:
                    self.corrupt_entries += 1
                    continue
                if key in index:
                    self.superseded_entries += 1
                index[key] = estimate
            self._baselines = index
        return self._baselines

    def _load_tables(self) -> Dict[str, Dict[str, Any]]:
        if self._tables is None:
            index: Dict[str, Dict[str, Any]] = {}
            for record in self._iter_lines(self.tables_file):
                try:
                    key = record["key"]
                    payload = record["payload"]
                except Exception:
                    self.corrupt_entries += 1
                    continue
                if not isinstance(key, str) or not isinstance(payload, dict):
                    self.corrupt_entries += 1
                    continue
                if key in index:
                    self.superseded_entries += 1
                index[key] = payload
            self._tables = index
        return self._tables

    def reload(self) -> None:
        """Drop the in-memory index (picks up other processes' appends)."""
        self._results = None
        self._baselines = None
        self._tables = None
        self._healed = set()
        self.corrupt_entries = 0
        self.superseded_entries = 0

    # -- results -------------------------------------------------------- #

    def get_result(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The stored result of ``spec``, or ``None`` on a cache miss."""
        return self._load_results().get(spec.hash())

    def put_result(self, result: RunResult) -> None:
        """Append ``result``; it becomes the entry served for its spec."""
        record = {
            "key": result.spec.hash(),
            "seed": result.seed,
            "label": result.label,
            "fingerprint": result.fingerprint(),
            "result": result.to_dict(),
        }
        # Load the index *before* appending, or the lazy first load would
        # see the new line on disk and miscount it as a duplicate.
        index = self._load_results()
        self._append(self.results_file, record)
        if record["key"] in index:
            self.superseded_entries += 1
        index[record["key"]] = result

    def remember(self, result: RunResult) -> None:
        """Insert an *already persisted* result into the in-memory index.

        The service's workers append to the same JSONL files from other
        processes and ship each result back over the event queue; the server
        indexes them through this method instead of re-reading the files, so
        its warm-point checks stay current without any disk traffic.
        """
        self._load_results()[result.spec.hash()] = result

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.get_result(spec) is not None

    def __len__(self) -> int:
        return len(self._load_results())

    # -- baselines ------------------------------------------------------ #

    def get_baseline(self, key: BaselineKey) -> Optional[ExpansionEstimate]:
        """The stored fault-free estimate for a baseline key, if any."""
        return self._load_baselines().get(_baseline_key_str(key))

    def put_baseline(self, key: BaselineKey, estimate: ExpansionEstimate) -> None:
        record = {
            "key": _baseline_key_str(key),
            "estimate": _estimate_to_dict(estimate),
        }
        index = self._load_baselines()
        self._append(self.baselines_file, record)
        if record["key"] in index:
            self.superseded_entries += 1
        index[record["key"]] = estimate

    # -- generic table payloads ----------------------------------------- #

    def get_table(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached JSON payload stored under ``key`` (None on a miss)."""
        return self._load_tables().get(key)

    def put_table(self, key: str, payload: Dict[str, Any]) -> None:
        """Append a JSON payload under an opaque key (last entry wins)."""
        record = {"key": str(key), "payload": payload}
        index = self._load_tables()
        self._append(self.tables_file, record)
        if record["key"] in index:
            self.superseded_entries += 1
        index[record["key"]] = payload

    # -- maintenance ---------------------------------------------------- #

    def stats(self) -> StoreStats:
        """Entry counts, anomaly counts and on-disk size."""
        results = self._load_results()
        baselines = self._load_baselines()
        tables = self._load_tables()
        size = sum(
            f.stat().st_size
            for f in (self.results_file, self.baselines_file, self.tables_file)
            if f.exists()
        )
        return StoreStats(
            path=str(self.path),
            results=len(results),
            baselines=len(baselines),
            corrupt=self.corrupt_entries,
            superseded=self.superseded_entries,
            bytes=size,
            tables=len(tables),
        )

    def prune(self, keep: Optional[Iterable[ScenarioSpec]] = None) -> Dict[str, int]:
        """Compact both files: drop corrupt and superseded lines (and, when
        ``keep`` is given, every result whose spec is not in ``keep``).

        Returns ``{"kept": ..., "dropped": ...}`` where ``dropped`` counts
        every line physically removed: corrupt lines, superseded duplicates,
        and (with ``keep``) filtered-out results.  Baselines are always
        compacted but never filtered — they are tiny and shared across
        scenario sets.
        """
        with self._locked():
            # Holding the lock across the whole compaction means concurrent
            # writers (service workers) block rather than append to a file
            # that is about to be rewritten under them.
            results = dict(self._load_results())
            baselines = dict(self._load_baselines())
            tables = dict(self._load_tables())
            before = self.stats()
            if keep is not None:
                wanted = {spec.hash() for spec in keep}
                results = {k: v for k, v in results.items() if k in wanted}
            self.clear()
            for result in results.values():
                self.put_result(result)
            for key_str, estimate in baselines.items():
                self._append(
                    self.baselines_file,
                    {"key": key_str, "estimate": _estimate_to_dict(estimate)},
                )
                self._load_baselines()[key_str] = estimate
            for key_str, payload in tables.items():
                self.put_table(key_str, payload)
            dropped = (
                before.corrupt + before.superseded + (before.results - len(results))
            )
            return {"kept": len(results), "dropped": dropped}

    def clear(self) -> None:
        """Delete every stored entry (the files themselves are removed)."""
        with self._locked():
            for file in (self.results_file, self.baselines_file, self.tables_file):
                if file.exists():
                    file.unlink()
            self._results = {}
            self._baselines = {}
            self._tables = {}
            self.corrupt_entries = 0
            self.superseded_entries = 0
