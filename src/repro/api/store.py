"""Content-addressed store for scenario results and baselines.

:class:`ResultStore` is the persistence layer behind
:class:`repro.api.session.Session`.  Since PR 7 it is a thin facade over
the sharded storage engine in :mod:`repro.storage`: records live in
hash-sharded, size-rotated segment files with a persistent sidecar offset
index per shard, so opening a warm store costs O(index) — keys and
offsets, **no record decoding** — and each lookup decodes exactly one
record.  Three record kinds are stored:

* ``results`` — one :class:`~repro.api.specs.RunResult` per record, keyed
  by the scenario's content hash (:meth:`ScenarioSpec.hash`, which covers
  graph + fault + analysis + seed).  The determinism contract — identical
  ``(spec, seed)`` ⇒ identical result — is what makes the key sound: a hit
  can be substituted for execution byte-for-byte.
* ``baselines`` — fault-free :class:`ExpansionEstimate`s keyed by
  ``(GraphSpec.key(), mode, exact_threshold)``, so a warm store skips even
  the baseline phase of a batch.
* ``tables`` — arbitrary JSON payloads keyed by an opaque string, used by
  the paper-report pipeline (:mod:`repro.report.paper`) to cache whole
  rendered experiment tables: a warm paper rerun then re-renders with
  *zero* recomputation.  A cached table presumes the library code below
  the keyed layer is unchanged — recompute with ``refresh`` after such
  changes.

Robustness properties (unchanged from the single-file store):

* **Append-only writes.**  A crash mid-write can only truncate the final
  line of one shard's active segment; every earlier entry stays intact,
  which is what makes interrupted sweeps resumable.  Truncated tails are
  healed on the next open.
* **Multi-process write safety.**  Every append runs under an advisory
  :class:`~repro.util.locking.FileLock` — now one lock *per shard*, so
  service workers appending different keys no longer contend.  Pass
  ``lock=False`` to opt out when a store is provably single-writer;
  ``fsync=True`` forces each append to disk before returning.
* **Corrupt-entry tolerance.**  Unparseable lines are counted and skipped,
  never fatal.  Result entries additionally store the
  :meth:`RunResult.fingerprint`; verification is *lazy* — an entry whose
  key or recomputed fingerprint disagrees is rejected at lookup time (and
  physically dropped by the next compaction, which re-verifies every
  surviving record).
* **Last-entry-wins.**  Re-running a scenario appends a fresh entry;
  superseded and corrupt lines accumulate as garbage until
  :meth:`compact` / :meth:`prune` rewrites the affected shards (automatic
  once a shard's garbage ratio is high enough).

Legacy stores (single ``results.jsonl``/``baselines.jsonl``/
``tables.jsonl`` files at the store root, the PR 1–6 layout) are migrated
into the sharded layout transparently on open.  Migration moves each raw
line byte-for-byte, so every result and its fingerprint survive
bit-identically — a sweep against a migrated store fingerprints the same
as against the original.

Maintenance operations: :meth:`stats` (index-served, O(shards)),
:meth:`compact`, :meth:`prune`, :meth:`clear`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..expansion.estimate import ExpansionEstimate
from ..storage import StorageEngine
from ..util.locking import FileLock
from .specs import RunResult, ScenarioSpec

__all__ = ["BaselineKey", "ResultStore", "StoreStats", "baseline_key"]

#: ``(graph content hash, expansion mode, exact threshold)`` — the identity
#: of one fault-free baseline estimate.
BaselineKey = Tuple[str, str, int]


def baseline_key(spec: ScenarioSpec) -> BaselineKey:
    """The baseline-cache key of a scenario (graph identity × measurement)."""
    return (spec.graph.key(), spec.analysis.mode, spec.analysis.exact_threshold)


def _baseline_key_str(key: BaselineKey) -> str:
    return f"{key[0]}:{key[1]}:{key[2]}"


def _estimate_to_dict(estimate: ExpansionEstimate) -> Dict[str, Any]:
    return {
        "kind": estimate.kind,
        "lower": float(estimate.lower),
        "upper": float(estimate.upper),
        "witness": [int(i) for i in np.asarray(estimate.witness).tolist()],
        "exact": bool(estimate.exact),
        "method": str(estimate.method),
    }


def _estimate_from_dict(d: Dict[str, Any]) -> ExpansionEstimate:
    return ExpansionEstimate(
        kind=d["kind"],
        lower=float(d["lower"]),
        upper=float(d["upper"]),
        witness=np.asarray(d["witness"], dtype=np.int64),
        exact=bool(d["exact"]),
        method=str(d["method"]),
    )


@dataclass(frozen=True)
class StoreStats:
    """Aggregate state of a store (the ``repro cache stats`` payload).

    Served entirely from the shard offset indexes — computing these
    decodes no records and verifies no fingerprints (corruption hiding
    behind a parseable line surfaces at lookup or compaction instead).
    """

    path: str
    results: int
    baselines: int
    corrupt: int
    superseded: int
    bytes: int
    tables: int = 0
    segments: int = 0
    garbage_ratio: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "results": self.results,
            "baselines": self.baselines,
            "tables": self.tables,
            "corrupt": self.corrupt,
            "superseded": self.superseded,
            "bytes": self.bytes,
            "segments": self.segments,
            "garbage_ratio": round(self.garbage_ratio, 4),
        }


class ResultStore:
    """Persistent scenario-result + baseline cache rooted at a directory.

    Membership (``spec in store``, :meth:`__len__`, :meth:`stats`) is
    answered from the shard indexes in O(1)/O(shards); record bytes are
    read and decoded only by an actual lookup.  Entries appended by
    *other* processes after a shard's index is loaded are picked up by
    :meth:`reload` (the service instead feeds results back through
    :meth:`remember`).
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        lock: bool = True,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.engine = StorageEngine(self.path, lock=lock, fsync=fsync)
        self.engine.verifier = self._verify_record
        #: Store-wide advisory lock — held by whole-store maintenance
        #: (:meth:`prune`, :meth:`clear`, legacy migration) so two
        #: processes never rewrite the layout concurrently.  Appends take
        #: only their shard's lock.
        self.lock: Optional[FileLock] = self.engine._global_lock
        #: Results shipped in via :meth:`remember` (already persisted by
        #: another process) — overlay consulted before the shard indexes.
        self._remembered: Dict[str, RunResult] = {}

    # -- engine plumbing -------------------------------------------------- #

    @property
    def fsync(self) -> bool:
        return self.engine.fsync

    @fsync.setter
    def fsync(self, value: bool) -> None:
        self.engine.fsync = value
        for kind in self.engine.kinds():
            for shard in self.engine.shards(kind):
                shard.fsync = value

    @property
    def counters(self):
        """The engine's monotonic operational counters (for metrics)."""
        return self.engine.counters

    @property
    def corrupt_entries(self) -> int:
        """Corrupt lines observed since open (heals, scans, lazy rejects)."""
        self.engine.load_all()
        total = self.engine.migration_corrupt
        for kind in self.engine.kinds():
            total += sum(s.corrupt_seen for s in self.engine.shards(kind))
        return total

    @property
    def superseded_entries(self) -> int:
        """Resident lines whose key was re-appended later (any kind)."""
        self.engine.load_all()
        total = 0
        for kind in self.engine.kinds():
            total += sum(
                s.superseded_current for s in self.engine.shards(kind)
            )
        return total

    def segment_files(self, kind: str = "results") -> List[Path]:
        """Every live segment file of ``kind`` (test/debug helper)."""
        return self.engine.segment_files(kind)

    def _verify_record(self, kind: str, key: str, record: dict) -> bool:
        """Compaction's integrity check — the one *eager* verification
        pass, run only while a shard is being rewritten anyway."""
        if kind == "results":
            return self._decode_result(record) is not None
        if kind == "baselines":
            try:
                _estimate_from_dict(record["estimate"])
            except Exception:
                return False
            return True
        if kind == "tables":
            return isinstance(record.get("payload"), dict)
        return True

    # -- load / reload -------------------------------------------------- #

    def reload(self) -> None:
        """Drop the in-memory indexes (picks up other processes' appends)."""
        self.engine.reload()
        self._remembered = {}

    # -- results -------------------------------------------------------- #

    def get_result(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The stored result of ``spec``, or ``None`` on a cache miss.

        Decodes (and key/fingerprint-verifies) exactly one record; a
        verification failure rejects the entry and marks it corrupt so
        the next compaction drops it physically.
        """
        key = spec.hash()
        hit = self._remembered.get(key)
        if hit is not None:
            return hit
        record = self.engine.get_record("results", key)
        if record is None:
            return None
        entry = self._decode_result(record)
        if entry is None:
            self.engine.discard("results", key)
            return None
        return entry[1]

    def put_result(self, result: RunResult) -> None:
        """Append ``result``; it becomes the entry served for its spec."""
        self.engine.append("results", result.spec.hash(), self._result_record(result))

    def put_results(self, results: Iterable[RunResult]) -> int:
        """Bulk append under one lock acquisition per shard; returns the
        number of records written."""
        records = [
            (result.spec.hash(), self._result_record(result))
            for result in results
        ]
        self.engine.append_many("results", records)
        return len(records)

    @staticmethod
    def _result_record(result: RunResult) -> Dict[str, Any]:
        return {
            "key": result.spec.hash(),
            "seed": result.seed,
            "label": result.label,
            "fingerprint": result.fingerprint(),
            "result": result.to_dict(),
        }

    def _decode_result(self, record: Dict[str, Any]) -> Optional[Tuple[str, RunResult]]:
        try:
            key = record["key"]
            result = RunResult.from_dict(record["result"])
        except Exception:
            return None
        # Reject silently-corrupted values: the key must match the spec the
        # entry claims to answer for, and the stored fingerprint must match
        # the record content.
        if key != result.spec.hash():
            return None
        if record.get("fingerprint") != result.fingerprint():
            return None
        return key, result

    def remember(self, result: RunResult) -> None:
        """Insert an *already persisted* result into the in-memory overlay.

        The service's workers append to the same store from other
        processes and ship each result back over the event queue; the
        server indexes them through this method instead of re-reading any
        files, so its warm-point checks stay current with zero disk
        traffic.
        """
        self._remembered[result.spec.hash()] = result

    def contains_key(self, key: str) -> bool:
        """O(1) index membership for a raw result key — no file read."""
        return key in self._remembered or self.engine.contains("results", key)

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.contains_key(spec.hash())

    def __len__(self) -> int:
        n = self.engine.count("results")
        for key in self._remembered:
            if not self.engine.contains("results", key):
                n += 1
        return n

    # -- baselines ------------------------------------------------------ #

    def get_baseline(self, key: BaselineKey) -> Optional[ExpansionEstimate]:
        """The stored fault-free estimate for a baseline key, if any."""
        key_str = _baseline_key_str(key)
        record = self.engine.get_record("baselines", key_str)
        if record is None:
            return None
        try:
            return _estimate_from_dict(record["estimate"])
        except Exception:
            self.engine.discard("baselines", key_str)
            return None

    def put_baseline(self, key: BaselineKey, estimate: ExpansionEstimate) -> None:
        key_str = _baseline_key_str(key)
        self.engine.append(
            "baselines",
            key_str,
            {"key": key_str, "estimate": _estimate_to_dict(estimate)},
        )

    # -- generic table payloads ----------------------------------------- #

    def get_table(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached JSON payload stored under ``key`` (None on a miss)."""
        record = self.engine.get_record("tables", str(key))
        if record is None:
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            self.engine.discard("tables", str(key))
            return None
        return payload

    def put_table(self, key: str, payload: Dict[str, Any]) -> None:
        """Append a JSON payload under an opaque key (last entry wins)."""
        self.engine.append(
            "tables", str(key), {"key": str(key), "payload": payload}
        )

    # -- maintenance ---------------------------------------------------- #

    def stats(self) -> StoreStats:
        """Entry counts, anomaly counts and on-disk size — index-served.

        Unlike the legacy store, this decodes no records: counts come
        straight from the shard offset indexes, so ``cache stats`` on a
        million-entry store is instant.
        """
        totals = {
            kind: self.engine.counts(kind) for kind in self.engine.kinds()
        }
        live = sum(c["entries"] for c in totals.values())
        garbage = sum(c["garbage"] for c in totals.values())
        return StoreStats(
            path=str(self.path),
            results=totals.get("results", {}).get("entries", 0),
            baselines=totals.get("baselines", {}).get("entries", 0),
            tables=totals.get("tables", {}).get("entries", 0),
            corrupt=self.corrupt_entries,
            superseded=self.superseded_entries,
            bytes=sum(c["bytes"] for c in totals.values()),
            segments=sum(c["segments"] for c in totals.values()),
            garbage_ratio=(garbage / (live + garbage)) if (live + garbage) else 0.0,
        )

    def shard_rows(self, kind: str = "results") -> List[Dict[str, float]]:
        """Per-shard stats rows (the ``cache stats`` detail listing)."""
        return self.engine.shard_rows(kind)

    def compact(
        self,
        *,
        force: bool = False,
        min_garbage: float = 0.0,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> Dict[str, int]:
        """Rewrite shards, dropping superseded/corrupt lines and applying
        eviction policies (see :meth:`StorageEngine.compact`).  Survivor
        lines are copied byte-for-byte, so fingerprints are untouched;
        every survivor is re-verified on the way through."""
        return self.engine.compact(
            force=force,
            min_garbage=min_garbage,
            max_bytes=max_bytes,
            max_age_s=max_age_s,
        )

    def prune(self, keep: Optional[Iterable[ScenarioSpec]] = None) -> Dict[str, int]:
        """Compact every shard: drop corrupt and superseded lines (and,
        when ``keep`` is given, every result whose spec is not in
        ``keep``).

        Returns ``{"kept": ..., "dropped": ...}`` where ``dropped`` counts
        every line physically removed: corrupt lines, superseded
        duplicates, and (with ``keep``) filtered-out results.  Baselines
        and tables are always compacted but never filtered — they are tiny
        and shared across scenario sets.
        """
        keep_map = None
        if keep is not None:
            wanted = {spec.hash() for spec in keep}
            keep_map = {"results": lambda key: key in wanted}
        import contextlib

        with self.lock if self.lock is not None else contextlib.nullcontext():
            totals = self.engine.compact(force=True, keep=keep_map)
        self._remembered = {}
        return {
            "kept": self.engine.count("results"),
            "dropped": totals["superseded"]
            + totals["corrupt"]
            + totals["filtered"]
            + totals["evicted"],
        }

    def clear(self) -> None:
        """Delete every stored entry (segments and indexes are removed)."""
        import contextlib

        with self.lock if self.lock is not None else contextlib.nullcontext():
            self.engine.clear()
        self._remembered = {}
