"""First-class sweeps: declarative grids with per-trial work units.

Every experiment in the paper is really a *sweep* — a grid over graph /
fault / analysis parameters with many Monte-Carlo trials per grid point.
This module makes that shape first-class:

* :class:`Axis` — one swept dimension: a dotted path into the scenario
  spec (``"fault.params.p"``, ``"graph.params.k"``, or a whole-subtree
  replacement like ``"graph"``) plus the values it takes.
* :class:`SamplingPolicy` — how trials are allocated to grid points:
  ``fixed`` (the classic constant count), ``ci_width`` (keep sampling a
  point until its confidence interval is tighter than ``target``),
  ``budget`` (spend a fixed total, each chunk going to the currently
  noisiest point), ``cluster`` (bootstrap every point, cluster points by
  observed response, spend the budget on one representative per cluster
  and map its CI-backed estimate to the members), or ``transition`` (fit
  the response curve online and concentrate chunks where predicted
  |dγ/dp| × CI half-width peaks).  Each kind is realised by an
  :class:`Allocator` state machine (``policy.allocator(points)``) whose
  decisions are a deterministic function of the aggregate stream.
* :class:`SweepSpec` — the frozen, JSON-round-trippable record tying the
  above together with a trial count, a sweep seed and a seed policy.  It
  expands *deterministically* into ``(ScenarioSpec, trial index)`` work
  units, so parallelism and caching happen per trial, not per grid point.
* :func:`run_sweep` — execution: work units stream through
  :meth:`repro.api.session.Session.run_iter` (store-backed resume at trial
  granularity for free) and are folded into online aggregators
  (:mod:`repro.util.stats`) the moment they complete, giving live
  per-point estimates and the CI widths the adaptive policies act on.
  Grid points whose trials the batched engine supports (measure-only
  analyses with vectorisable fault models) are evaluated as one
  ``(T × n)`` mask-matrix batch via :mod:`repro.batch` — bit-identical
  results, a fraction of the wall clock; see the ``batch`` parameter.

Trial-seed derivation (the determinism contract):  the seed of trial ``t``
at a grid point is derived from a :class:`numpy.random.SeedSequence` whose
entropy is the sweep seed and whose spawn key is ``(content hash of the
point, point index, t)`` — the keyed form of ``SeedSequence.spawn``.
Seeds therefore
depend only on *what* is being run and the trial index, never on worker
count, completion order, or how many times the sweep was interrupted and
resumed; ``workers=1`` vs ``N`` and fresh vs resumed sweeps produce
identical per-trial RNG streams and identical final fingerprints.
``seed_policy="fault"`` keys the hash by graph + fault only (analysis
excluded), so ablations over pruners/finders see *identical* fault draws
across arms.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import SpecError
from ..util.stats import (
    OnlineStats,
    P2Quantile,
    fit_isotonic,
    fit_logistic,
    logistic_slope,
    logistic_value,
    wilson_interval,
)
from .specs import (
    AnalysisSpec,
    FaultSpec,
    GraphSpec,
    RunResult,
    ScenarioSpec,
    canonical_json,
)

__all__ = [
    "Axis",
    "Metric",
    "METRICS",
    "register_metric",
    "Allocator",
    "PointView",
    "SamplingPolicy",
    "SweepSpec",
    "SweepPoint",
    "PointStats",
    "PointSummary",
    "SweepDriver",
    "SweepResult",
    "execute_units",
    "run_sweep",
]


# --------------------------------------------------------------------- #
# Metrics: RunResult → scalar
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Metric:
    """A named scalar derived from a :class:`RunResult`.

    ``binary`` metrics (indicator variables) get Wilson score intervals;
    real-valued metrics get normal-approximation intervals.  ``fn`` may
    return ``None`` for undefined observations (e.g. retention of an empty
    survivor set) — those are counted as skipped, not aggregated.
    """

    name: str
    fn: Callable[[RunResult], Optional[float]]
    binary: bool = False
    doc: str = ""


METRICS: Dict[str, Metric] = {}


def register_metric(
    name: str, fn: Callable[[RunResult], Optional[float]],
    *, binary: bool = False, doc: str = ""
) -> Metric:
    """Register a sweep metric (used by name in :class:`SweepSpec`)."""
    metric = Metric(name=name, fn=fn, binary=binary, doc=doc)
    METRICS[name] = metric
    return metric


def _prune2_success(r: RunResult) -> float:
    """Theorem 3.4's success event: |H| ≥ n/2 and αe(H) ≥ ε·αe(G)."""
    ok_size = r.n_surviving >= r.n_original / 2
    h_exp = r.surviving_expansion if r.surviving_expansion is not None else 0.0
    ok_exp = h_exp >= r.epsilon * r.baseline_expansion - 1e-9
    return 1.0 if (ok_size and ok_exp) else 0.0


register_metric(
    "gamma",
    lambda r: r.largest_faulty_component / max(r.n_original, 1),
    doc="largest faulty-component fraction γ (the paper's §1.1 estimator)",
)
register_metric(
    "surviving_fraction", lambda r: r.surviving_fraction,
    doc="|H| / n after pruning",
)
register_metric(
    "expansion_retention", lambda r: r.expansion_retention,
    doc="α(H)/α(G); None when H is empty or unmeasured",
)
register_metric(
    "surviving_expansion", lambda r: r.surviving_expansion,
    doc="measured α(H); None when unmeasured",
)
register_metric(
    "baseline_expansion", lambda r: r.baseline_expansion,
    doc="fault-free α(G)",
)
register_metric(
    "fault_fraction", lambda r: r.fault_fraction, doc="f / n",
)
register_metric(
    "n_surviving", lambda r: float(r.n_surviving), doc="|H| after pruning",
)
register_metric(
    "largest_faulty_component",
    lambda r: float(r.largest_faulty_component),
    doc="largest component size of the faulty graph (pre-prune)",
)
register_metric(
    "prune2_success", _prune2_success, binary=True,
    doc="Theorem 3.4 success indicator: |H| ≥ n/2 and αe(H) ≥ ε·αe",
)
register_metric(
    "half_survival",
    lambda r: 1.0 if r.n_surviving >= r.n_original / 2 else 0.0,
    binary=True,
    doc="indicator of |H| ≥ n/2",
)


# --------------------------------------------------------------------- #
# Axis
# --------------------------------------------------------------------- #

_AXIS_ROOTS = ("graph", "fault", "analysis")


def _normalise_axis_value(v: Any) -> Any:
    """Axis values are JSON data; spec objects are accepted and serialised."""
    if isinstance(v, (GraphSpec, FaultSpec, AnalysisSpec)):
        return v.to_dict()
    try:
        canonical_json(v)
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"axis value {v!r} is not JSON-serialisable: {exc}"
        ) from exc
    return v


@dataclass(frozen=True, eq=True)
class Axis:
    """One swept dimension: a dotted spec path and the values it takes.

    ``path`` addresses the dict form of a :class:`ScenarioSpec`:
    ``"fault.params.p"`` sets one parameter, ``"graph"`` replaces the whole
    graph spec (values are then graph-spec dicts or :class:`GraphSpec`
    instances).  The scenario ``seed`` and ``label`` are never axes — seeds
    are derived per trial, labels per point.

    >>> axis = Axis("fault.params.p", (0.1, 0.2, 0.4))
    >>> axis.short_name
    'p'
    >>> Axis.from_dict(axis.to_dict()) == axis
    True
    >>> Axis("seed", (1, 2))
    Traceback (most recent call last):
        ...
    repro.errors.SpecError: axis path must start with one of ('graph', 'fault', 'analysis'), got 'seed'
    """

    path: str
    values: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.path or not isinstance(self.path, str):
            raise SpecError(f"axis path must be a non-empty string, got {self.path!r}")
        root = self.path.split(".", 1)[0]
        if root not in _AXIS_ROOTS:
            raise SpecError(
                f"axis path must start with one of {_AXIS_ROOTS}, got {self.path!r}"
            )
        values = tuple(_normalise_axis_value(v) for v in self.values)
        if not values:
            raise SpecError(f"axis {self.path!r} has no values")
        object.__setattr__(self, "values", values)

    @property
    def short_name(self) -> str:
        """Last path segment — the column name used in tables."""
        return self.path.rsplit(".", 1)[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "values": list(self.values)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Axis":
        if not isinstance(d, Mapping):
            raise SpecError(f"Axis must be a mapping, got {type(d).__name__}")
        unknown = sorted(set(d) - {"path", "values"})
        if unknown:
            raise SpecError(f"Axis dict has unknown key(s) {unknown}")
        if "path" not in d or "values" not in d:
            raise SpecError("Axis dict needs 'path' and 'values'")
        return cls(path=d["path"], values=tuple(d["values"]))

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


def _set_path(d: Dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted path inside the scenario dict, creating empty dicts on
    the way down (``from_dict`` validation catches nonsense afterwards)."""
    parts = path.split(".")
    cur: Dict[str, Any] = d
    for p in parts[:-1]:
        nxt = cur.get(p)
        if nxt is None:
            nxt = {}
            cur[p] = nxt
        elif not isinstance(nxt, dict):
            raise SpecError(
                f"axis path {path!r}: segment {p!r} addresses a non-mapping "
                f"value {nxt!r}"
            )
        cur = nxt
    cur[parts[-1]] = value


# --------------------------------------------------------------------- #
# Sampling policy + allocator state machines
# --------------------------------------------------------------------- #

_POLICY_KINDS = ("fixed", "ci_width", "budget", "cluster", "transition")


class PointView(NamedTuple):
    """The per-point snapshot an :class:`Allocator` decides from.

    ``halfwidth`` is the primary metric's CI half-width (``inf`` until the
    point has enough finite observations), ``mean`` its running mean
    (``nan`` with none), and ``n_finite`` the count of finite observations
    folded so far — the signal that distinguishes "not sampled yet" from
    "sampled but the metric never yields a value" (all-NaN starvation).
    """

    halfwidth: float
    mean: float
    n_finite: int


def _canon_float(name: str, value: Any, *, optional: bool = False) -> Optional[float]:
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"policy {name} must be a number, got {value!r}")
    return float(value)


def _canon_int(name: str, value: Any, *, optional: bool = False) -> Optional[int]:
    if value is None and optional:
        return None
    if isinstance(value, bool):
        raise SpecError(f"policy {name} must be an int, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise SpecError(f"policy {name} must be integral, got {value!r}")
        value = int(value)
    if not isinstance(value, int):
        raise SpecError(f"policy {name} must be an int, got {value!r}")
    return value


@dataclass(frozen=True, eq=True)
class SamplingPolicy:
    """How trials are allocated across grid points.

    * ``fixed`` — every point gets exactly ``SweepSpec.trials`` trials.
    * ``ci_width`` — points start at ``min_trials``, then receive ``chunk``
      more per round while their CI half-width exceeds ``target``, up to
      the per-point cap ``SweepSpec.trials``.  Tight points stop consuming
      budget, which is what frees trials for the noisy ones.
    * ``budget`` — every point gets ``min_trials``, then each round hands
      one ``chunk`` to the point with the widest CI until ``budget`` total
      trials are spent (or, when ``target`` is set, until every point is
      already tight).  Points that spent ``min_trials`` without a single
      finite observation are *starved* — excluded from widest-point
      selection so an all-NaN point cannot swallow the whole budget.
    * ``cluster`` — after a ``min_trials`` bootstrap of every point, grid
      points are clustered by observed primary-metric response (means
      within ``2 × target`` share a cluster), one representative per
      cluster is driven to CI half-width ≤ ``target`` (cap
      ``SweepSpec.trials``, optional total ``budget``), and its CI-backed
      estimate is mapped back to the members with provenance flags.
    * ``transition`` — after the bootstrap, the response curve over the
      leading numeric axis is fitted online (logistic / isotonic,
      whichever fits better) and each round's ``chunk`` goes where
      predicted |slope| × CI half-width peaks; flat regions are held to a
      relaxed width target, which is what concentrates trials on the
      percolation transition.

    Every kind is realised by an :class:`Allocator` state machine
    (:meth:`allocator`) whose decisions depend only on the deterministic
    aggregate stream, so interrupted/resumed, serial/parallel and
    local/distributed sweeps allocate identically.

    Numeric fields are canonicalised at construction (``target`` → float,
    ``budget``/``chunk``/``min_trials`` → int, ``confidence`` → float), so
    logically identical policies — e.g. ``budget=100`` vs ``budget=100.0``
    from a JSON client — are equal *and* hash equal, keeping scheduler
    dedup and store reuse sound.

    >>> fixed = SamplingPolicy()                     # every point: `trials`
    >>> fixed.allocate([], [0, 0, 0], max_trials=4)
    [(0, 4), (1, 4), (2, 4)]
    >>> adaptive = SamplingPolicy(kind="ci_width", target=0.05,
    ...                           min_trials=2, chunk=8)
    >>> adaptive.allocate([0.01, 0.2], [2, 2], max_trials=10)  # only the noisy one
    [(1, 8)]
    >>> adaptive.allocate([0.01, 0.04], [2, 10], max_trials=10)  # all tight: stop
    []
    >>> SamplingPolicy(kind="budget", budget=100) == SamplingPolicy(
    ...     kind="budget", budget=100.0)
    True
    >>> hash(SamplingPolicy(kind="budget", budget=100)) == hash(
    ...     SamplingPolicy(kind="budget", budget=100.0))
    True
    """

    kind: str = "fixed"
    target: Optional[float] = None
    confidence: float = 0.95
    chunk: int = 8
    min_trials: int = 4
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise SpecError(
                f"policy kind must be one of {_POLICY_KINDS}, got {self.kind!r}"
            )
        # Canonicalise *before* hashing ever sees the fields: to_dict feeds
        # the content hash, so int/float spellings of the same policy must
        # collapse to one representation (the eq/hash contract).
        object.__setattr__(
            self, "target", _canon_float("target", self.target, optional=True)
        )
        object.__setattr__(
            self, "confidence", _canon_float("confidence", self.confidence)
        )
        object.__setattr__(self, "chunk", _canon_int("chunk", self.chunk))
        object.__setattr__(
            self, "min_trials", _canon_int("min_trials", self.min_trials)
        )
        object.__setattr__(
            self, "budget", _canon_int("budget", self.budget, optional=True)
        )
        if not 0.0 < self.confidence < 1.0:
            raise SpecError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.chunk < 1:
            raise SpecError(f"chunk must be >= 1, got {self.chunk}")
        if self.min_trials < 1:
            raise SpecError(f"min_trials must be >= 1, got {self.min_trials}")
        if self.kind in ("ci_width", "cluster", "transition"):
            if self.target is None:
                raise SpecError(
                    f"{self.kind} policy needs a positive 'target'"
                )
        if self.kind == "budget":
            if self.budget is None or self.budget < 1:
                raise SpecError("budget policy needs a positive 'budget'")
        if self.budget is not None and self.budget < 1:
            raise SpecError(f"budget must be >= 1, got {self.budget}")
        if self.target is not None and not self.target > 0.0:
            raise SpecError(f"target must be positive, got {self.target}")

    # -- allocation ----------------------------------------------------- #

    def allocator(self, points: Sequence["SweepPoint"] = ()) -> "Allocator":
        """Build this policy's :class:`Allocator` state machine.

        ``points`` is the expanded grid (:meth:`SweepSpec.points`); the
        ``transition`` kind reads the leading numeric axis values from it.
        """
        cls = _ALLOCATORS[self.kind]
        return cls(self, points)

    def allocate(
        self,
        halfwidths: Sequence[float],
        allocated: Sequence[int],
        max_trials: int,
        observations: Optional[Sequence[int]] = None,
    ) -> List[Tuple[int, int]]:
        """One stateless allocation step (``fixed`` / ``ci_width`` /
        ``budget`` only — the stateful kinds need :meth:`allocator`).

        An empty list terminates the sweep.  ``halfwidths`` are the current
        CI half-widths of the policy metric (``inf`` until a point has
        enough observations for an interval); ``observations`` optionally
        carries each point's finite-observation count, which the ``budget``
        kind uses to starve out all-NaN points.
        """
        if self.kind in ("cluster", "transition"):
            raise SpecError(
                f"the {self.kind!r} policy is stateful; drive it through "
                "policy.allocator(points).next_requests(...)"
            )
        views = [
            PointView(
                halfwidth=(
                    halfwidths[i] if i < len(halfwidths) else math.inf
                ),
                mean=math.nan,
                n_finite=(
                    observations[i]
                    if observations is not None
                    # No visibility into finite counts: assume any sampled
                    # point has observations (the pre-starvation contract).
                    else (1 if allocated[i] > 0 else 0)
                ),
            )
            for i in range(len(allocated))
        ]
        return self.allocator().next_requests(views, allocated, max_trials)

    # -- serialisation -------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "confidence": self.confidence,
            "chunk": self.chunk,
            "min_trials": self.min_trials,
            "budget": self.budget,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SamplingPolicy":
        if not isinstance(d, Mapping):
            raise SpecError(
                f"SamplingPolicy must be a mapping, got {type(d).__name__}"
            )
        allowed = {"kind", "target", "confidence", "chunk", "min_trials", "budget"}
        unknown = sorted(set(d) - allowed)
        if unknown:
            raise SpecError(f"SamplingPolicy dict has unknown key(s) {unknown}")
        # Raw values pass straight through: __post_init__ canonicalises, so
        # int/float JSON spellings land on identical field values (and
        # therefore identical content hashes).
        return cls(
            kind=d.get("kind", "fixed"),
            target=d.get("target"),
            confidence=d.get("confidence", 0.95),
            chunk=d.get("chunk", 8),
            min_trials=d.get("min_trials", 4),
            budget=d.get("budget"),
        )

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


class Allocator:
    """Base of the per-kind allocation state machines.

    One allocator instance drives one sweep execution: every round the
    driver hands it the current :class:`PointView` snapshots plus the
    per-point allocation counts, and it answers with ``(point index,
    extra trials)`` requests (empty = the sweep is complete).  Decisions —
    including any internal state such as cluster assignments — must be a
    pure function of the deterministic aggregate stream, never of
    wall-clock, worker count or completion order; that is what keeps
    ``workers=1`` vs ``N``, fresh vs resumed, and local vs distributed
    executions allocating (and therefore fingerprinting) identically.
    """

    kind = "base"

    def __init__(
        self, policy: SamplingPolicy, points: Sequence["SweepPoint"] = ()
    ) -> None:
        self.policy = policy
        self.points = tuple(points)

    def next_requests(
        self,
        views: Sequence[PointView],
        allocated: Sequence[int],
        max_trials: int,
    ) -> List[Tuple[int, int]]:
        raise NotImplementedError

    def mapping(self) -> Optional[List[int]]:
        """Per-point stats-source index (cluster representatives), or
        ``None`` when every point's stats are its own."""
        return None

    def state(self) -> Dict[str, Any]:
        """JSON-safe introspection payload (the service status surface)."""
        return {"kind": self.kind}

    # -- shared helpers -------------------------------------------------- #

    def _remaining(self, allocated: Sequence[int]) -> Optional[int]:
        if self.policy.budget is None:
            return None
        return self.policy.budget - sum(allocated)

    def _bootstrap(
        self, allocated: Sequence[int], max_trials: int
    ) -> List[Tuple[int, int]]:
        """Give every never-sampled point ``min_trials`` (budget-capped)."""
        first = min(self.policy.min_trials, max_trials)
        remaining = self._remaining(allocated)
        requests: List[Tuple[int, int]] = []
        for i, a in enumerate(allocated):
            if a != 0:
                continue
            give = first if remaining is None else min(first, remaining)
            if give <= 0:
                break
            requests.append((i, give))
            if remaining is not None:
                remaining -= give
        return requests


class _FixedAllocator(Allocator):
    kind = "fixed"

    def next_requests(self, views, allocated, max_trials):
        return [
            (i, max_trials - a) for i, a in enumerate(allocated) if a < max_trials
        ]


class _CIWidthAllocator(Allocator):
    kind = "ci_width"

    def next_requests(self, views, allocated, max_trials):
        policy = self.policy
        first = min(policy.min_trials, max_trials)
        requests: List[Tuple[int, int]] = []
        for i, a in enumerate(allocated):
            if a == 0:
                requests.append((i, first))
            elif views[i].halfwidth > policy.target and a < max_trials:
                requests.append((i, min(policy.chunk, max_trials - a)))
        return requests


class _BudgetAllocator(Allocator):
    kind = "budget"

    def _starved(self, view: PointView, allocated: int) -> bool:
        """Spent the bootstrap without one finite observation: the metric
        is undefined at this point, so its half-width stays ``inf``
        forever and sampling it further is pure waste."""
        return allocated >= self.policy.min_trials and view.n_finite == 0

    def next_requests(self, views, allocated, max_trials):
        policy = self.policy
        remaining = self._remaining(allocated)
        assert remaining is not None  # budget kind validates budget
        if remaining <= 0:
            return []
        if all(a == 0 for a in allocated):
            return self._bootstrap(allocated, max_trials)
        candidates = [
            i for i in range(len(allocated))
            if not self._starved(views[i], allocated[i])
        ]
        if not candidates:
            return []
        if policy.target is not None and all(
            views[i].halfwidth <= policy.target for i in candidates
        ):
            return []
        widest = max(candidates, key=lambda i: (views[i].halfwidth, -i))
        return [(widest, min(policy.chunk, remaining))]


class _ClusterAllocator(Allocator):
    """Snapshot-clustering allocation: bootstrap → cluster → representatives.

    After the bootstrap round, grid points are grouped by observed
    primary-metric mean (sorted sweep; a point joins the current cluster
    while its mean is within ``2 × target`` of the cluster anchor).  Each
    cluster's representative — the member closest to the cluster mean —
    is then driven to CI half-width ≤ ``target`` exactly like ``ci_width``
    while the members stop sampling; :meth:`mapping` lets the driver map
    the representative's CI-backed stats back to the members with
    provenance flags.  The assignment is computed once, from bootstrap
    aggregates only, so it is a pure function of the fold stream.
    """

    kind = "cluster"

    def __init__(self, policy, points=()):
        super().__init__(policy, points)
        self._assignment: Optional[List[int]] = None

    def _cluster(self, views: Sequence[PointView]) -> List[int]:
        n = len(views)
        tol = 2.0 * self.policy.target
        live = [i for i in range(n) if views[i].n_finite > 0]
        assignment = list(range(n))  # starved points stay singletons
        clusters: List[List[int]] = []
        anchor = math.nan
        for i in sorted(live, key=lambda i: (views[i].mean, i)):
            if clusters and abs(views[i].mean - anchor) <= tol:
                clusters[-1].append(i)
            else:
                clusters.append([i])
                anchor = views[i].mean
        for members in clusters:
            centre = sum(views[i].mean for i in members) / len(members)
            rep = min(members, key=lambda i: (abs(views[i].mean - centre), i))
            for i in members:
                assignment[i] = rep
        return assignment

    def next_requests(self, views, allocated, max_trials):
        policy = self.policy
        if any(a == 0 for a in allocated):
            return self._bootstrap(allocated, max_trials)
        if self._assignment is None:
            self._assignment = self._cluster(views)
        remaining = self._remaining(allocated)
        requests: List[Tuple[int, int]] = []
        for r in sorted(set(self._assignment)):
            view = views[r]
            if view.n_finite == 0:  # starved singleton: nothing to tighten
                continue
            if view.halfwidth > policy.target and allocated[r] < max_trials:
                give = min(policy.chunk, max_trials - allocated[r])
                if remaining is not None:
                    give = min(give, remaining)
                if give <= 0:
                    break
                requests.append((r, give))
                if remaining is not None:
                    remaining -= give
        return requests

    def mapping(self):
        return None if self._assignment is None else list(self._assignment)

    def state(self):
        out = {"kind": self.kind, "phase": "bootstrap", "clusters": None}
        if self._assignment is not None:
            groups: Dict[int, List[int]] = {}
            for i, rep in enumerate(self._assignment):
                groups.setdefault(rep, []).append(i)
            out["phase"] = "representatives"
            out["clusters"] = [
                {"representative": rep, "members": members}
                for rep, members in sorted(groups.items())
            ]
        return out


class _TransitionAllocator(Allocator):
    """Curve-learning allocation for transition-shaped responses.

    Each post-bootstrap round refits the primary-metric means over the
    leading numeric axis — logistic (:func:`repro.util.stats.fit_logistic`)
    vs isotonic (:func:`repro.util.stats.fit_isotonic`), whichever has the
    lower weighted SSE — and hands one ``chunk`` to the eligible point
    where predicted |slope| × CI half-width peaks.  A point's effective
    width target is *relaxed* along two axes of indifference:

    * relative flatness — a point whose slope is small compared to the
      curve's maximum is a plateau; its target stretches quadratically up
      to ``(1 + RELAX) × target``;
    * grid resolution — where the fitted curve moves by ``Δy = |slope| ×
      Δx`` across one grid step, a CI tighter than that movement cannot
      sharpen the curve's *position*, so the target also stretches to
      ``|slope| × Δx`` (capped at the same ``(1 + RELAX)`` ceiling).

    Steep points (normalised slope ≥ ``STEEP``) must additionally reach
    ``2 × min_trials`` before their width test counts: a bootstrap-sized
    sample inside the transition band routinely reports a deceptively
    tight interval around a badly-placed mean.  Together these rules
    concentrate trials on the percolation transition and stop everywhere
    else near the bootstrap floor, which is what reproduces γ(p) within
    CI at a fraction of the trials.  The fit consumes only aggregate
    means/halfwidths, so the allocation sequence is a pure function of
    the fold stream.
    """

    kind = "transition"

    #: Ceiling of both relaxations: no point's effective width target
    #: exceeds ``target * (1 + RELAX)``.
    RELAX = 3.0
    #: Normalised-slope threshold above which a point is "steep" and owes
    #: the ``2 × min_trials`` sample floor.
    STEEP = 0.5

    def __init__(self, policy, points=()):
        super().__init__(policy, points)
        self._xs = _leading_numeric_axis(points)
        self._fit: Optional[str] = None  # introspection: last fit chosen

    def _xvals(self, n: int) -> List[float]:
        # Driven without (or past) the declared grid — e.g. straight through
        # next_requests in tests — fall back to index coordinates.
        if len(self._xs) >= n:
            return self._xs
        return [float(i) for i in range(n)]

    def _slopes(self, views, active: List[int]) -> Dict[int, float]:
        if len(active) < 2:
            return {i: 0.0 for i in active}
        xvals = self._xvals(len(views))
        order = sorted(active, key=lambda i: (xvals[i], i))
        xs = [xvals[i] for i in order]
        ys = [views[i].mean for i in order]
        weights = [float(views[i].n_finite) for i in order]

        def sse(fitted: Sequence[float]) -> float:
            return sum(
                w * (f - y) ** 2 for f, y, w in zip(fitted, ys, weights)
            )

        inc = fit_isotonic(ys, weights, increasing=True)
        dec = fit_isotonic(ys, weights, increasing=False)
        iso = inc if sse(inc) <= sse(dec) else dec
        iso_sse = sse(iso)
        fitted, slopes_at = iso, None
        self._fit = "isotonic"
        if len(set(xs)) >= 3:
            try:
                params = fit_logistic(xs, ys, weights)
            except Exception:  # degenerate geometry: keep the isotonic fit
                params = None
            if params is not None:
                log_fitted = [logistic_value(params, x) for x in xs]
                if sse(log_fitted) < iso_sse:
                    fitted = log_fitted
                    slopes_at = [logistic_slope(params, x) for x in xs]
                    self._fit = "logistic"
        slopes: Dict[int, float] = {}
        m = len(order)
        for j, i in enumerate(order):
            if slopes_at is not None:
                slopes[i] = slopes_at[j]
                continue
            lo = max(j - 1, 0)
            hi = min(j + 1, m - 1)
            dx = xs[hi] - xs[lo]
            slopes[i] = (fitted[hi] - fitted[lo]) / dx if dx > 0 else 0.0
        return slopes

    def _grid_step(self, xvals: Sequence[float], active: List[int]) -> float:
        """Median gap between adjacent distinct active x's (0 if < 2)."""
        xs = sorted({xvals[i] for i in active})
        if len(xs) < 2:
            return 0.0
        gaps = sorted(b - a for a, b in zip(xs, xs[1:]))
        return gaps[len(gaps) // 2]

    def next_requests(self, views, allocated, max_trials):
        policy = self.policy
        if any(a == 0 for a in allocated):
            return self._bootstrap(allocated, max_trials)
        remaining = self._remaining(allocated)
        if remaining is not None and remaining <= 0:
            return []
        active = [i for i in range(len(allocated)) if views[i].n_finite > 0]
        if not active:
            return []
        slopes = self._slopes(views, active)
        s_max = max(abs(slopes[i]) for i in active)
        ceiling = policy.target * (1.0 + self.RELAX)
        dx = self._grid_step(self._xvals(len(views)), active)
        sample_floor = min(2 * policy.min_trials, max_trials)
        best: Optional[Tuple[float, int]] = None
        for i in active:
            if allocated[i] >= max_trials:
                continue
            s_norm = abs(slopes[i]) / s_max if s_max > 0 else 1.0
            flat_tau = policy.target * (
                1.0 + self.RELAX * (1.0 - s_norm) ** 2
            )
            step_tau = min(abs(slopes[i]) * dx, ceiling)
            tau = max(flat_tau, step_tau)
            hw = views[i].halfwidth
            underfed = (
                s_max > 0
                and s_norm >= self.STEEP
                and allocated[i] < sample_floor
            )
            if hw <= tau and not underfed:
                continue
            # inf half-width (a point without an interval yet) outranks
            # everything; otherwise slope-weighted width, floored so a
            # perfectly flat-but-wide point can still win.
            score = math.inf if math.isinf(hw) else (s_norm + 1e-3) * hw
            if best is None or (score, -i) > (best[0], -best[1]):
                best = (score, i)
        if best is None:
            return []
        i = best[1]
        give = min(policy.chunk, max_trials - allocated[i])
        if remaining is not None:
            give = min(give, remaining)
        return [] if give <= 0 else [(i, give)]

    def state(self):
        return {"kind": self.kind, "fit": self._fit}


def _leading_numeric_axis(points: Sequence["SweepPoint"]) -> List[float]:
    """Each point's coordinate on the first all-numeric axis (the curve's
    x-values); falls back to the point index when no axis qualifies."""
    if points:
        n_axes = len(points[0].coords)
        for pos in range(n_axes):
            values = [p.coords[pos][1] for p in points]
            if all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values
            ):
                return [float(v) for v in values]
    return [float(i) for i in range(len(points))]


_ALLOCATORS: Dict[str, type] = {
    "fixed": _FixedAllocator,
    "ci_width": _CIWidthAllocator,
    "budget": _BudgetAllocator,
    "cluster": _ClusterAllocator,
    "transition": _TransitionAllocator,
}


# --------------------------------------------------------------------- #
# SweepSpec
# --------------------------------------------------------------------- #

_SEED_POLICIES = ("scenario", "fault")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: its index, axis coordinates and seedless scenario."""

    index: int
    coords: Tuple[Tuple[str, Any], ...]  # (axis path, value) in axis order
    spec: ScenarioSpec
    #: Per-seed-policy memo of the content hash trial seeds are keyed by —
    #: computing it costs a canonical-JSON serialisation, so it is done once
    #: per point, not once per trial (excluded from equality).
    _seed_keys: Dict[str, str] = field(
        default_factory=dict, compare=False, repr=False
    )

    def coord_dict(self) -> Dict[str, Any]:
        return dict(self.coords)


@dataclass(frozen=True, eq=True)
class SweepSpec:
    """A declarative sweep: base scenario × axes × trials × seed policy.

    The grid is the cartesian product of the axes in declaration order
    (last axis varies fastest — row-major).  Expansion is deterministic:
    equal specs expand to the same ordered sequence of work units on every
    machine, which is what makes sweeps cacheable and resumable at trial
    granularity.

    ``trials`` is the per-point trial count for the ``fixed`` policy and
    the per-point *cap* for ``ci_width``; the ``budget`` policy bounds the
    total instead.  ``metrics`` name the aggregated scalars (first one
    drives adaptive allocation); ``seed`` is the sweep-level entropy and
    ``seed_policy`` picks what the per-trial derivation is keyed by
    (``"scenario"``: graph+fault+analysis; ``"fault"``: graph+fault only,
    for ablations that must reuse fault draws across analysis arms).

    >>> from repro.api.specs import (AnalysisSpec, FaultSpec, GraphSpec,
    ...                              ScenarioSpec)
    >>> sweep = SweepSpec(
    ...     base=ScenarioSpec(
    ...         graph=GraphSpec("torus", {"sides": 8, "d": 2}),
    ...         fault=FaultSpec("random_node", {"p": 0.1}),
    ...         analysis=AnalysisSpec(pruner=None, measure_expansion=False),
    ...     ),
    ...     axes=(Axis("fault.params.p", (0.1, 0.3)),),
    ...     trials=4, seed=11, metrics=("gamma",), label="demo",
    ... )
    >>> sweep.n_points
    2
    >>> [p.spec.label for p in sweep.points()]
    ['demo:p=0.1', 'demo:p=0.3']
    >>> point = sweep.points()[0]
    >>> sweep.trial_seed(point, 0) == sweep.trial_seed(point, 0)  # pure function
    True
    >>> sweep.trial_seed(point, 0) != sweep.trial_seed(point, 1)
    True
    >>> SweepSpec.from_json(sweep.to_json()) == sweep
    True
    """

    base: ScenarioSpec
    axes: Tuple[Axis, ...] = ()
    trials: int = 1
    seed: int = 0
    seed_policy: str = "scenario"
    metrics: Tuple[str, ...] = ("gamma",)
    policy: SamplingPolicy = field(default_factory=SamplingPolicy)
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.base, ScenarioSpec):
            raise SpecError("SweepSpec.base must be a ScenarioSpec")
        if self.base.seed is not None:
            raise SpecError(
                "SweepSpec.base must not carry a seed — per-trial seeds are "
                "derived from SweepSpec.seed (set that instead)"
            )
        axes = tuple(
            a if isinstance(a, Axis) else Axis.from_dict(a) for a in self.axes
        )
        seen = set()
        for a in axes:
            if a.path in seen:
                raise SpecError(f"duplicate axis path {a.path!r}")
            seen.add(a.path)
        object.__setattr__(self, "axes", axes)
        if (
            isinstance(self.trials, bool)
            or not isinstance(self.trials, int)
            or self.trials < 1
        ):
            raise SpecError(f"trials must be a positive int, got {self.trials!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"sweep seed must be an int, got {self.seed!r}")
        if self.seed_policy not in _SEED_POLICIES:
            raise SpecError(
                f"seed_policy must be one of {_SEED_POLICIES}, got "
                f"{self.seed_policy!r}"
            )
        metrics = tuple(self.metrics)
        if not metrics:
            raise SpecError("SweepSpec needs at least one metric")
        for m in metrics:
            if m not in METRICS:
                raise SpecError(
                    f"unknown metric {m!r}; registered: {sorted(METRICS)}"
                )
        object.__setattr__(self, "metrics", metrics)
        if not isinstance(self.policy, SamplingPolicy):
            raise SpecError("SweepSpec.policy must be a SamplingPolicy")

    # -- grid expansion ------------------------------------------------- #

    @property
    def n_points(self) -> int:
        out = 1
        for a in self.axes:
            out *= len(a.values)
        return out

    def points(self) -> List[SweepPoint]:
        """The grid, expanded deterministically (row-major axis product)."""
        base_dict = self.base.to_dict()
        points: List[SweepPoint] = []
        value_lists = [a.values for a in self.axes]
        for index, combo in enumerate(itertools.product(*value_lists)):
            d = _deep_copy_json(base_dict)
            coords = tuple(
                (a.path, v) for a, v in zip(self.axes, combo)
            )
            for path, v in coords:
                _set_path(d, path, _deep_copy_json(v))
            label = self.point_label(coords)
            d["label"] = label
            d["seed"] = None
            spec = ScenarioSpec.from_dict(d)
            points.append(SweepPoint(index=index, coords=coords, spec=spec))
        return points

    def point_label(self, coords: Tuple[Tuple[str, Any], ...]) -> str:
        parts = [self.label or self.base.label or "sweep"]
        parts += [f"{p.rsplit('.', 1)[-1]}={_label_value(v)}" for p, v in coords]
        return ":".join(parts)

    # -- trial seeds ----------------------------------------------------- #

    def _seed_key(self, point: SweepPoint) -> str:
        """Content hash the trial-seed derivation is keyed by (memoised)."""
        cached = point._seed_keys.get(self.seed_policy)
        if cached is not None:
            return cached
        if self.seed_policy == "fault":
            payload = {
                "graph": point.spec.graph.to_dict(),
                "fault": (
                    point.spec.fault.to_dict()
                    if point.spec.fault is not None
                    else None
                ),
            }
        else:
            payload = {
                "graph": point.spec.graph.to_dict(),
                "fault": (
                    point.spec.fault.to_dict()
                    if point.spec.fault is not None
                    else None
                ),
                "analysis": point.spec.analysis.to_dict(),
            }
        key = hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]
        point._seed_keys[self.seed_policy] = key
        return key

    def trial_seed(self, point: SweepPoint, trial: int) -> int:
        """The run seed of trial ``trial`` at ``point``.

        Derived from ``SeedSequence(entropy=sweep seed,
        spawn_key=(point content hash, point index, trial))`` — the keyed
        equivalent of ``SeedSequence.spawn`` — so the stream depends only
        on sweep seed, point identity and trial index: identical for
        ``workers=1`` vs ``N`` and for fresh vs resumed sweeps.  The point
        *index* (itself a pure function of the spec) is part of the key so
        that two grid points with identical coordinates — e.g. clamped
        probability levels that collide — are independent Monte-Carlo
        replicas rather than bit-identical copies reported as independent.
        """
        if trial < 0:
            raise SpecError(f"trial index must be >= 0, got {trial}")
        h = int(self._seed_key(point), 16)
        seq = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(h & 0xFFFFFFFF, (h >> 32) & 0xFFFFFFFF, point.index, trial),
        )
        return int(seq.generate_state(1, dtype=np.uint64)[0])

    def trial_spec(self, point: SweepPoint, trial: int) -> ScenarioSpec:
        """The concrete runnable scenario of one ``(point, trial)`` unit."""
        return point.spec.with_seed(self.trial_seed(point, trial))

    def expand(self) -> Iterator[Tuple[int, int, ScenarioSpec]]:
        """All fixed-allocation work units ``(point index, trial, spec)`` in
        deterministic order (points row-major, trials inner)."""
        for point in self.points():
            for t in range(self.trials):
                yield point.index, t, self.trial_spec(point, t)

    # -- serialisation -------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": [a.to_dict() for a in self.axes],
            "trials": self.trials,
            "seed": self.seed,
            "seed_policy": self.seed_policy,
            "metrics": list(self.metrics),
            "policy": self.policy.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SweepSpec":
        if not isinstance(d, Mapping):
            raise SpecError(f"SweepSpec must be a mapping, got {type(d).__name__}")
        allowed = {
            "base", "axes", "trials", "seed", "seed_policy", "metrics",
            "policy", "label",
        }
        unknown = sorted(set(d) - allowed)
        if unknown:
            raise SpecError(f"SweepSpec dict has unknown key(s) {unknown}")
        if "base" not in d:
            raise SpecError("SweepSpec dict is missing required key 'base'")
        return cls(
            base=ScenarioSpec.from_dict(d["base"]),
            axes=tuple(Axis.from_dict(a) for a in d.get("axes", ())),
            trials=int(d.get("trials", 1)),
            seed=int(d.get("seed", 0)),
            seed_policy=str(d.get("seed_policy", "scenario")),
            metrics=tuple(d.get("metrics", ("gamma",))),
            policy=SamplingPolicy.from_dict(d.get("policy", {})),
            label=str(d.get("label", "")),
        )

    def to_json(self, **kwargs: Any) -> str:
        import json

        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "SweepSpec":
        import json

        try:
            d = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid sweep JSON: {exc}") from exc
        return cls.from_dict(d)

    def hash(self) -> str:
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()[:16]

    def __hash__(self) -> int:
        return hash(canonical_json(self.to_dict()))


def _deep_copy_json(v: Any) -> Any:
    if isinstance(v, dict):
        return {k: _deep_copy_json(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_deep_copy_json(x) for x in v]
    return v


def _label_value(v: Any) -> str:
    if isinstance(v, dict):
        return hashlib.sha256(canonical_json(v).encode()).hexdigest()[:6]
    if isinstance(v, float):
        return f"{v:g}"
    if isinstance(v, (list, tuple)):
        return "x".join(_label_value(x) for x in v)
    return str(v)


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #

_QUANTILES = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class PointStats:
    """Streaming summary of one metric at one grid point."""

    metric: str
    n: int
    mean: float
    std: float
    ci_lo: float
    ci_hi: float
    halfwidth: float
    interval: str  # "normal" | "wilson" | "none"
    minimum: float
    maximum: float
    p10: float
    p50: float
    p90: float
    n_skipped: int

    def to_dict(self) -> Dict[str, Any]:
        def _num(x: float) -> Optional[float]:
            return None if (x != x or math.isinf(x)) else x

        return {
            "metric": self.metric,
            "n": self.n,
            "mean": _num(self.mean),
            "std": _num(self.std),
            "ci_lo": _num(self.ci_lo),
            "ci_hi": _num(self.ci_hi),
            "halfwidth": _num(self.halfwidth),
            "interval": self.interval,
            "min": _num(self.minimum),
            "max": _num(self.maximum),
            "p10": _num(self.p10),
            "p50": _num(self.p50),
            "p90": _num(self.p90),
            "n_skipped": self.n_skipped,
        }


class PointAggregate:
    """Online per-point aggregation across all requested metrics."""

    def __init__(self, metrics: Sequence[str], confidence: float) -> None:
        self.metrics = tuple(metrics)
        self.confidence = confidence
        self._stats = {m: OnlineStats() for m in self.metrics}
        self._quant = {
            m: {p: P2Quantile(p) for p in _QUANTILES} for m in self.metrics
        }
        self._successes = {m: 0 for m in self.metrics}
        self._skipped = {m: 0 for m in self.metrics}

    def push(self, result: RunResult) -> None:
        for m in self.metrics:
            value = METRICS[m].fn(result)
            if value is None or value != value:
                self._skipped[m] += 1
                continue
            value = float(value)
            self._stats[m].push(value)
            for sketch in self._quant[m].values():
                sketch.push(value)
            if METRICS[m].binary and value >= 0.5:
                self._successes[m] += 1

    def halfwidth(self, metric: Optional[str] = None) -> float:
        """CI half-width of a metric (default: the primary allocation one)."""
        m = metric if metric is not None else self.metrics[0]
        stats = self._stats[m]
        if stats.count == 0:
            return math.inf
        if METRICS[m].binary:
            lo, hi = wilson_interval(
                self._successes[m], stats.count, self.confidence
            )
            return (hi - lo) / 2.0
        return stats.halfwidth(self.confidence)

    def mean(self, metric: Optional[str] = None) -> float:
        """Running mean of a metric (default: the primary allocation one);
        ``nan`` until the point has a finite observation."""
        m = metric if metric is not None else self.metrics[0]
        stats = self._stats[m]
        return stats.mean if stats.count else math.nan

    def n_finite(self, metric: Optional[str] = None) -> int:
        """Count of finite observations folded for a metric so far."""
        m = metric if metric is not None else self.metrics[0]
        return self._stats[m].count

    def point_stats(self, metric: str) -> PointStats:
        stats = self._stats[metric]
        n = stats.count
        if n == 0:
            lo = hi = half = math.nan
            kind = "none"
        elif METRICS[metric].binary:
            lo, hi = wilson_interval(self._successes[metric], n, self.confidence)
            half = (hi - lo) / 2.0
            kind = "wilson"
        else:
            lo, hi = stats.interval(self.confidence)
            half = stats.halfwidth(self.confidence)
            kind = "normal"
        quant = self._quant[metric]
        return PointStats(
            metric=metric,
            n=n,
            mean=stats.mean if n else math.nan,
            std=stats.std,
            ci_lo=lo,
            ci_hi=hi,
            halfwidth=half,
            interval=kind,
            minimum=stats.minimum if n else math.nan,
            maximum=stats.maximum if n else math.nan,
            p10=quant[0.1].value,
            p50=quant[0.5].value,
            p90=quant[0.9].value,
            n_skipped=self._skipped[metric],
        )


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PointSummary:
    """Everything the sweep learned about one grid point."""

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    label: str
    n_trials: int
    stats: Dict[str, PointStats]
    trial_fingerprints: Tuple[str, ...]
    results: Optional[Tuple[RunResult, ...]] = None
    #: ``"direct"`` — stats come from this point's own trials;
    #: ``"cluster"`` — stats were mapped from cluster representative
    #: ``source`` (the ``cluster`` policy's result mapping).
    provenance: str = "direct"
    source: Optional[int] = None

    def coord_dict(self) -> Dict[str, Any]:
        return dict(self.coords)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "coords": [[p, v] for p, v in self.coords],
            "label": self.label,
            "n_trials": self.n_trials,
            "stats": {m: s.to_dict() for m, s in self.stats.items()},
            "trial_fingerprints": list(self.trial_fingerprints),
            "provenance": self.provenance,
            "source": self.source,
        }


@dataclass(frozen=True)
class SweepResult:
    """Aggregated outcome of one executed sweep."""

    sweep: SweepSpec
    points: Tuple[PointSummary, ...]
    total_trials: int
    rounds: int

    @property
    def primary_metric(self) -> str:
        return self.sweep.metrics[0]

    def fingerprint(self) -> str:
        """Content hash over the sweep identity and every trial fingerprint
        (in allocation order) — wall-clock free, so fresh vs resumed and
        serial vs parallel executions of the same sweep compare equal."""
        payload = {
            "sweep": self.sweep.hash(),
            "trials": [list(p.trial_fingerprints) for p in self.points],
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]

    def rows(self) -> List[Dict[str, Any]]:
        """Table rows: axis coordinates + per-metric summaries."""
        out: List[Dict[str, Any]] = []
        primary = self.primary_metric
        ci_label = f"ci{round(self.sweep.policy.confidence * 100):g}"
        mapped = any(p.provenance != "direct" for p in self.points)
        for p in self.points:
            row: Dict[str, Any] = {}
            for path, value in p.coords:
                row[path.rsplit(".", 1)[-1]] = (
                    _label_value(value) if isinstance(value, (dict, list)) else value
                )
            stats = p.stats[primary]
            row["trials"] = p.n_trials
            row[f"{primary}_mean"] = _round(stats.mean)
            row[f"{primary}_std"] = _round(stats.std)
            row[ci_label] = (
                f"[{stats.ci_lo:.4f}, {stats.ci_hi:.4f}]"
                if stats.ci_lo == stats.ci_lo and not math.isinf(stats.ci_lo)
                else "n/a"
            )
            for m in self.sweep.metrics[1:]:
                row[f"{m}_mean"] = _round(p.stats[m].mean)
            if mapped:
                row["provenance"] = (
                    p.provenance
                    if p.source is None
                    else f"{p.provenance}<-{p.source}"
                )
            out.append(row)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.to_dict(),
            "sweep_hash": self.sweep.hash(),
            "fingerprint": self.fingerprint(),
            "total_trials": self.total_trials,
            "rounds": self.rounds,
            "points": [p.to_dict() for p in self.points],
        }


def _round(x: float, nd: int = 4) -> Any:
    return round(x, nd) if x == x else "n/a"


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def execute_units(
    sess: "Session",  # noqa: F821
    units: List[Tuple[int, int]],
    specs: List[ScenarioSpec],
    batch_mode,
) -> List[RunResult]:
    """Run one allocation round's work units, choosing per point group
    between the batched engine and the scalar executor path.

    Units arrive grouped contiguously by point (that is how allocation
    builds them), and all trials of one point share (graph, fault,
    analysis) by construction — exactly the shape
    :meth:`Session.run_trials_batched` requires.  Point groups sharing a
    :func:`repro.batch.engine.stack_key` (same graph + analysis) are
    *stacked* — all their trials evaluated as one
    :meth:`Session.run_points_batched` call, so a multi-point grid over
    one graph pays graph resolution and kernel setup once per round
    instead of once per point.  Everything else is dispatched as one
    scalar :meth:`Session.run_iter` call (so process fan-out still covers
    the whole scalar remainder).  Results come back in unit order either
    way, and are bit-identical across strategies, so aggregation and
    fingerprints cannot observe the choice.
    """
    if batch_mode is False:
        return list(sess.run_iter(specs))
    from ..batch import engine as _batch_engine  # late: batch builds on api

    out: List[Optional[RunResult]] = [None] * len(units)
    scalar_positions: List[int] = []
    stacks: Dict[str, List[List[int]]] = {}
    stack_order: List[str] = []
    start = 0
    while start < len(units):
        end = start
        while end < len(units) and units[end][0] == units[start][0]:
            end += 1
        group = list(range(start, end))
        key = _batch_engine.stack_key(specs[start])
        if key is None:
            scalar_positions.extend(group)
        else:
            if key not in stacks:
                stack_order.append(key)
            stacks.setdefault(key, []).append(group)
        start = end
    for key in stack_order:
        groups = stacks[key]
        n_units = sum(len(g) for g in groups)
        # in auto mode a lone single-trial group is not worth the batch
        # setup — keep it on the scalar path, as before multi-point
        # stacking existed
        if batch_mode is True or n_units > 1:
            for group, group_results in zip(
                groups,
                sess.run_points_batched([[specs[p] for p in g] for g in groups]),
            ):
                for pos, result in zip(group, group_results):
                    out[pos] = result
        else:
            scalar_positions.extend(groups[0])
    if scalar_positions:
        scalar_positions.sort()
        for pos, result in zip(
            scalar_positions,
            sess.run_iter([specs[p] for p in scalar_positions]),
        ):
            out[pos] = result
    return out  # type: ignore[return-value]  # every slot is filled


class SweepDriver:
    """The deterministic allocation-round state machine of one sweep.

    This is :func:`run_sweep` with the *execution* cut out: the driver owns
    the grid, the per-point online aggregates, the sampling-policy loop and
    the fingerprint bookkeeping, while the caller decides how each round's
    work units actually run — inline through a :class:`Session`
    (:func:`run_sweep`) or fanned out over service worker processes
    (:mod:`repro.service.scheduler`).  Both callers therefore share one
    definition of "what runs next" and "how results aggregate", which is
    what makes a distributed sweep's fingerprint bit-identical to a local
    one *by construction* rather than by parallel reimplementation.

    Protocol::

        driver = SweepDriver(sweep)
        while True:
            requests = driver.next_round()      # [(point, start, n), ...]
            if not requests:
                break
            for point, start, n in requests:    # execute any way you like,
                for t in range(start, start + n):
                    driver.fold(point, t, run(sweep.trial_spec(...)))
        result = driver.result()

    The one rule the caller must keep: ``fold`` results in *request order*
    (points in the order ``next_round`` returned them, trials ascending
    within each request) before calling ``next_round`` again.  Allocation
    decisions read the aggregates, so feeding them in a different order
    would let adaptive policies diverge between executors.
    """

    def __init__(self, sweep: SweepSpec, *, keep_results: bool = False) -> None:
        self.sweep = sweep
        self.points = sweep.points()
        self.keep_results = keep_results
        self._allocator = sweep.policy.allocator(self.points)
        self._aggs = [
            PointAggregate(sweep.metrics, sweep.policy.confidence)
            for _ in self.points
        ]
        self._allocated = [0] * len(self.points)
        self._fingerprints: List[List[str]] = [[] for _ in self.points]
        self._collected: List[List[RunResult]] = [[] for _ in self.points]
        #: Trials folded so far / allocation rounds issued so far.
        self.total = 0
        self.rounds = 0
        self._done = False

    # -- the policy loop ------------------------------------------------- #

    def _views(self) -> List[PointView]:
        return [
            PointView(
                halfwidth=agg.halfwidth(),
                mean=agg.mean(),
                n_finite=agg.n_finite(),
            )
            for agg in self._aggs
        ]

    def next_round(self) -> List[Tuple[int, int, int]]:
        """Ask the sampling policy's allocator for the next round's work.

        Returns ``(point index, first trial index, n trials)`` requests —
        empty when the sweep is complete (the driver then flips to
        :attr:`done`).  Trial indices advance monotonically per point, so a
        request is exactly the argument set of
        :meth:`SweepSpec.trial_spec` calls the caller must execute.
        """
        if self._done:
            return []
        requests = self._allocator.next_requests(
            self._views(), list(self._allocated), self.sweep.trials
        )
        if not requests:
            self._done = True
            return []
        self.rounds += 1
        out: List[Tuple[int, int, int]] = []
        for i, n_new in requests:
            out.append((i, self._allocated[i], n_new))
            self._allocated[i] += n_new
        return out

    def fold(self, point_index: int, trial: int, result: RunResult) -> None:
        """Fold one completed trial into the aggregates (in request order)."""
        self._aggs[point_index].push(result)
        self._fingerprints[point_index].append(result.fingerprint())
        self.total += 1
        if self.keep_results:
            self._collected[point_index].append(result)

    @property
    def done(self) -> bool:
        """True once :meth:`next_round` has returned an empty allocation."""
        return self._done

    # -- introspection (the service's status surface) -------------------- #

    @property
    def allocated(self) -> Tuple[int, ...]:
        return tuple(self._allocated)

    def allocator_state(self) -> Dict[str, Any]:
        """The allocator's JSON-safe introspection payload (cluster
        assignments, transition fit choice, …) for the service status."""
        return self._allocator.state()

    def point_snapshots(self) -> List[Dict[str, Any]]:
        """Live per-point state: coordinates, progress and current stats —
        the payload behind ``GET /sweeps/{id}`` while a sweep is running."""
        folded = [len(f) for f in self._fingerprints]
        return [
            {
                "index": p.index,
                "label": p.spec.label,
                "coords": [[path, v] for path, v in p.coords],
                "allocated": self._allocated[p.index],
                "completed": folded[p.index],
                "stats": {
                    m: self._aggs[p.index].point_stats(m).to_dict()
                    for m in self.sweep.metrics
                },
            }
            for p in self.points
        ]

    def result(self) -> SweepResult:
        """The aggregated :class:`SweepResult` (valid once :attr:`done`).

        When the allocator clustered the grid (the ``cluster`` policy),
        each member point's stats are mapped from its representative's
        CI-backed aggregate, flagged ``provenance="cluster"`` with
        ``source`` naming the representative; trial fingerprints stay the
        point's own (they record what actually ran)."""
        mapping = self._allocator.mapping()
        summaries = []
        for p in self.points:
            source = mapping[p.index] if mapping is not None else p.index
            stats_from = source if self._aggs[source].n_finite() else p.index
            summaries.append(
                PointSummary(
                    index=p.index,
                    coords=p.coords,
                    label=p.spec.label,
                    n_trials=self._allocated[p.index],
                    stats={
                        m: self._aggs[stats_from].point_stats(m)
                        for m in self.sweep.metrics
                    },
                    trial_fingerprints=tuple(self._fingerprints[p.index]),
                    results=(
                        tuple(self._collected[p.index])
                        if self.keep_results
                        else None
                    ),
                    provenance=(
                        "direct" if stats_from == p.index else "cluster"
                    ),
                    source=None if stats_from == p.index else stats_from,
                )
            )
        summaries = tuple(summaries)
        return SweepResult(
            sweep=self.sweep,
            points=summaries,
            total_trials=self.total,
            rounds=self.rounds,
        )


def run_sweep(
    sweep: SweepSpec,
    session: Optional["Session"] = None,  # noqa: F821 — late import below
    *,
    keep_results: bool = False,
    on_result: Optional[Callable[[int, int, RunResult], None]] = None,
    on_round: Optional[Callable[[int, int, int], None]] = None,
    batch: Optional[Any] = None,
) -> SweepResult:
    """Execute a sweep through a session, aggregating results as they stream.

    Work proceeds in allocation rounds: the sampling policy requests
    ``(point, extra trials)`` batches, the corresponding trial scenarios are
    dispatched through :meth:`Session.run_iter` (store hits are served
    without execution — this is what makes interrupted sweeps resume at
    trial granularity), and every completed result is folded into the
    per-point online aggregates *before* the next allocation decision.

    ``batch`` selects the execution strategy for each grid point's trial
    group (``None`` defers to ``session.batch``, default ``"auto"``): in
    auto mode, multi-trial groups whose scenarios the batched engine
    supports (:func:`repro.batch.engine.supports` — measure-only analyses
    with vectorisable fault models) are evaluated as one ``(T × n)``
    mask-matrix batch instead of T scalar engine calls.  The choice is
    invisible in the results: per-trial records, store entries and the
    sweep fingerprint are bit-identical either way (the differential suite
    enforces this), so ``batch=False`` exists purely as an escape hatch /
    bisection aid.

    ``on_result(point_index, trial_index, result)`` fires per completed
    trial; ``on_round(round_number, units_this_round, total_so_far)`` fires
    before each round executes.  Results are fed to the aggregators in
    deterministic (point, trial) order, so aggregate values — and the
    allocation decisions derived from them — do not depend on worker count
    or execution strategy.
    """
    from .session import Session  # late: session builds on the engine

    sess = session if session is not None else Session()
    batch_mode = batch if batch is not None else getattr(sess, "batch", "auto")
    if not (batch_mode is True or batch_mode is False or batch_mode == "auto"):
        raise SpecError(
            f"batch must be 'auto', True, False or None, got {batch_mode!r}"
        )
    driver = SweepDriver(sweep, keep_results=keep_results)
    points = driver.points
    while True:
        requests = driver.next_round()
        if not requests:
            break
        units: List[Tuple[int, int]] = [
            (i, t) for i, start, n in requests for t in range(start, start + n)
        ]
        if on_round is not None:
            on_round(driver.rounds, len(units), driver.total)
        specs = [sweep.trial_spec(points[i], t) for i, t in units]
        for (i, t), result in zip(
            units, execute_units(sess, units, specs, batch_mode)
        ):
            driver.fold(i, t, result)
            if on_result is not None:
                on_result(i, t, result)
    return driver.result()
