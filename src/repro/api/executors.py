"""Pluggable execution strategies for scenario batches.

:class:`Executor` is the one interface the session layer schedules work
through; the two built-ins are

* :class:`SerialExecutor` — an in-process loop.  Deterministic, zero
  overhead, trivially debuggable; the default for ``workers=1``.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  fan-out (extracted from the old ``run_batch``/``chunked_map`` plumbing).
  Falls back to the serial path when the batch is too small to amortise
  pool start-up.

Both expose the same two operations:

* ``map(fn, items)`` — all results, input order (a barrier);
* ``imap(fn, items)`` — ``(index, result)`` pairs *in completion order*,
  which is what lets :meth:`repro.api.session.Session.run_iter` stream
  results out while later scenarios are still executing.

Work functions must be picklable module-level callables (the process pool
requirement); randomness must come from explicit seeds inside the items so
results never depend on scheduling order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, TypeVar

from ..util.parallel import effective_workers

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "effective_workers",
    "make_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class Executor(ABC):
    """Strategy interface: how a batch of independent tasks is executed."""

    #: Resolved parallelism degree (1 for the serial executor).
    workers: int = 1

    @abstractmethod
    def imap(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[Tuple[int, R]]:
        """Yield ``(input_index, result)`` pairs as tasks complete."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """All results in input order (barriers on the full batch)."""
        work = list(items)
        out: List[R] = [None] * len(work)  # type: ignore[list-item]
        for i, result in self.imap(fn, work):
            out[i] = result
        return out


class SerialExecutor(Executor):
    """In-process loop: lazy, ordered, deterministic."""

    workers = 1

    def imap(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[Tuple[int, R]]:
        for i, item in enumerate(items):
            yield i, fn(item)


class ProcessExecutor(Executor):
    """Process-pool fan-out with a serial fallback for tiny batches.

    Parameters
    ----------
    workers:
        Parallelism degree; ``None``/``0`` selects a CPU-count default.
    min_parallel:
        Below this many items the serial path is always used — the pool
        start-up cost (~100 ms) is never worth amortising over fewer tasks.
    """

    def __init__(self, workers: Optional[int] = None, *, min_parallel: int = 4):
        self.workers = effective_workers(workers)
        self.min_parallel = min_parallel

    def _serial_ok(self, n_items: int) -> bool:
        return self.workers <= 1 or n_items < self.min_parallel

    def imap(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[Tuple[int, R]]:
        work = list(items)
        if self._serial_ok(len(work)):
            yield from SerialExecutor().imap(fn, work)
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {pool.submit(fn, item): i for i, item in enumerate(work)}
            try:
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield pending.pop(future), future.result()
            finally:
                # Abandoned mid-stream (consumer closed the generator):
                # cancel everything still queued so pool teardown only waits
                # for tasks already in flight, not the whole remaining batch.
                for future in pending:
                    future.cancel()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        work = list(items)
        if self._serial_ok(len(work)):
            return [fn(item) for item in work]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, work))


def make_executor(workers: Optional[int] = 1) -> Executor:
    """The default executor for a worker-count spec: serial for ``workers=1``,
    a process pool otherwise (``None``/``0`` = auto-sized pool)."""
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
