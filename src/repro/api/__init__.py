"""Declarative scenario API: specs, registries and the batch run engine.

Quickstart — a scenario is data, execution is shared::

    from repro.api import GraphSpec, FaultSpec, AnalysisSpec, ScenarioSpec, run

    spec = ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 16, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.05}),
        analysis=AnalysisSpec(mode="node"),
        seed=7,
    )
    result = run(spec)                    # RunResult with full provenance
    run_batch([spec.with_seed(s) for s in range(20)], workers=4)

The same scenario round-trips through JSON (``spec.to_json()`` /
``ScenarioSpec.from_json``) and runs from the command line::

    python -m repro run scenario.json

See DESIGN.md for the architecture and :mod:`repro.api.registry` for how
components self-register.
"""

from .registry import (
    FAULT_MODELS,
    GENERATORS,
    PRUNERS,
    Registry,
    RegistryEntry,
    register_fault_model,
    register_generator,
    register_pruner,
)
from .specs import (
    AnalysisSpec,
    FaultSpec,
    GraphSpec,
    RunResult,
    ScenarioSpec,
    canonical_json,
    spec_hash,
)
# Engine attributes resolve lazily (PEP 562).  Component modules import
# ``repro.api.registry`` at their own import time, which initialises this
# package; importing the engine eagerly here would re-enter those partially
# initialised modules.  The registry/specs leaves are safe to load eagerly.
_ENGINE_ATTRS = frozenset(
    {
        "analyze_graph",
        "apply_fault_spec",
        "baseline_expansion",
        "default_epsilon",
        "resolve_finder",
        "resolve_graph",
        "run",
        "run_batch",
        "engine",
    }
)


def __getattr__(name: str):
    if name in _ENGINE_ATTRS:
        import importlib

        engine = importlib.import_module(".engine", __name__)
        return engine if name == "engine" else getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _ENGINE_ATTRS)


__all__ = [
    "GraphSpec",
    "FaultSpec",
    "AnalysisSpec",
    "ScenarioSpec",
    "RunResult",
    "canonical_json",
    "spec_hash",
    "Registry",
    "RegistryEntry",
    "GENERATORS",
    "FAULT_MODELS",
    "PRUNERS",
    "register_generator",
    "register_fault_model",
    "register_pruner",
    "resolve_graph",
    "resolve_finder",
    "apply_fault_spec",
    "baseline_expansion",
    "default_epsilon",
    "analyze_graph",
    "run",
    "run_batch",
]
