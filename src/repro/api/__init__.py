"""Declarative scenario API: specs, registries and the batch run engine.

Quickstart — a scenario is data, execution is shared::

    from repro.api import GraphSpec, FaultSpec, AnalysisSpec, ScenarioSpec, run

    spec = ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 16, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.05}),
        analysis=AnalysisSpec(mode="node"),
        seed=7,
    )
    result = run(spec)                    # RunResult with full provenance
    run_batch([spec.with_seed(s) for s in range(20)], workers=4)

For cached, streaming, resumable execution use the session front door —
results are content-addressed by scenario hash, so identical scenarios are
served from the store instead of re-executing::

    from repro.api import Session

    session = Session("sweep-cache", workers=4)
    for result in session.run_iter(spec.with_seed(s) for s in range(500)):
        ...                               # yields as scenarios complete

The same scenario round-trips through JSON (``spec.to_json()`` /
``ScenarioSpec.from_json``) and runs from the command line::

    python -m repro run scenario.json --store sweep-cache

Grids of scenarios with Monte-Carlo trials per point are first-class too
(:mod:`repro.api.sweeps`): a ``SweepSpec`` expands deterministically into
per-trial work units, aggregates results online as they stream out of the
executor, and supports adaptive (CI-width / budget driven) trial
allocation::

    from repro.api import Axis, SamplingPolicy, SweepSpec, run_sweep

    sweep = SweepSpec(
        base=spec.with_seed(None),
        axes=(Axis("fault.params.p", (0.02, 0.05, 0.1, 0.2)),),
        trials=50,
        policy=SamplingPolicy(kind="ci_width", target=0.02),
    )
    result = run_sweep(sweep, session)    # resumable at trial granularity

See DESIGN.md for the architecture and :mod:`repro.api.registry` for how
components self-register.
"""

from .registry import (
    FAULT_MODELS,
    FINDERS,
    GENERATORS,
    PRUNERS,
    Registry,
    RegistryEntry,
    list_fault_models,
    list_finders,
    list_generators,
    list_pruners,
    register_fault_model,
    register_finder,
    register_generator,
    register_pruner,
)
from .specs import (
    AnalysisSpec,
    FaultSpec,
    GraphSpec,
    RunResult,
    ScenarioSpec,
    canonical_json,
    spec_hash,
)
# Execution-layer attributes resolve lazily (PEP 562).  Component modules
# import ``repro.api.registry`` at their own import time, which initialises
# this package; importing the engine (or anything built on it: session,
# store, executors) eagerly here would re-enter those partially initialised
# modules.  The registry/specs leaves are safe to load eagerly.
_LAZY_ATTRS = {
    "analyze_graph": ".engine",
    "apply_fault_spec": ".engine",
    "baseline_expansion": ".engine",
    "default_epsilon": ".engine",
    "resolve_finder": ".engine",
    "resolve_graph": ".engine",
    "run": ".engine",
    "run_batch": ".engine",
    "engine": ".engine",
    "Session": ".session",
    "ResultStore": ".store",
    "StoreStats": ".store",
    "baseline_key": ".store",
    "Executor": ".executors",
    "SerialExecutor": ".executors",
    "ProcessExecutor": ".executors",
    "make_executor": ".executors",
    "Axis": ".sweeps",
    "SamplingPolicy": ".sweeps",
    "SweepSpec": ".sweeps",
    "SweepResult": ".sweeps",
    "Metric": ".sweeps",
    "METRICS": ".sweeps",
    "register_metric": ".sweeps",
    "run_sweep": ".sweeps",
}


def __getattr__(name: str):
    if name in _LAZY_ATTRS:
        import importlib

        module = importlib.import_module(_LAZY_ATTRS[name], __name__)
        if name == "engine":
            return module
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRS))


__all__ = [
    "GraphSpec",
    "FaultSpec",
    "AnalysisSpec",
    "ScenarioSpec",
    "RunResult",
    "canonical_json",
    "spec_hash",
    "Registry",
    "RegistryEntry",
    "GENERATORS",
    "FAULT_MODELS",
    "PRUNERS",
    "FINDERS",
    "register_generator",
    "register_fault_model",
    "register_pruner",
    "register_finder",
    "list_generators",
    "list_fault_models",
    "list_pruners",
    "list_finders",
    "resolve_graph",
    "resolve_finder",
    "apply_fault_spec",
    "baseline_expansion",
    "default_epsilon",
    "analyze_graph",
    "run",
    "run_batch",
    "Session",
    "ResultStore",
    "StoreStats",
    "baseline_key",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "Axis",
    "SamplingPolicy",
    "SweepSpec",
    "SweepResult",
    "Metric",
    "METRICS",
    "register_metric",
    "run_sweep",
]
