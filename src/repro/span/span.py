"""The span of a graph (Equation 1 of the paper).

    σ = max over compact U of |P(U)| / |Γ(U)|

where ``P(U)`` is a smallest tree connecting every node of the boundary
``Γ(U)`` (node count) — the tree may use nodes from either side of the cut.
By definition ``σ ≥ 1`` (a tree on ``b`` terminals has ≥ ``b`` nodes).

Two computations:

* :func:`span_exact` — enumerate all compact sets (small graphs) and solve
  each boundary's Steiner tree exactly.  Used to verify Theorem 3.6's
  ``σ(mesh) ≤ 2`` on exhaustively checkable instances.
* :func:`span_sampled` — sample compact sets at scale; each sample's ratio is
  a certified *lower* bound on σ when the Steiner solver is exact, and an
  estimate otherwise.  Reports the max and the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..graphs.graph import Graph
from ..graphs.ops import node_boundary
from ..graphs.traversal import is_connected
from ..util.rng import SeedLike, as_generator, spawn
from .compact_enum import enumerate_compact_sets, random_compact_set
from .steiner import (
    DW_MAX_TERMINALS,
    approx_steiner_tree,
    steiner_tree_size_exact,
)

__all__ = ["SpanResult", "SpanSample", "span_exact", "span_sampled"]


@dataclass(frozen=True)
class SpanResult:
    """Exact span with an extremal witness."""

    value: float
    witness: np.ndarray  # the compact set achieving the max
    boundary_size: int
    tree_size: int
    exact: bool


@dataclass(frozen=True)
class SpanSample:
    """One sampled compact set's span ratio."""

    ratio: float
    set_size: int
    boundary_size: int
    tree_size: int


def span_exact(graph: Graph, *, max_nodes: int = 14) -> SpanResult:
    """Exact span by full compact-set enumeration (small connected graphs).

    Every compact set's boundary is solved with Dreyfus–Wagner when its size
    permits (≤ :data:`~repro.span.steiner.DW_MAX_TERMINALS`); larger
    boundaries fall back to the 2-approximation and mark the result
    approximate (`exact=False`).
    """
    if not is_connected(graph):
        raise NotConnectedError("span is defined for connected graphs")
    if graph.n < 3:
        raise InvalidParameterError("span needs at least 3 nodes")
    best: Optional[SpanResult] = None
    all_exact = True
    for u in enumerate_compact_sets(graph, max_nodes=max_nodes):
        boundary = node_boundary(graph, u)
        if boundary.size == 0:  # pragma: no cover - impossible when connected
            continue
        if boundary.size <= DW_MAX_TERMINALS:
            tree = steiner_tree_size_exact(graph, boundary)
            exact = True
        else:
            tree = int(approx_steiner_tree(graph, boundary).shape[0])
            exact = False
            all_exact = False
        ratio = tree / boundary.size
        if best is None or ratio > best.value:
            best = SpanResult(
                value=ratio,
                witness=u,
                boundary_size=int(boundary.size),
                tree_size=tree,
                exact=exact,
            )
    assert best is not None  # a connected graph on >= 3 nodes has compact sets
    return SpanResult(
        value=best.value,
        witness=best.witness,
        boundary_size=best.boundary_size,
        tree_size=best.tree_size,
        exact=all_exact,
    )


def span_sampled(
    graph: Graph,
    *,
    n_samples: int = 64,
    seed: SeedLike = None,
    target_sizes: Optional[List[int]] = None,
) -> List[SpanSample]:
    """Sample compact sets and score their span ratios.

    Returns the accepted samples (may be fewer than ``n_samples`` if
    compactness rejections bite).  ``max(s.ratio for s in samples)`` is the
    sampled span estimate.
    """
    if not is_connected(graph):
        raise NotConnectedError("span is defined for connected graphs")
    rngs = spawn(seed, n_samples)
    samples: List[SpanSample] = []
    for i in range(n_samples):
        size = None
        if target_sizes:
            size = int(target_sizes[i % len(target_sizes)])
        u = random_compact_set(graph, target_size=size, seed=rngs[i])
        if u is None:
            continue
        boundary = node_boundary(graph, u)
        if boundary.size == 0:
            continue
        if boundary.size <= 8 and graph.n <= 128:
            tree = steiner_tree_size_exact(graph, boundary)
        else:
            tree = int(approx_steiner_tree(graph, boundary).shape[0])
        samples.append(
            SpanSample(
                ratio=tree / boundary.size,
                set_size=int(u.size),
                boundary_size=int(boundary.size),
                tree_size=tree,
            )
        )
    return samples
