"""Enumeration and sampling of compact sets.

Exact span computation (small graphs) enumerates *every* compact set — both
the set and its complement must induce connected subgraphs.  Sets are
represented as bitmasks and connectivity is checked by bitmask BFS, so full
enumeration costs ``O(2^n · n)`` big-int operations; fine to ``n ≈ 18``.

At scale, :func:`random_compact_set` samples compact sets by growing a BFS
ball of a random target size around a random centre and rejecting samples
whose complement is disconnected (rare on mesh-like graphs).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.traversal import is_subset_connected
from ..expansion.profiles import bfs_ball
from ..util.rng import SeedLike, as_generator

__all__ = ["enumerate_compact_sets", "random_compact_set", "ENUM_MAX_NODES"]

#: Hard cap for exhaustive compact-set enumeration.
ENUM_MAX_NODES = 18


def _neighbor_bitmasks(graph: Graph) -> list[int]:
    masks = []
    for v in range(graph.n):
        m = 0
        for u in graph.neighbors(v).tolist():
            m |= 1 << u
        masks.append(m)
    return masks


def _mask_connected(mask: int, nbr: list[int]) -> bool:
    if mask == 0:
        return True
    reached = mask & -mask
    while True:
        grow = reached
        m = reached
        while m:
            b = m & -m
            grow |= nbr[b.bit_length() - 1] & mask
            m ^= b
        if grow == reached:
            return reached == mask
        reached = grow


def enumerate_compact_sets(
    graph: Graph, *, max_nodes: int = 16, proper: bool = True
) -> Iterator[np.ndarray]:
    """Yield every compact set of ``graph`` as a sorted id array.

    Parameters
    ----------
    max_nodes:
        Refuses graphs larger than this (enumeration is exponential).
    proper:
        Skip the empty set and the full vertex set (the span definition only
        ranges over proper compact sets, which have non-empty boundaries).

    Notes
    -----
    Each compact set is yielded exactly once; complements are *also* yielded
    (U compact ⇔ V\\U compact) because their boundaries differ.
    """
    n = graph.n
    if n > max_nodes or max_nodes > ENUM_MAX_NODES:
        raise InvalidParameterError(
            f"compact enumeration limited to {ENUM_MAX_NODES} nodes (asked "
            f"{max_nodes}, graph has {n})"
        )
    nbr = _neighbor_bitmasks(graph)
    full = (1 << n) - 1
    lo = 1 if proper else 0
    hi = full if proper else full + 1
    for mask in range(lo, hi):
        if _mask_connected(mask, nbr) and _mask_connected(full ^ mask, nbr):
            yield np.array([i for i in range(n) if mask >> i & 1], dtype=np.int64)


def random_compact_set(
    graph: Graph,
    *,
    target_size: Optional[int] = None,
    seed: SeedLike = None,
    max_tries: int = 64,
) -> Optional[np.ndarray]:
    """Sample one compact set, or ``None`` after ``max_tries`` rejections.

    A BFS ball around a random centre with a random (or given) target size;
    accepted iff the complement is connected (the ball itself always is).
    """
    rng = as_generator(seed)
    n = graph.n
    if n < 3:
        return None
    for _ in range(max_tries):
        size = (
            int(target_size)
            if target_size is not None
            else int(rng.integers(1, max(2, n // 2)))
        )
        size = max(1, min(size, n - 2))
        center = int(rng.integers(n))
        ball = bfs_ball(graph, center, size)
        if ball.size == 0 or ball.size >= n - 1:
            continue
        mask = np.ones(n, dtype=bool)
        mask[ball] = False
        if is_subset_connected(graph, np.flatnonzero(mask)):
            return ball
    return None
