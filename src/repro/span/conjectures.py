"""Span sampling for the paper's open-problem networks.

Section 4 (open problems): *"We conjecture that the butterfly,
shuffle-exchange, and deBruijn network all have a span of O(1), which means
that they can tolerate a constant fault probability."*

This module implements the measurement side of that conjecture: sampled
span ratios over random compact sets for any graph, with the Steiner tree
solved exactly when the boundary is small and 2-approximated otherwise.
Sampled ratios are *lower* bounds on the true span when exact and
estimates otherwise; a family whose sampled ratios stay flat as the size
grows is consistent with O(1) span (no proof — evidence, exactly what an
experimental companion to an open problem can offer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.ops import node_boundary
from ..graphs.traversal import is_connected, largest_component
from ..util.rng import SeedLike, spawn
from .compact_enum import random_compact_set
from .steiner import approx_steiner_tree, steiner_tree_size_exact

__all__ = ["SpanSurvey", "survey_span"]


@dataclass(frozen=True)
class SpanSurvey:
    """Sampled span statistics for one graph."""

    graph_name: str
    n: int
    max_ratio: float
    mean_ratio: float
    p95_ratio: float
    n_samples: int
    exact_fraction: float  # fraction of samples solved with exact Steiner

    def row(self) -> dict:
        return {
            "graph": self.graph_name,
            "n": self.n,
            "samples": self.n_samples,
            "span_max": round(self.max_ratio, 4),
            "span_mean": round(self.mean_ratio, 4),
            "span_p95": round(self.p95_ratio, 4),
            "exact_frac": round(self.exact_fraction, 3),
        }


def survey_span(
    graph: Graph,
    *,
    n_samples: int = 40,
    seed: SeedLike = None,
    exact_boundary_limit: int = 8,
    exact_graph_limit: int = 200,
) -> SpanSurvey:
    """Sample compact sets of ``graph`` and report span-ratio statistics.

    Disconnected graphs are surveyed on their largest component (relevant
    for the symmetrised de Bruijn graph at small orders).
    """
    g = graph
    if not is_connected(g):
        g = g.subgraph(largest_component(g))
    rngs = spawn(seed, max(4 * n_samples, 16))
    ratios: List[float] = []
    exact_count = 0
    i = 0
    while len(ratios) < n_samples and i < len(rngs):
        u = random_compact_set(g, seed=rngs[i])
        i += 1
        if u is None:
            continue
        boundary = node_boundary(g, u)
        if boundary.size == 0:
            continue
        if boundary.size <= exact_boundary_limit and g.n <= exact_graph_limit:
            tree = steiner_tree_size_exact(g, boundary)
            exact_count += 1
        else:
            tree = int(approx_steiner_tree(g, boundary).shape[0])
        ratios.append(tree / boundary.size)
    arr = np.asarray(ratios) if ratios else np.array([np.nan])
    return SpanSurvey(
        graph_name=graph.name,
        n=graph.n,
        max_ratio=float(np.max(arr)),
        mean_ratio=float(np.mean(arr)),
        p95_ratio=float(np.percentile(arr, 95)),
        n_samples=len(ratios),
        exact_fraction=exact_count / max(len(ratios), 1),
    )
