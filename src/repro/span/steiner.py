"""Steiner trees in unweighted graphs.

The span (Equation 1 of the paper) needs ``|P(U)|`` — the number of nodes of
a *smallest tree connecting every node of Γ(U)*, i.e. a Steiner minimal tree
with terminal set ``Γ(U)``.  Two engines:

* :func:`steiner_tree_size_exact` — the Dreyfus–Wagner dynamic program,
  ``O(3^t·n + 2^t·n²)`` for ``t`` terminals: exact, used for span-exact
  computations where boundaries are small (``t ≤ ~12``);
* :func:`approx_steiner_tree` — the classic metric-closure MST
  2-approximation with leaf pruning: builds the complete graph on terminals
  under BFS distance, takes its MST, realises each MST edge as a shortest
  path, and strips non-terminal leaves from the union.  Used for sampled
  span estimates at scale (any upper bound on ``|P(U)|`` only *raises* the
  sampled span, so approximation keeps the ≤-2 mesh check honest via the
  constructive tree of Theorem 3.6 instead).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import InvalidParameterError, NotConnectedError
from ..graphs.graph import Graph, neighbors_of_many
from ..graphs.traversal import bfs_distances, bfs_tree

__all__ = [
    "steiner_tree_size_exact",
    "approx_steiner_tree",
    "steiner_tree_size",
    "DW_MAX_TERMINALS",
]

#: Dreyfus–Wagner is exponential in the terminal count; cap it.
DW_MAX_TERMINALS = 13


def _check_terminals(graph: Graph, terminals: np.ndarray) -> np.ndarray:
    t = np.unique(np.asarray(terminals, dtype=np.int64))
    if t.size == 0:
        raise InvalidParameterError("need at least one terminal")
    if t.min() < 0 or t.max() >= graph.n:
        raise InvalidParameterError(f"terminal ids outside [0, {graph.n})")
    return t


def steiner_tree_size_exact(graph: Graph, terminals: np.ndarray) -> int:
    """Exact Steiner minimal tree size in **nodes** (Dreyfus–Wagner).

    Raises
    ------
    NotConnectedError
        If the terminals are not mutually reachable.
    InvalidParameterError
        If more than :data:`DW_MAX_TERMINALS` terminals are given.
    """
    term = _check_terminals(graph, terminals)
    t = term.shape[0]
    if t == 1:
        return 1
    if t > DW_MAX_TERMINALS:
        raise InvalidParameterError(
            f"Dreyfus–Wagner limited to {DW_MAX_TERMINALS} terminals, got {t}"
        )
    n = graph.n
    # distances from every node (needed by the 'grow' transition); n BFS runs
    dist = np.empty((n, n), dtype=np.int64)
    for v in range(n):
        dist[v] = bfs_distances(graph, v)
    if np.any(dist[term[0], term] < 0):
        raise NotConnectedError("terminals are not in one connected component")
    INF = np.iinfo(np.int64).max // 4
    dist_safe = np.where(dist < 0, INF, dist)
    full = (1 << t) - 1
    # dp[S][v] = min edge count of a tree spanning {terminals in S} ∪ {v}
    dp = np.full((full + 1, n), INF, dtype=np.int64)
    for i in range(t):
        dp[1 << i] = dist_safe[term[i]]
    for s in range(1, full + 1):
        if s & (s - 1) == 0:
            continue  # singletons initialised above
        # merge transition: split S into S' and S \ S' at the same vertex
        sub = (s - 1) & s
        best = dp[s]
        while sub:
            comp = s ^ sub
            if sub < comp:  # each unordered split once
                cand = dp[sub] + dp[comp]
                np.minimum(best, cand, out=best)
            sub = (sub - 1) & s
        # grow transition: attach v via a shortest path from u
        # dp[s][v] = min_u dp[s][u] + dist(u, v)
        grown = np.min(dp[s][None, :].T + dist_safe, axis=0)
        np.minimum(best, grown, out=best)
        dp[s] = best
    edges = int(dp[full][term[0]])
    if edges >= INF:
        raise NotConnectedError("terminals are not connected")
    return edges + 1


def approx_steiner_tree(graph: Graph, terminals: np.ndarray) -> np.ndarray:
    """2-approximate Steiner tree: sorted node ids of the tree.

    Metric-closure MST realised by BFS paths, followed by leaf pruning of
    non-terminal leaves (which can only shrink the tree).
    """
    term = _check_terminals(graph, terminals)
    t = term.shape[0]
    if t == 1:
        return term
    # BFS from each terminal: distances + parents for path realisation
    dists = np.empty((t, graph.n), dtype=np.int64)
    parents = np.empty((t, graph.n), dtype=np.int64)
    for i, v in enumerate(term.tolist()):
        dists[i] = bfs_distances(graph, v)
        parents[i] = bfs_tree(graph, v)
    dterm = dists[:, term]
    if np.any(dterm < 0):
        raise NotConnectedError("terminals are not in one connected component")
    # Prim's MST over the terminal metric closure
    in_tree = np.zeros(t, dtype=bool)
    in_tree[0] = True
    best_dist = dterm[0].copy()
    best_src = np.zeros(t, dtype=np.int64)
    mst_edges: List[tuple[int, int]] = []
    for _ in range(t - 1):
        cand = np.where(in_tree, np.iinfo(np.int64).max, best_dist)
        j = int(np.argmin(cand))
        mst_edges.append((int(best_src[j]), j))
        in_tree[j] = True
        closer = dterm[j] < best_dist
        best_dist = np.where(closer, dterm[j], best_dist)
        best_src = np.where(closer, j, best_src)
    # realise MST edges as BFS paths from the source terminal's tree
    node_set = set(term.tolist())
    for i, j in mst_edges:
        v = int(term[j])
        par = parents[i]
        while par[v] != v:
            node_set.add(v)
            v = int(par[v])
        node_set.add(v)
    nodes = np.array(sorted(node_set), dtype=np.int64)
    return _prune_leaves(graph, nodes, term)


def _prune_leaves(graph: Graph, nodes: np.ndarray, terminals: np.ndarray) -> np.ndarray:
    """Iteratively remove non-terminal degree-1 nodes of a spanning tree of
    the induced subgraph on ``nodes``."""
    sub = graph.subgraph(nodes)
    # build a spanning tree of the (connected) union via BFS parents
    par = bfs_tree(sub, 0)
    tree_deg = np.zeros(sub.n, dtype=np.int64)
    for v in range(1, sub.n):
        p = par[v]
        if p >= 0 and p != v:
            tree_deg[v] += 1
            tree_deg[p] += 1
    is_term = np.zeros(sub.n, dtype=bool)
    term_pos = np.searchsorted(nodes, terminals)
    is_term[term_pos] = True
    alive = np.ones(sub.n, dtype=bool)
    changed = True
    while changed:
        changed = False
        leaves = np.flatnonzero(alive & ~is_term & (tree_deg == 1))
        for v in leaves.tolist():
            alive[v] = False
            tree_deg[v] = 0
            p = par[v]
            if p >= 0 and p != v and alive[p]:
                tree_deg[p] -= 1
            changed = True
    return nodes[alive]


def steiner_tree_size(graph: Graph, terminals: np.ndarray) -> int:
    """Steiner tree size in nodes: exact when the terminal count permits,
    2-approximate otherwise."""
    term = _check_terminals(graph, terminals)
    # The DP is O(3^t·n + 2^t·n²): affordable only when both factors are small.
    if term.shape[0] <= 8 and graph.n <= 128:
        return steiner_tree_size_exact(graph, term)
    return int(approx_steiner_tree(graph, term).shape[0])
