"""The constructive boundary tree of Theorem 3.6 for d-dimensional meshes.

Theorem 3.6 proves the d-dimensional mesh has span ≤ 2 via a construction:

1. Let ``B = Γ(S)`` be the boundary of a compact set ``S``.  Place a
   *virtual edge* between distinct ``u, v ∈ B`` whenever they agree in at
   least ``d − 2`` coordinates and differ by at most 1 in the rest —
   i.e. Chebyshev distance ≤ 1 with at most two differing coordinates.
2. Lemma 3.7 (a Z₂-homology argument): the virtual-edge graph ``(B, Ev)`` is
   **connected** for every compact ``S``.
3. A spanning tree of ``(B, Ev)`` has ``|B| − 1`` virtual edges; each virtual
   edge is realised by at most 2 mesh edges (adjacent pairs directly,
   diagonal pairs through a shared corner neighbour, which always exists in
   the full grid box spanned by the two endpoints).  The union is a connected
   subgraph of the mesh on at most ``2·|B| − 1`` nodes containing ``B``,
   hence ``|P(U)| ≤ 2|B| − 1 < 2|B|``.

:func:`mesh_boundary_tree` performs the construction and reports the ratio,
giving the experiments a *certified* ≤-2 witness per compact set without
solving Steiner instances.  :func:`virtual_edge_graph_connected` checks
Lemma 3.7's claim in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import node_boundary
from ..graphs.traversal import is_subset_connected
from ..util.unionfind import UnionFind

__all__ = [
    "MeshTreeResult",
    "virtual_edges",
    "virtual_edge_graph_connected",
    "mesh_boundary_tree",
]


@dataclass(frozen=True)
class MeshTreeResult:
    """Outcome of the Theorem 3.6 construction on one compact set."""

    boundary: np.ndarray
    tree_nodes: np.ndarray
    virtual_connected: bool

    @property
    def ratio(self) -> float:
        """``|P(U)| / |Γ(U)|`` for the constructed (not nec. optimal) tree."""
        return self.tree_nodes.shape[0] / self.boundary.shape[0]

    @property
    def within_bound(self) -> bool:
        """Whether the constructed tree respects ``|P(U)| ≤ 2·|B| − 1``."""
        return self.tree_nodes.shape[0] <= 2 * self.boundary.shape[0] - 1


def _coord_requirements(graph: Graph) -> np.ndarray:
    if graph.coords is None:
        raise InvalidParameterError("mesh constructions require coordinate metadata")
    return np.asarray(graph.coords, dtype=np.int64)


def virtual_edges(graph: Graph, boundary: np.ndarray) -> List[Tuple[int, int]]:
    """Virtual edge list on the boundary (pairs of *graph* node ids).

    ``u ~ v`` iff their coordinates differ in at most 2 dimensions and by at
    most 1 in each.  Implemented by hashing boundary coordinates and probing
    the ≤ ``2d + 4·C(d,2)`` admissible offsets per node — O(|B|·d²), not
    O(|B|²).
    """
    coords = _coord_requirements(graph)
    b = np.asarray(boundary, dtype=np.int64)
    lookup: Dict[Tuple[int, ...], int] = {
        tuple(coords[v].tolist()): int(v) for v in b
    }
    d = coords.shape[1]
    offsets: List[Tuple[int, ...]] = []
    for axis in range(d):
        for step in (-1, 1):
            off = [0] * d
            off[axis] = step
            offsets.append(tuple(off))
    for a1, a2 in combinations(range(d), 2):
        for s1, s2 in product((-1, 1), repeat=2):
            off = [0] * d
            off[a1], off[a2] = s1, s2
            offsets.append(tuple(off))
    edges: List[Tuple[int, int]] = []
    for v in b.tolist():
        cv = coords[v]
        for off in offsets:
            key = tuple((cv + np.asarray(off)).tolist())
            u = lookup.get(key)
            if u is not None and u > v:
                edges.append((v, u))
    return edges


def virtual_edge_graph_connected(graph: Graph, boundary: np.ndarray) -> bool:
    """Lemma 3.7's claim: is ``(B, Ev)`` connected?"""
    b = np.asarray(boundary, dtype=np.int64)
    if b.size <= 1:
        return True
    index = {int(v): i for i, v in enumerate(b.tolist())}
    uf = UnionFind(b.size)
    for u, v in virtual_edges(graph, b):
        uf.union(index[u], index[v])
    return uf.n_sets == 1


def _realize_virtual_edge(
    graph: Graph, coords: np.ndarray, u: int, v: int
) -> Optional[int]:
    """Mesh node realising a diagonal virtual edge (common neighbour of u, v),
    or ``None`` when ``u`` and ``v`` are already mesh-adjacent."""
    cu, cv = coords[u], coords[v]
    diff_axes = np.flatnonzero(cu != cv)
    if diff_axes.size == 1:
        return None  # direct mesh edge
    # two corner candidates; both coordinate tuples lie in the grid box of
    # (cu, cv), so at least one exists in the mesh — probe via coords hash
    a1, a2 = int(diff_axes[0]), int(diff_axes[1])
    corner1 = cu.copy()
    corner1[a1] = cv[a1]
    corner2 = cu.copy()
    corner2[a2] = cv[a2]
    return _lookup_node(graph, coords, corner1, corner2)


_COORD_CACHE: dict[int, Dict[Tuple[int, ...], int]] = {}


def _lookup_node(
    graph: Graph, coords: np.ndarray, *candidates: np.ndarray
) -> Optional[int]:
    key = id(graph)
    table = _COORD_CACHE.get(key)
    if table is None or len(table) != graph.n:
        table = {tuple(coords[v].tolist()): v for v in range(graph.n)}
        _COORD_CACHE.clear()  # keep at most one graph's table resident
        _COORD_CACHE[key] = table
    for cand in candidates:
        v = table.get(tuple(cand.tolist()))
        if v is not None:
            return int(v)
    return None


def mesh_boundary_tree(graph: Graph, compact_set: np.ndarray) -> MeshTreeResult:
    """Run the Theorem 3.6 construction for one compact set.

    Parameters
    ----------
    graph:
        A mesh (or torus) with coordinate metadata.
    compact_set:
        Node ids of a compact set ``S`` (compactness is the caller's
        responsibility; Lemma 3.7's connectivity claim is *checked* and
        reported, not assumed).

    Returns
    -------
    MeshTreeResult
        Boundary, the realised tree's node set, and whether the virtual
        graph was connected.
    """
    coords = _coord_requirements(graph)
    s = np.asarray(compact_set, dtype=np.int64)
    boundary = node_boundary(graph, s)
    if boundary.size == 0:
        raise InvalidParameterError("compact set has an empty boundary")
    if boundary.size == 1:
        return MeshTreeResult(
            boundary=boundary, tree_nodes=boundary.copy(), virtual_connected=True
        )
    index = {int(v): i for i, v in enumerate(boundary.tolist())}
    ev = virtual_edges(graph, boundary)
    # spanning forest of (B, Ev) via union-find; realise accepted edges only
    uf = UnionFind(boundary.size)
    tree_nodes = set(boundary.tolist())
    accepted = 0
    for u, v in ev:
        if uf.union(index[u], index[v]):
            accepted += 1
            bridge = _realize_virtual_edge(graph, coords, u, v)
            if bridge is not None:
                tree_nodes.add(int(bridge))
    connected = uf.n_sets == 1
    nodes = np.array(sorted(tree_nodes), dtype=np.int64)
    return MeshTreeResult(
        boundary=boundary, tree_nodes=nodes, virtual_connected=connected
    )
