"""The span parameter (Eq. 1) and the mesh span-2 construction (Thm 3.6)."""

from .compact_enum import ENUM_MAX_NODES, enumerate_compact_sets, random_compact_set
from .conjectures import SpanSurvey, survey_span
from .mesh_tree import (
    MeshTreeResult,
    mesh_boundary_tree,
    virtual_edge_graph_connected,
    virtual_edges,
)
from .span import SpanResult, SpanSample, span_exact, span_sampled
from .steiner import (
    DW_MAX_TERMINALS,
    approx_steiner_tree,
    steiner_tree_size,
    steiner_tree_size_exact,
)

__all__ = [
    "enumerate_compact_sets",
    "random_compact_set",
    "ENUM_MAX_NODES",
    "SpanSurvey",
    "survey_span",
    "SpanResult",
    "SpanSample",
    "span_exact",
    "span_sampled",
    "steiner_tree_size",
    "steiner_tree_size_exact",
    "approx_steiner_tree",
    "DW_MAX_TERMINALS",
    "MeshTreeResult",
    "mesh_boundary_tree",
    "virtual_edges",
    "virtual_edge_graph_connected",
]
