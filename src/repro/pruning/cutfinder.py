"""Cut finders: the set-search step of `Prune` and `Prune2`.

The paper's algorithms are existential — each iteration asks for *any* set
``S`` with boundary ratio below a threshold (``|Γ(S)| ≤ α·ε·|S|`` for Prune,
``|(S, G_i\\S)| ≤ αe·ε·|S|`` for Prune2) and ``|S| ≤ |G_i|/2``.  Finding such
a set is NP-hard in general, so the search is a pluggable strategy:

* :class:`ExhaustiveCutFinder` — full bitmask enumeration; *complete* (finds
  a qualifying set whenever one exists).  Used by the integration tests that
  pin the theorems exactly; limited to ~16 nodes.
* :class:`SweepCutFinder` — Fiedler sweep + greedy refinement; sound but
  incomplete (may miss sets, never returns a non-qualifying one).  When it
  misses, Prune terminates early, which only makes the surviving network
  *larger* — the size half of the guarantee still holds and the expansion
  half is re-certified post hoc (see :mod:`repro.pruning.certificates`).
* :class:`HybridCutFinder` — exhaustive below a size threshold, sweep above.

All finders handle disconnected inputs directly: any connected component of
size ≤ n/2 has an empty node boundary / edge boundary, i.e. ratio 0, and is
returned immediately (this is also what makes Prune cull fault-shattered
fragments first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Protocol

import numpy as np

from ..api.registry import register_finder
from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import edge_boundary_count, node_boundary_size
from ..graphs.traversal import component_sizes, connected_components, is_subset_connected
from ..expansion.local import refine_cut
from ..expansion.sweep import best_edge_sweep_cut, best_node_sweep_cut

__all__ = [
    "CutKind",
    "CutFinder",
    "FoundCut",
    "ExhaustiveCutFinder",
    "SweepCutFinder",
    "HybridCutFinder",
    "default_cut_finder",
]

CutKind = Literal["node", "edge"]


@dataclass(frozen=True)
class FoundCut:
    """A qualifying set returned by a finder (ids local to the searched graph)."""

    nodes: np.ndarray
    ratio: float
    boundary: int


class CutFinder(Protocol):
    """Strategy interface for the Prune/Prune2 set search."""

    def find(
        self,
        graph: Graph,
        threshold: float,
        kind: CutKind,
        *,
        require_connected: bool = False,
    ) -> Optional[FoundCut]:
        """Return a set with ratio ≤ ``threshold`` and size ≤ n/2, or None.

        ``require_connected`` restricts the search to connected sets
        (Prune2's loop condition).
        """
        ...  # pragma: no cover


def _ratio_of(graph: Graph, nodes: np.ndarray, kind: CutKind) -> tuple[float, int]:
    if kind == "node":
        b = node_boundary_size(graph, nodes)
        return b / nodes.size, b
    b = edge_boundary_count(graph, nodes)
    return b / nodes.size, b


def _small_component_cut(
    graph: Graph, threshold: float, kind: CutKind
) -> Optional[FoundCut]:
    """If the graph is disconnected, its smallest component is a ratio-0 cut."""
    labels = connected_components(graph)
    if labels.size == 0 or labels.max() == 0:
        return None
    sizes = component_sizes(labels)
    smallest = int(np.argmin(sizes))
    nodes = np.flatnonzero(labels == smallest)
    if nodes.size > graph.n // 2:  # pragma: no cover - impossible with >=2 comps
        return None
    if threshold < 0:
        return None
    return FoundCut(nodes=nodes, ratio=0.0, boundary=0)


@register_finder("exhaustive")
class ExhaustiveCutFinder:
    """Complete bitmask search (small graphs only).

    Returns the *minimum-ratio* qualifying set, preferring smaller sets on
    ties so Prune culls as little as possible.
    """

    def __init__(self, max_nodes: int = 16) -> None:
        if max_nodes < 1 or max_nodes > 20:
            raise InvalidParameterError("max_nodes must be in [1, 20]")
        self.max_nodes = max_nodes

    def find(
        self,
        graph: Graph,
        threshold: float,
        kind: CutKind,
        *,
        require_connected: bool = False,
    ) -> Optional[FoundCut]:
        n = graph.n
        if n == 0:
            return None
        if n > self.max_nodes:
            raise InvalidParameterError(
                f"ExhaustiveCutFinder limited to {self.max_nodes} nodes, got {n}"
            )
        nbr = []
        for v in range(n):
            m = 0
            for u in graph.neighbors(v).tolist():
                m |= 1 << u
            nbr.append(m)
        deg = graph.degrees.tolist()
        half = n // 2
        total = 1 << n
        full = total - 1
        best: Optional[tuple[float, int, int, int]] = None  # ratio, size, mask, boundary
        if kind == "node":
            nbr_of_mask = [0] * total
            for mask in range(1, total):
                low = mask & -mask
                rest = mask ^ low
                nm = nbr_of_mask[rest] | nbr[low.bit_length() - 1]
                nbr_of_mask[mask] = nm
                size = mask.bit_count()
                if size > half:
                    continue
                if require_connected and not _mask_connected(mask, nbr):
                    continue
                boundary = (nm & ~mask & full).bit_count()
                ratio = boundary / size
                if ratio <= threshold + 1e-12:
                    key = (ratio, size, mask, boundary)
                    if best is None or key[:2] < best[:2]:
                        best = key
        else:
            cut_of_mask = [0] * total
            for mask in range(1, total):
                low = mask & -mask
                rest = mask ^ low
                v = low.bit_length() - 1
                cut = cut_of_mask[rest] + deg[v] - 2 * (nbr[v] & rest).bit_count()
                cut_of_mask[mask] = cut
                size = mask.bit_count()
                if size > half:
                    continue
                if require_connected and not _mask_connected(mask, nbr):
                    continue
                ratio = cut / size
                if ratio <= threshold + 1e-12:
                    key = (ratio, size, mask, cut)
                    if best is None or key[:2] < best[:2]:
                        best = key
        if best is None:
            return None
        ratio, _, mask, boundary = best
        nodes = np.array([i for i in range(n) if mask >> i & 1], dtype=np.int64)
        return FoundCut(nodes=nodes, ratio=ratio, boundary=boundary)


def _mask_connected(mask: int, nbr: list[int]) -> bool:
    """Connectivity of the induced subgraph on a bitmask, by bitmask BFS."""
    low = mask & -mask
    reached = low
    while True:
        frontier = reached
        grow = reached
        m = frontier
        while m:
            b = m & -m
            grow |= nbr[b.bit_length() - 1] & mask
            m ^= b
        if grow == reached:
            break
        reached = grow
    return reached == mask


@register_finder("sweep")
class SweepCutFinder:
    """Fiedler-sweep + refinement search (sound, incomplete, scales)."""

    def __init__(self, *, refine: bool = True) -> None:
        self.refine = refine

    def find(
        self,
        graph: Graph,
        threshold: float,
        kind: CutKind,
        *,
        require_connected: bool = False,
    ) -> Optional[FoundCut]:
        if graph.n < 2:
            return None
        small = _small_component_cut(graph, threshold, kind)
        if small is not None:
            return small
        # connected graph from here on
        try:
            cut = (
                best_node_sweep_cut(graph) if kind == "node" else best_edge_sweep_cut(graph)
            )
        except Exception:
            return None
        nodes = cut.nodes
        if self.refine and nodes.size:
            nodes = refine_cut(graph, nodes, kind)
        if nodes.size == 0 or nodes.size > graph.n // 2:
            return None
        if require_connected:
            nodes = _best_connected_piece(graph, nodes, kind)
            if nodes is None:
                return None
        ratio, boundary = _ratio_of(graph, nodes, kind)
        if ratio <= threshold + 1e-12:
            return FoundCut(nodes=nodes, ratio=ratio, boundary=boundary)
        return None


def _best_connected_piece(
    graph: Graph, nodes: np.ndarray, kind: CutKind
) -> Optional[np.ndarray]:
    """Best connected component of ``S`` by the scored ratio.

    For the edge ratio this never hurts: the components of ``S`` partition its
    boundary edges, so the best component's ratio is ≤ S's.  For the node
    ratio it is a heuristic (boundary nodes may be shared).
    """
    sub = graph.subgraph(nodes)
    labels = connected_components(sub)
    n_comp = int(labels.max()) + 1 if sub.n else 0
    if n_comp <= 1:
        return nodes
    best_nodes: Optional[np.ndarray] = None
    best_ratio = float("inf")
    for lbl in range(n_comp):
        piece = nodes[np.flatnonzero(labels == lbl)]
        ratio, _ = _ratio_of(graph, piece, kind)
        if ratio < best_ratio:
            best_ratio = ratio
            best_nodes = piece
    return best_nodes


@register_finder("hybrid")
class HybridCutFinder:
    """Exhaustive below ``exact_threshold`` nodes, sweep otherwise."""

    def __init__(self, exact_threshold: int = 14, *, refine: bool = True) -> None:
        self.exact_threshold = exact_threshold
        self._exact = ExhaustiveCutFinder(max_nodes=min(exact_threshold, 20))
        self._sweep = SweepCutFinder(refine=refine)

    def find(
        self,
        graph: Graph,
        threshold: float,
        kind: CutKind,
        *,
        require_connected: bool = False,
    ) -> Optional[FoundCut]:
        if graph.n <= self.exact_threshold:
            return self._exact.find(
                graph, threshold, kind, require_connected=require_connected
            )
        return self._sweep.find(
            graph, threshold, kind, require_connected=require_connected
        )


def default_cut_finder() -> HybridCutFinder:
    """The library default: exact on tiny graphs, sweep at scale."""
    return HybridCutFinder()
