"""Post-hoc certification of pruning runs against the paper's guarantees.

Two kinds of checks:

* **Soundness of the run itself** (:func:`verify_culls`): every culled set
  really satisfied the loop condition at cull time — this is recorded in the
  :class:`~repro.pruning.prune.CulledSet` certificates and re-checked here
  against the reconstructed intermediate graphs.
* **The theorem-level guarantees** (:func:`theorem21_size_bound`,
  :func:`check_theorem21`): Theorem 2.1's size bound ``|H| ≥ n − k·f/α`` and
  expansion bound ``α(H) ≥ (1 − 1/k)·α``, and Theorem 3.4's
  ``|H| ≥ n/2`` / ``αe(H) ≥ ε·αe`` analogue — evaluated with exact expansion
  on small instances and two-sided estimates at scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from ..expansion.estimate import (
    ExpansionEstimate,
    estimate_edge_expansion,
    estimate_node_expansion,
)
from ..graphs.graph import Graph
from ..graphs.ops import edge_boundary_count, node_boundary_size
from .prune import PruneResult

__all__ = [
    "theorem21_size_bound",
    "theorem21_expansion_bound",
    "theorem21_fault_budget",
    "theorem34_fault_probability",
    "verify_culls",
    "Theorem21Check",
    "check_theorem21",
    "Theorem34Check",
    "check_theorem34",
]


def theorem21_size_bound(n: int, f: int, alpha: float, k: float) -> float:
    """Theorem 2.1's surviving-size guarantee ``n − k·f/α``."""
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    if k < 2:
        raise InvalidParameterError(f"Theorem 2.1 needs k >= 2, got {k}")
    return n - k * f / alpha


def theorem21_expansion_bound(alpha: float, k: float) -> float:
    """Theorem 2.1's expansion guarantee ``(1 − 1/k)·α``."""
    if k < 2:
        raise InvalidParameterError(f"Theorem 2.1 needs k >= 2, got {k}")
    return (1.0 - 1.0 / k) * alpha


def theorem21_fault_budget(n: int, alpha: float, k: float) -> int:
    """Largest ``f`` admissible in Theorem 2.1: ``k·f/α ≤ n/4``."""
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    if k < 2:
        raise InvalidParameterError(f"Theorem 2.1 needs k >= 2, got {k}")
    return int(np.floor(alpha * n / (4.0 * k)))


def theorem34_fault_probability(delta: int, sigma: float) -> float:
    """Theorem 3.4's admissible fault probability ``1/(2e·δ^{4σ})``."""
    if delta < 1:
        raise InvalidParameterError(f"delta must be >= 1, got {delta}")
    if sigma < 1:
        raise InvalidParameterError(f"span is >= 1 by definition, got {sigma}")
    return 1.0 / (2.0 * np.e * float(delta) ** (4.0 * sigma))


def verify_culls(result: PruneResult, *, atol: float = 1e-9) -> bool:
    """Re-validate every culled set's ratio certificate.

    Reconstructs each intermediate graph ``G_i`` and recomputes the boundary
    of the culled set; returns ``True`` iff every recorded ratio matches and
    satisfies the threshold and the half-size condition.
    """
    graph = result.input_graph
    alive = np.ones(graph.n, dtype=bool)
    for cull in result.culled:
        current_ids = np.flatnonzero(alive)
        current = graph.subgraph(current_ids)
        # map recorded (input-local) culled ids into current-local ids
        pos = np.searchsorted(current_ids, cull.nodes)
        if np.any(current_ids[pos] != cull.nodes):
            return False
        if 2 * cull.nodes.shape[0] > current.n:
            return False
        if result.kind == "node":
            boundary = node_boundary_size(current, pos)
        else:
            boundary = edge_boundary_count(current, pos)
        ratio = boundary / cull.nodes.shape[0]
        # Prune2 culls the *compactified* set whose ratio can only be lower
        # than the found set's recorded ratio; require threshold, not equality.
        if ratio > result.threshold + atol and ratio > cull.ratio + atol:
            return False
        alive[cull.nodes] = False
    return True


@dataclass(frozen=True)
class Theorem21Check:
    """Outcome of checking a prune run against Theorem 2.1."""

    size_ok: bool
    expansion_ok: bool
    size_bound: float
    surviving_size: int
    expansion_bound: float
    surviving_expansion: ExpansionEstimate

    @property
    def ok(self) -> bool:
        return self.size_ok and self.expansion_ok


def check_theorem21(
    result: PruneResult,
    *,
    n_original: int,
    f: int,
    alpha: float,
    k: float,
    exact_threshold: int = 14,
) -> Theorem21Check:
    """Check Theorem 2.1's two guarantees on a finished prune run.

    The expansion check uses the *upper* estimate (best cut found) — if even
    the best cut we can construct stays above the bound, the guarantee holds
    for everything our search can see; with the exhaustive finder on small
    graphs this is exact.
    """
    h = result.surviving_graph
    size_bound = theorem21_size_bound(n_original, f, alpha, k)
    expansion_bound = theorem21_expansion_bound(alpha, k)
    if h.n < 2:
        est = ExpansionEstimate(
            kind="node", lower=0.0, upper=0.0,
            witness=np.arange(h.n, dtype=np.int64), exact=True, method="degenerate",
        )
    else:
        est = estimate_node_expansion(h, exact_threshold=exact_threshold)
    return Theorem21Check(
        size_ok=h.n >= size_bound - 1e-9,
        expansion_ok=est.upper >= expansion_bound - 1e-9,
        size_bound=size_bound,
        surviving_size=h.n,
        expansion_bound=expansion_bound,
        surviving_expansion=est,
    )


@dataclass(frozen=True)
class Theorem34Check:
    """Outcome of checking a Prune2 run against Theorem 3.4's guarantee."""

    size_ok: bool
    expansion_ok: bool
    surviving_size: int
    half_n: float
    expansion_bound: float
    surviving_expansion: ExpansionEstimate

    @property
    def ok(self) -> bool:
        return self.size_ok and self.expansion_ok


def check_theorem34(
    result: PruneResult,
    *,
    n_original: int,
    alpha_e: float,
    epsilon: float,
    exact_threshold: int = 14,
) -> Theorem34Check:
    """Check Theorem 3.4's guarantee on a finished Prune2 run:
    ``|H| ≥ n/2`` and ``αe(H) ≥ ε·αe``.

    As with :func:`check_theorem21`, the expansion check uses the best cut
    the estimator can construct; it is exact below ``exact_threshold``.
    """
    if result.kind != "edge":
        raise InvalidParameterError("check_theorem34 expects a prune2 result")
    h = result.surviving_graph
    if h.n < 2:
        est = ExpansionEstimate(
            kind="edge", lower=0.0, upper=0.0,
            witness=np.arange(h.n, dtype=np.int64), exact=True, method="degenerate",
        )
    else:
        est = estimate_edge_expansion(h, exact_threshold=exact_threshold)
    bound = epsilon * alpha_e
    return Theorem34Check(
        size_ok=h.n >= n_original / 2.0,
        expansion_ok=est.upper >= bound - 1e-9,
        surviving_size=h.n,
        half_n=n_original / 2.0,
        expansion_bound=bound,
        surviving_expansion=est,
    )
