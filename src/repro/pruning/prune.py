"""Algorithm `Prune` (Figure 1) — the paper's adversarial-fault tool.

    Algorithm Prune(ε):
      G₀ ← G_f;  i ← 0
      while ∃ Sᵢ ⊆ Gᵢ with |Γ(Sᵢ)| ≤ α·ε·|Sᵢ| and |Sᵢ| ≤ |Gᵢ|/2:
          Gᵢ₊₁ ← Gᵢ \\ Sᵢ;  i ← i+1
      H ← Gᵢ

Theorem 2.1: with ``f`` adversarial faults and any ``k ≥ 2`` such that
``k·f/α ≤ n/4``, ``Prune(1 − 1/k)`` returns ``H`` of size ``≥ n − k·f/α``
with node expansion ``≥ (1 − 1/k)·α``.

``α`` here is the expansion of the *fault-free* network — callers measure it
up front (or use the known closed form for the family) and pass it in.  The
search step is delegated to a :class:`~repro.pruning.cutfinder.CutFinder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import BudgetExceededError, InvalidParameterError
from ..graphs.graph import Graph
from ..util.validation import check_fraction
from .cutfinder import CutFinder, CutKind, default_cut_finder
from ..api.registry import register_pruner

__all__ = ["PruneResult", "prune", "CulledSet"]


@dataclass(frozen=True)
class CulledSet:
    """One culled set with the ratio certificate recorded at cull time."""

    nodes: np.ndarray  # ids local to the *input* graph of prune()
    ratio: float
    boundary: int
    iteration: int


@dataclass(frozen=True)
class PruneResult:
    """Outcome of a pruning run.

    ``surviving_local`` indexes into the graph passed to :func:`prune` (the
    faulty network ``G_f``); use :attr:`surviving_graph` for the induced
    subnetwork ``H``.
    """

    input_graph: Graph
    surviving_local: np.ndarray
    culled: List[CulledSet]
    threshold: float
    kind: str
    iterations: int

    @property
    def surviving_graph(self) -> Graph:
        """The pruned network ``H`` (original_ids resolve through the input)."""
        return self.input_graph.subgraph(self.surviving_local)

    @property
    def n_culled(self) -> int:
        """Total number of nodes removed by pruning."""
        return self.input_graph.n - int(self.surviving_local.shape[0])

    @property
    def survivor_fraction(self) -> float:
        """``|H| / |G_f|``."""
        if self.input_graph.n == 0:
            return 0.0
        return self.surviving_local.shape[0] / self.input_graph.n

    def culled_union(self) -> np.ndarray:
        """All culled node ids (input-local), sorted."""
        if not self.culled:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate([c.nodes for c in self.culled]))


@register_pruner("prune")
def prune(
    graph: Graph,
    alpha: float,
    epsilon: float,
    *,
    finder: Optional[CutFinder] = None,
    max_iterations: Optional[int] = None,
) -> PruneResult:
    """Run ``Prune(ε)`` on the (faulty) network ``graph``.

    Parameters
    ----------
    graph:
        The faulty network ``G_f``.
    alpha:
        Node expansion of the *fault-free* network ``G`` (the threshold in
        the loop condition is ``α·ε``).
    epsilon:
        The prune parameter ``ε ∈ (0, 1]``; Theorem 2.1 uses ``ε = 1 − 1/k``.
    finder:
        Cut-search strategy; defaults to the hybrid finder.
    max_iterations:
        Safety cap (default: ``graph.n`` — each iteration removes ≥ 1 node,
        so the loop can never exceed it; hitting the cap raises).

    Returns
    -------
    PruneResult
        Survivors, culled sets with their ratio certificates, and metadata.
    """
    if alpha < 0:
        raise InvalidParameterError(f"alpha must be >= 0, got {alpha}")
    epsilon = check_fraction(epsilon, "epsilon")
    if finder is None:
        finder = default_cut_finder()
    threshold = alpha * epsilon
    cap = graph.n if max_iterations is None else int(max_iterations)
    alive = np.arange(graph.n, dtype=np.int64)
    culled: List[CulledSet] = []
    iteration = 0
    while alive.size > 0:
        if iteration > cap:
            raise BudgetExceededError(
                f"prune exceeded {cap} iterations — cut finder is misbehaving"
            )
        current = graph.subgraph(alive)
        found = finder.find(current, threshold, "node", require_connected=False)
        if found is None:
            break
        culled.append(
            CulledSet(
                nodes=alive[found.nodes],
                ratio=found.ratio,
                boundary=found.boundary,
                iteration=iteration,
            )
        )
        keep = np.ones(alive.size, dtype=bool)
        keep[found.nodes] = False
        alive = alive[keep]
        iteration += 1
    return PruneResult(
        input_graph=graph,
        surviving_local=alive,
        culled=culled,
        threshold=threshold,
        kind="node",
        iterations=iteration,
    )
