"""Algorithm `Prune2` (Figure 2) — the paper's random-fault tool.

    Algorithm Prune2(ε):
      G₀ ← G_f;  i ← 0
      while ∃ (Sᵢ, Gᵢ\\Sᵢ) in Gᵢ with |(Sᵢ, Gᵢ\\Sᵢ)| ≤ αe·ε·|Sᵢ|,
            |Sᵢ| ≤ |Gᵢ|/2 and Sᵢ connected:
          Kᵢ ← K_{Gᵢ}(Sᵢ)          # compactification, Lemma 3.3
          Gᵢ₊₁ ← Gᵢ \\ Kᵢ;  i ← i+1
      H ← Gᵢ

Theorem 3.4: if ``αe ≥ 6δ²·log³_δ n / n``, fault probability
``p ≤ 1/(2e·δ^{4σ})`` and ``ε ≤ 1/(2δ)``, then with high probability
``Prune2(ε)`` returns ``H`` with ``|H| ≥ n/2`` and edge expansion ``≥ ε·αe``.

As with `Prune`, ``αe`` is the edge expansion of the fault-free network and
the set search is a pluggable finder (with ``require_connected=True``).
A subtlety faithful to the paper: when ``Gᵢ`` itself is disconnected, every
component of size ≤ |Gᵢ|/2 satisfies the loop condition with boundary 0 and
is compact-by-culling (its complement within ``Gᵢ`` may be several
components, so ``K_{Gᵢ}`` falls back to the component itself — already a
union of compact pieces from the perspective of the analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import BudgetExceededError, InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..util.validation import check_fraction
from .compact import compactify, is_compact
from .cutfinder import CutFinder, default_cut_finder
from .prune import CulledSet, PruneResult
from ..api.registry import register_pruner

__all__ = ["prune2"]


@register_pruner("prune2")
def prune2(
    graph: Graph,
    alpha_e: float,
    epsilon: float,
    *,
    finder: Optional[CutFinder] = None,
    max_iterations: Optional[int] = None,
) -> PruneResult:
    """Run ``Prune2(ε)`` on the (faulty) network ``graph``.

    Parameters
    ----------
    graph:
        The faulty network ``G_f``.
    alpha_e:
        Edge expansion of the fault-free network (threshold is ``αe·ε``).
    epsilon:
        Degradation parameter; Theorem 3.4 needs ``ε ≤ 1/(2δ)``.
    finder:
        Cut-search strategy (invoked with ``require_connected=True``).
    max_iterations:
        Safety cap, default ``graph.n``.

    Returns
    -------
    PruneResult
        Same record type as :func:`repro.pruning.prune.prune`, with
        ``kind="edge"``; each culled set is the *compactified* region.
    """
    if alpha_e < 0:
        raise InvalidParameterError(f"alpha_e must be >= 0, got {alpha_e}")
    epsilon = check_fraction(epsilon, "epsilon")
    if finder is None:
        finder = default_cut_finder()
    threshold = alpha_e * epsilon
    cap = graph.n if max_iterations is None else int(max_iterations)
    alive = np.arange(graph.n, dtype=np.int64)
    culled: List[CulledSet] = []
    iteration = 0
    while alive.size > 0:
        if iteration > cap:
            raise BudgetExceededError(
                f"prune2 exceeded {cap} iterations — cut finder is misbehaving"
            )
        current = graph.subgraph(alive)
        found = finder.find(current, threshold, "edge", require_connected=True)
        if found is None:
            break
        s_local = found.nodes
        if is_connected(current) and 2 * s_local.size <= current.n:
            k_local = compactify(current, s_local)
        else:
            # disconnected G_i: the found set is a whole small component (or
            # lies inside one); culling it verbatim matches the analysis.
            k_local = s_local
        culled.append(
            CulledSet(
                nodes=alive[k_local],
                ratio=found.ratio,
                boundary=found.boundary,
                iteration=iteration,
            )
        )
        keep = np.ones(alive.size, dtype=bool)
        keep[k_local] = False
        alive = alive[keep]
        iteration += 1
    return PruneResult(
        input_graph=graph,
        surviving_local=alive,
        culled=culled,
        threshold=threshold,
        kind="edge",
        iterations=iteration,
    )
