"""Compact sets and the compactification map ``K_G(S)`` of Lemma 3.3.

A set ``U`` is *compact* iff both ``U`` and its complement induce connected
subgraphs (paper §1.4).  Lemma 3.3: for any connected ``S`` with
``|S| < n/2`` there is a compact set ``K_G(S)`` whose edge expansion is at
most ``S``'s.  The constructive proof has two cases over the components
``C(S)`` of ``G \\ S``:

* **Case 1** — some component ``C`` has ``|C| ≥ n/2``: take
  ``K = G \\ C`` (contains ``S``; its boundary edges are a subset of S's).
* **Case 2** — all components are ``< n/2``: some component ``Cᵢ`` has edge
  expansion ≤ ``S``'s (otherwise summing the strict inequalities over the
  partition ``Γe(∪Cᵢ) = Γe(S)`` contradicts ``|S| < n/2``); take that one.

Prune2 culls ``K_G(S)`` instead of ``S`` so that culled regions are always
compact — the property the union-bound over spanning trees in Theorem 3.4's
proof needs.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..graphs.ops import as_indices, edge_boundary_count
from ..graphs.traversal import (
    component_sizes,
    connected_components,
    is_subset_connected,
)

__all__ = ["is_compact", "compactify"]


def is_compact(graph: Graph, subset: np.ndarray) -> bool:
    """Whether ``subset`` and its complement are both connected in ``graph``.

    The empty set and the full vertex set are *not* compact (the span takes a
    maximum over proper non-empty compact sets; excluding the degenerate
    cases here keeps every enumeration honest).
    """
    idx = as_indices(graph, subset)
    if idx.size == 0 or idx.size == graph.n:
        return False
    if not is_subset_connected(graph, idx):
        return False
    mask = np.ones(graph.n, dtype=bool)
    mask[idx] = False
    return is_subset_connected(graph, np.flatnonzero(mask))


def compactify(graph: Graph, subset: np.ndarray) -> np.ndarray:
    """``K_G(S)`` per Lemma 3.3: a compact set with edge expansion ≤ S's.

    Parameters
    ----------
    graph:
        Host graph ``G`` (must be connected for the lemma's guarantee; the
        implementation degrades gracefully by operating on components).
    subset:
        A connected set ``S`` with ``1 ≤ |S| < n/2``.

    Returns
    -------
    numpy.ndarray
        Sorted ids of ``K_G(S)``.

    Raises
    ------
    InvalidParameterError
        If ``S`` is empty, too large, or not connected.
    """
    s = as_indices(graph, subset)
    n = graph.n
    if s.size == 0:
        raise InvalidParameterError("compactify needs a non-empty set")
    if 2 * s.size > n:
        # Lemma 3.3 is stated for |S| < n/2; the case-2 argument extends to
        # |S| = n/2 (which Prune2's loop condition permits), so we only
        # reject strictly-larger-than-half sets.
        raise InvalidParameterError(
            f"compactify requires |S| <= n/2 (got |S|={s.size}, n={n})"
        )
    if not is_subset_connected(graph, s):
        raise InvalidParameterError("compactify requires S to be connected")
    if is_compact(graph, s):
        return s
    # components of G \ S
    mask = np.ones(n, dtype=bool)
    mask[s] = False
    rest_ids = np.flatnonzero(mask)
    rest = graph.subgraph(rest_ids)
    labels = connected_components(rest)
    sizes = component_sizes(labels)
    # Case 1: a component with |C| >= n/2 exists -> K = V \ C
    big = np.flatnonzero(sizes * 2 >= n)
    if big.size:
        c_local = np.flatnonzero(labels == int(big[0]))
        c_global = rest_ids[c_local]
        keep = np.ones(n, dtype=bool)
        keep[c_global] = False
        return np.flatnonzero(keep)
    # Case 2: all components < n/2 -> pick the one with min edge expansion
    s_ratio = edge_boundary_count(graph, s) / s.size
    best_nodes = None
    best_ratio = np.inf
    for lbl in range(int(sizes.shape[0])):
        c_global = rest_ids[np.flatnonzero(labels == lbl)]
        ratio = edge_boundary_count(graph, c_global) / c_global.size
        if ratio < best_ratio:
            best_ratio = ratio
            best_nodes = c_global
    assert best_nodes is not None
    if best_ratio > s_ratio + 1e-9:  # pragma: no cover - Lemma 3.3 forbids this
        raise InvalidParameterError(
            "Lemma 3.3 violated — input graph was likely disconnected"
        )
    return np.sort(best_nodes)
