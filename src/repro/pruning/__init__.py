"""The paper's pruning algorithms: Prune (Fig. 1), Prune2 (Fig. 2), Lemma 3.3."""

from .certificates import (
    Theorem21Check,
    Theorem34Check,
    check_theorem21,
    check_theorem34,
    theorem21_expansion_bound,
    theorem21_fault_budget,
    theorem21_size_bound,
    theorem34_fault_probability,
    verify_culls,
)
from .compact import compactify, is_compact
from .cutfinder import (
    CutFinder,
    ExhaustiveCutFinder,
    FoundCut,
    HybridCutFinder,
    SweepCutFinder,
    default_cut_finder,
)
from .prune import CulledSet, PruneResult, prune
from .prune2 import prune2

__all__ = [
    "prune",
    "prune2",
    "PruneResult",
    "CulledSet",
    "compactify",
    "is_compact",
    "CutFinder",
    "FoundCut",
    "ExhaustiveCutFinder",
    "SweepCutFinder",
    "HybridCutFinder",
    "default_cut_finder",
    "verify_culls",
    "check_theorem21",
    "Theorem21Check",
    "check_theorem34",
    "Theorem34Check",
    "theorem21_size_bound",
    "theorem21_expansion_bound",
    "theorem21_fault_budget",
    "theorem34_fault_probability",
]
