"""Closed-form bounds from every theorem of the paper, in one place.

These are the quantities the benchmark tables print next to the measured
values.  Each function cites its theorem; parameter names follow the paper.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "prune_surviving_size",
    "prune_expansion",
    "prune_max_faults",
    "chain_graph_size",
    "chain_expansion_bounds",
    "chain_attack_faults",
    "chain_attack_component_bound",
    "theorem25_fault_bound",
    "theorem31_fault_probability",
    "theorem34_conditions",
    "mesh_span_bound",
    "mesh_tolerable_fault_probability",
    "distance_bound",
]


def prune_surviving_size(n: int, f: int, alpha: float, k: float) -> float:
    """Theorem 2.1: ``|H| ≥ n − k·f/α``."""
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    if k < 2:
        raise InvalidParameterError("Theorem 2.1 requires k >= 2")
    return n - k * f / alpha


def prune_expansion(alpha: float, k: float) -> float:
    """Theorem 2.1: ``α(H) ≥ (1 − 1/k)·α``."""
    if k < 2:
        raise InvalidParameterError("Theorem 2.1 requires k >= 2")
    return (1.0 - 1.0 / k) * alpha


def prune_max_faults(n: int, alpha: float, k: float) -> int:
    """Theorem 2.1's admissibility condition ``k·f/α ≤ n/4`` solved for f."""
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    if k < 2:
        raise InvalidParameterError("Theorem 2.1 requires k >= 2")
    return int(math.floor(alpha * n / (4.0 * k)))


def chain_graph_size(n_base: int, m_base: int, k: int) -> int:
    """Theorem 2.3's construction: ``|H(G, k)| = n + k·m`` nodes."""
    return n_base + k * m_base


def chain_expansion_bounds(k: int, delta: int, beta: float) -> tuple[float, float]:
    """Claim 2.4: ``α(H(G,k)) = Θ(1/k)``.

    Returns an explicit ``(lower, upper)`` pair: the upper bound ``2/k`` is
    the claim's witness set computation; the lower bound ``c/k`` with
    ``c = β/(δ·(δ/2·k + 1)·k) · k`` is loose — we report the simple
    ``β / ((δ/2)·k + 1) / 2`` envelope implied by charging each boundary node
    of a set in H to base-graph structure.  Experiments check measured·k is
    sandwiched between constants.
    """
    if k < 2:
        raise InvalidParameterError("chain length must be >= 2")
    upper = 2.0 / k
    lower = beta / (delta * k + 2.0) / 2.0
    return lower, upper


def chain_attack_faults(n_base: int, m_base: int) -> int:
    """Theorem 2.3's attack removes one centre per chain: ``m = δ·n/2`` faults."""
    return m_base


def chain_attack_component_bound(delta: int, k: int) -> int:
    """After the centre attack every component has ``≤ δ·k/2 + δ + 1`` nodes."""
    return delta * (k // 2) + delta + 1


def theorem25_fault_bound(
    n: int, alpha_of_n: float, epsilon: float, constant: float = 4.0
) -> float:
    """Theorem 2.5: ``O(log(1/ε)/ε · α(n) · n)`` faults shatter a
    uniform-expansion graph into ``< εn`` pieces (explicit constant
    ``constant``)."""
    if not 0 < epsilon < 1:
        raise InvalidParameterError("epsilon must be in (0, 1)")
    return constant * math.log(1.0 / epsilon) / epsilon * alpha_of_n * n


def theorem31_fault_probability(alpha: float, beta: float, delta: int) -> float:
    """Theorem 3.1: chain graphs of expansion α disintegrate at
    ``p = (3·log δ / β) · α`` (log base e, as in the proof's ``4 ln δ / k``
    with ``k = β/α``)."""
    if delta < 2:
        raise InvalidParameterError("delta must be >= 2")
    if not 0 < beta:
        raise InvalidParameterError("beta must be > 0")
    return 3.0 * math.log(delta) / beta * alpha


def theorem34_conditions(
    n: int, delta: int, sigma: float
) -> dict:
    """Theorem 3.4's three admissibility conditions as explicit numbers:

    * minimum edge expansion ``αe ≥ 6δ²·log³_δ n / n``,
    * maximum fault probability ``p ≤ 1/(2e·δ^{4σ})``,
    * maximum degradation ``ε ≤ 1/(2δ)``.
    """
    if delta < 2:
        raise InvalidParameterError("delta must be >= 2")
    if sigma < 1:
        raise InvalidParameterError("span >= 1 by definition")
    log_d_n = math.log(max(n, 2)) / math.log(delta)
    return {
        "alpha_e_min": 6.0 * delta**2 * log_d_n**3 / n,
        "p_max": 1.0 / (2.0 * math.e * float(delta) ** (4.0 * sigma)),
        "epsilon_max": 1.0 / (2.0 * delta),
    }


def mesh_span_bound() -> float:
    """Theorem 3.6: the d-dimensional mesh has span ≤ 2 (for every d)."""
    return 2.0


def mesh_tolerable_fault_probability(d: int) -> float:
    """Section 4 corollary: a d-dimensional mesh (δ = 2d, σ ≤ 2) tolerates
    ``p ≤ 1/(2e·(2d)^8)`` — inversely polynomial in d."""
    if d < 1:
        raise InvalidParameterError("d must be >= 1")
    return 1.0 / (2.0 * math.e * float(2 * d) ** 8)


def distance_bound(alpha: float, n: int, constant: float = 2.0) -> float:
    """Section 4 / [20]: distance in an expansion-α graph is O(α⁻¹·log n)."""
    if alpha <= 0:
        raise InvalidParameterError("alpha must be > 0")
    return constant * math.log(max(n, 2) / 2.0) / math.log1p(alpha) + 1.0
