"""High-level API: theory bounds, the analyzer facade, experiment runners."""

from . import bounds, experiments
from .analyzer import FaultExpansionAnalyzer
from .report import FaultToleranceReport

__all__ = [
    "bounds",
    "experiments",
    "FaultExpansionAnalyzer",
    "FaultToleranceReport",
]
