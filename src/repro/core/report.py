"""Analysis reports: the structured results the analyzer facade returns.

A :class:`FaultToleranceReport` bundles everything a user wants after
"inject faults, prune, measure": the scenario, the pruned network, the
component structure before/after, expansion estimates, and theory-bound
comparisons.  Rendering routes through the shared renderers in
:mod:`repro.report.tables` — ``render()`` produces the plain-text table
used by the examples and benches, ``to_markdown()`` the report form —
so one stringification rule set covers every output surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from ..expansion.estimate import ExpansionEstimate
from ..faults.model import FaultScenario
from ..graphs.traversal import ComponentSummary
from ..pruning.prune import PruneResult
from ..report.tables import fmt_float, format_table, markdown_table

__all__ = ["FaultToleranceReport"]


@dataclass(frozen=True)
class FaultToleranceReport:
    """Full digest of one fault-injection + pruning analysis."""

    scenario: FaultScenario
    baseline_expansion: ExpansionEstimate
    faulty_components: ComponentSummary
    prune_result: PruneResult
    surviving_expansion: Optional[ExpansionEstimate]
    epsilon: float

    @property
    def n_original(self) -> int:
        return self.scenario.original.n

    @property
    def n_surviving(self) -> int:
        return int(self.prune_result.surviving_local.shape[0])

    @property
    def surviving_fraction(self) -> float:
        """``|H| / n`` relative to the fault-free network."""
        return self.n_surviving / self.n_original if self.n_original else 0.0

    @property
    def expansion_retention(self) -> float:
        """``α(H) / α(G)`` using the point estimates (nan when undefined)."""
        if self.surviving_expansion is None or self.baseline_expansion.value <= 0:
            return float("nan")
        return self.surviving_expansion.value / self.baseline_expansion.value

    def _rows(self) -> List[List[Any]]:
        """The ``(quantity, value)`` pairs every renderer shares."""
        return [
            ["original nodes", self.n_original],
            ["faults", self.scenario.f],
            ["fault fraction", fmt_float(self.scenario.fault_fraction)],
            ["fault kind", self.scenario.kind],
            ["faulty components", self.faulty_components.n_components],
            ["largest faulty component", self.faulty_components.largest_size],
            ["pruned away", self.prune_result.n_culled],
            ["surviving |H|", self.n_surviving],
            ["surviving fraction", fmt_float(self.surviving_fraction)],
            ["baseline expansion", fmt_float(self.baseline_expansion.value)],
            [
                "surviving expansion",
                fmt_float(self.surviving_expansion.value)
                if self.surviving_expansion is not None
                else "n/a",
            ],
            ["expansion retention", fmt_float(self.expansion_retention)],
            ["prune threshold", fmt_float(self.prune_result.threshold)],
            ["prune iterations", self.prune_result.iterations],
        ]

    @property
    def _title(self) -> str:
        return f"Fault-tolerance report — {self.scenario.original.name}"

    def render(self) -> str:
        """Multi-line plain-text report."""
        return format_table(["quantity", "value"], self._rows(), title=self._title)

    def to_markdown(self) -> str:
        """The same report as a GitHub pipe table."""
        return markdown_table(["quantity", "value"], self._rows(), title=self._title)
