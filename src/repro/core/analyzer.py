"""`FaultExpansionAnalyzer` — the library's high-level entry point.

Typical use (this is the quickstart example):

    >>> from repro.graphs.generators import torus
    >>> from repro.core import FaultExpansionAnalyzer
    >>> analyzer = FaultExpansionAnalyzer(torus(16, 2))
    >>> report = analyzer.random_faults(p=0.05, seed=7)
    >>> report.surviving_fraction > 0.8
    True

The analyzer is a thin convenience wrapper over the declarative scenario
API (:mod:`repro.api`): it holds a concrete graph, builds
:class:`~repro.api.specs.FaultSpec` / :class:`~repro.api.specs.AnalysisSpec`
records internally, and executes every analysis through the shared
:func:`repro.api.engine.analyze_graph` pipeline — the same code path
``repro.api.run`` uses for JSON scenarios.  The fault-free expansion is
measured once and cached.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from ..api.engine import (
    analyze_graph,
    apply_fault_spec,
    baseline_expansion,
    default_epsilon,
)
from ..api.specs import AnalysisSpec, FaultSpec
from ..errors import InvalidParameterError
from ..expansion.estimate import ExpansionEstimate
from ..faults.model import FaultScenario, apply_node_faults
from ..graphs.graph import Graph
from ..pruning.cutfinder import CutFinder, default_cut_finder
from ..util.rng import SeedLike
from .report import FaultToleranceReport

__all__ = ["FaultExpansionAnalyzer"]

Mode = Literal["node", "edge"]


class FaultExpansionAnalyzer:
    """Inject faults into a network, prune, and report retained expansion.

    Parameters
    ----------
    graph:
        The fault-free network ``G``.
    mode:
        ``"node"`` uses node expansion + `Prune` (the adversarial-fault
        pipeline, Theorem 2.1); ``"edge"`` uses edge expansion + `Prune2`
        (the random-fault pipeline, Theorem 3.4).
    epsilon:
        Pruning degradation parameter.  Defaults: ``1/2`` for node mode
        (Theorem 2.1 with k = 2) and ``1/(2δ)`` for edge mode (Theorem 3.4's
        admissible maximum).
    finder:
        Cut-search strategy shared by all runs (default: hybrid).
    exact_threshold:
        Below this size expansion estimates are exact.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        mode: Mode = "node",
        epsilon: Optional[float] = None,
        finder: Optional[CutFinder] = None,
        exact_threshold: int = 14,
    ) -> None:
        if graph.n < 2:
            raise InvalidParameterError("analyzer needs at least 2 nodes")
        if mode not in ("node", "edge"):
            raise InvalidParameterError(f"mode must be node/edge, got {mode}")
        self.graph = graph
        self.mode: Mode = mode
        if epsilon is None:
            epsilon = default_epsilon(graph, mode)
        if not 0 < epsilon <= 1:
            raise InvalidParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.finder = finder if finder is not None else default_cut_finder()
        self.exact_threshold = exact_threshold
        self._baseline: Optional[ExpansionEstimate] = None

    # ------------------------------------------------------------------ #

    def analysis_spec(self) -> AnalysisSpec:
        """The declarative :class:`AnalysisSpec` equivalent of this analyzer
        (finder objects have no spec form; the default hybrid is assumed)."""
        return AnalysisSpec(
            mode=self.mode,
            pruner="prune" if self.mode == "node" else "prune2",
            epsilon=self.epsilon,
            exact_threshold=self.exact_threshold,
        )

    @property
    def baseline_expansion(self) -> ExpansionEstimate:
        """Fault-free expansion (measured once, cached)."""
        if self._baseline is None:
            self._baseline = baseline_expansion(
                self.graph, self.mode, exact_threshold=self.exact_threshold
            )
        return self._baseline

    # ------------------------------------------------------------------ #

    def random_faults(self, p: float, seed: SeedLike = None) -> FaultToleranceReport:
        """Inject i.i.d. node faults at probability ``p`` and analyse."""
        if isinstance(seed, (int, np.integer)) or seed is None:
            scenario = apply_fault_spec(
                self.graph,
                FaultSpec("random_node", {"p": p}),
                seed=int(seed) if seed is not None else None,
            )
        else:  # Generator / SeedSequence inputs bypass the spec layer
            from ..faults.random_faults import random_node_faults

            scenario = random_node_faults(self.graph, p, seed)
        return self.analyze_scenario(scenario)

    def adversarial_faults(self, faulty_nodes: np.ndarray) -> FaultToleranceReport:
        """Analyse an explicit fault set (e.g. from an attack strategy)."""
        scenario = apply_node_faults(self.graph, faulty_nodes, kind="adversarial")
        return self.analyze_scenario(scenario)

    def sweep(
        self,
        p_values,
        *,
        trials: int = 3,
        seed: SeedLike = None,
    ) -> list[dict]:
        """Fault-probability sweep: mean survivor fraction and expansion
        retention at each ``p`` over ``trials`` independent fault draws.

        Aggregation is online (:class:`~repro.util.stats.OnlineStats` —
        the same streaming pattern as :mod:`repro.api.sweeps`), so memory
        stays constant no matter how many trials a point accumulates.
        Returns row-dicts (render with
        :func:`repro.util.tables.format_row_dicts`), the same shape the
        experiment runners produce.

        For cached, resumable, adaptively-sampled sweeps over *declarative*
        scenarios, build a :class:`repro.api.sweeps.SweepSpec` instead —
        this method is the in-memory convenience for a concrete graph.
        """
        from ..faults.random_faults import random_node_faults
        from ..util.rng import spawn
        from ..util.stats import OnlineStats

        p_list = list(p_values)  # materialise once — generators are one-shot
        rows: list[dict] = []
        rngs = spawn(seed, len(p_list) * trials)
        i = 0
        for p in p_list:
            fractions, retentions = OnlineStats(), OnlineStats()
            for _ in range(trials):
                report = self.analyze_scenario(
                    random_node_faults(self.graph, p, rngs[i])
                )
                i += 1
                fractions.push(report.surviving_fraction)
                retention = report.expansion_retention
                if retention == retention:  # skip NaN (empty H)
                    retentions.push(retention)
            rows.append(
                {
                    "p": p,
                    "trials": trials,
                    "mean_survivor_frac": fractions.mean,
                    "mean_expansion_retention": (
                        retentions.mean if retentions.count else float("nan")
                    ),
                }
            )
        return rows

    def analyze_scenario(self, scenario: FaultScenario) -> FaultToleranceReport:
        """Prune the scenario's surviving network and package the report."""
        if scenario.original is not self.graph and scenario.original != self.graph:
            raise InvalidParameterError("scenario was built on a different graph")
        return analyze_graph(
            self.graph,
            scenario,
            mode=self.mode,
            pruner="prune" if self.mode == "node" else "prune2",
            epsilon=self.epsilon,
            finder=self.finder,
            exact_threshold=self.exact_threshold,
            baseline=self.baseline_expansion,
        )
