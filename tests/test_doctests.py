"""Run the public-API docstring examples as doctests.

The documentation satellite contract: every example in the docstrings of
the four public API modules (plus the report-layer table helpers) must
execute — documentation that drifts from the API fails the build.
"""

import doctest

import pytest

import repro.api.session
import repro.api.specs
import repro.api.sweeps
import repro.report.tables
import repro.util.stats

MODULES = [
    repro.api.specs,
    repro.api.session,
    repro.api.sweeps,
    repro.util.stats,
    repro.report.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.IGNORE_EXCEPTION_DETAIL,
        verbose=False,
    )
    assert result.attempted > 0, f"{module.__name__} has no doctest examples"
    assert result.failed == 0


def test_doctest_coverage_spans_public_surface():
    """Each audited module documents several distinct objects by example."""
    counts = {
        m.__name__: len(doctest.DocTestFinder().find(m, globs=vars(m)))
        for m in MODULES
    }
    finder = doctest.DocTestFinder()
    with_examples = {
        m.__name__: sum(1 for t in finder.find(m) if t.examples)
        for m in MODULES
    }
    assert with_examples["repro.util.stats"] >= 6
    assert with_examples["repro.api.specs"] >= 6
    assert with_examples["repro.api.sweeps"] >= 3
    assert with_examples["repro.api.session"] >= 1
    assert counts  # sanity
