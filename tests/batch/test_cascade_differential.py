"""Cascade differential wall: batched rounds kernel vs the scalar loop.

:func:`repro.batch.rounds.cascade_rounds` advances T cascades in lockstep
with one padded ``np.add.reduceat`` per round; the scalar reference
:func:`repro.faults.cascade.cascade_fixpoint` runs one cascade with the
identical per-round formulas over the identical CSR segment order.  The
contract is *bit*-identity — same failed masks, same round counts, same
downstream records and fingerprints — on every input, under every
backend.  Hypothesis generates the wall: arbitrary graphs (including the
new small-world/geographic families), arbitrary seed sets, margins from
0 to far above any reachable load.

Like :mod:`tests.batch.test_backend_differential`, the numba legs skip
when numba is not importable; the numpy legs always run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from property.strategies import (  # tests/property/strategies.py
    geographic_graphs,
    graphs,
    small_world_graphs,
)

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.backend import numba_backend
from repro.batch.engine import supports
from repro.batch.faults import MASK_SAMPLERS, batched_fault_masks
from repro.batch.rounds import cascade_rounds
from repro.faults.cascade import cascade_fixpoint, load_cascade

pytestmark = [pytest.mark.differential, pytest.mark.scenarios]

HAS_NUMBA = numba_backend.available()
needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")

any_graphs = st.one_of(
    graphs(min_nodes=2, max_nodes=14, max_extra_edges=20),
    small_world_graphs(),
    geographic_graphs(),
)

alphas = st.sampled_from([0.0, 0.05, 0.2, 0.25, 0.5, 1.0, 10.0])


def payload(r):  # timings are wall-clock, everything else is content
    return {k: v for k, v in r.to_dict().items() if k != "timings"}


# --------------------------------------------------------------------- #
# kernel level: cascade_rounds row-for-row == cascade_fixpoint
# --------------------------------------------------------------------- #


@given(
    g=any_graphs,
    alpha=alphas,
    seed=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 5),
)
@settings(max_examples=120, deadline=None)
def test_batched_rounds_bit_identical_to_scalar(g, alpha, seed, trials):
    rng = np.random.default_rng(seed)
    seed_masks = rng.random((trials, g.n)) < 0.2
    final, rounds = cascade_rounds(g, seed_masks, alpha)
    assert final.shape == (trials, g.n) and final.dtype == np.bool_
    for t in range(trials):
        ref_mask, ref_rounds = cascade_fixpoint(g, seed_masks[t], alpha)
        assert np.array_equal(final[t], ref_mask)
        assert int(rounds[t]) == ref_rounds


# --------------------------------------------------------------------- #
# sampler level: the registered mask sampler replays the scalar model RNG
# --------------------------------------------------------------------- #


@given(
    g=any_graphs,
    alpha=alphas,
    n_seeds=st.integers(1, 3),
    seed0=st.integers(0, 2**31 - 8),
    trials=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_mask_sampler_matches_scalar_model(g, alpha, n_seeds, seed0, trials):
    n_seeds = min(n_seeds, max(g.n, 1))
    seeds = [seed0 + t for t in range(trials)]
    params = {"alpha": alpha, "n_seeds": n_seeds}
    assert "cascade" in MASK_SAMPLERS
    masks, kind = batched_fault_masks(g, "cascade", params, seeds)
    assert masks.shape == (trials, g.n)
    for t, s in enumerate(seeds):
        sc = load_cascade(g, alpha=alpha, n_seeds=n_seeds, seed=s)
        scalar_mask = np.zeros(g.n, dtype=bool)
        scalar_mask[sc.faulty_nodes] = True
        assert np.array_equal(masks[t], scalar_mask)
        assert sc.kind == kind


# --------------------------------------------------------------------- #
# pipeline level: identical records + fingerprints, both backends
# --------------------------------------------------------------------- #

CASCADE_SPEC = ScenarioSpec(
    graph=GraphSpec("torus", {"sides": 6, "d": 2}),
    fault=FaultSpec("cascade", {"alpha": 0.2, "n_seeds": 2}),
    analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
)


def test_engine_supports_cascade_specs():
    assert supports(CASCADE_SPEC.with_seed(0))


@pytest.mark.parametrize("gspec", [
    GraphSpec("torus", {"sides": 6, "d": 2}),
    GraphSpec("watts_strogatz", {"n": 30, "k": 4, "beta": 0.2, "seed": 5}),
    GraphSpec("geographic", {"n": 30, "q": 0.9, "scale": 0.3, "seed": 5}),
])
@pytest.mark.parametrize("alpha", [0.0, 0.25, 5.0])
def test_batched_pipeline_matches_scalar(gspec, alpha):
    specs = [
        ScenarioSpec(
            graph=gspec,
            fault=FaultSpec("cascade", {"alpha": alpha, "n_seeds": 1}),
            analysis=AnalysisSpec(
                mode="node", pruner=None, measure_expansion=False
            ),
            seed=s,
        )
        for s in range(5)
    ]
    scalar = [Session(batch=False).run(spec) for spec in specs]
    batched = Session(backend="numpy").run_trials_batched(specs)
    assert [payload(r) for r in batched] == [payload(r) for r in scalar]
    assert [r.fingerprint() for r in batched] == [r.fingerprint() for r in scalar]


@needs_numba
def test_cascade_records_identical_across_backends():
    specs = [CASCADE_SPEC.with_seed(s) for s in range(6)]
    a = Session(backend="numpy").run_trials_batched(specs)
    b = Session(backend="numba").run_trials_batched(specs)
    assert [payload(r) for r in a] == [payload(r) for r in b]
