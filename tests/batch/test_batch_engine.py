"""Unit tests for the batched engine's eligibility, validation and wiring."""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SweepSpec, run_sweep
from repro.batch import engine as batch_engine
from repro.errors import SpecError

MEASURE_ONLY = AnalysisSpec(mode="node", pruner=None, measure_expansion=False)
TORUS = GraphSpec("torus", {"sides": 6, "d": 2})


def _spec(seed=0, **kwargs):
    defaults = dict(
        graph=TORUS,
        fault=FaultSpec("random_node", {"p": 0.2}),
        analysis=MEASURE_ONLY,
        seed=seed,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# --------------------------------------------------------------------- #
# supports()
# --------------------------------------------------------------------- #


def test_supports_measure_only_random_faults():
    assert batch_engine.supports(_spec())
    assert batch_engine.supports(_spec(fault=None))


def test_supports_rejects_pruning_and_expansion_measurement():
    assert not batch_engine.supports(
        _spec(analysis=AnalysisSpec(mode="node", pruner="prune"))
    )
    assert not batch_engine.supports(
        _spec(analysis=AnalysisSpec(mode="node", pruner=None,
                                    measure_expansion=True))
    )


def test_supports_rejects_unsampled_fault_models():
    assert not batch_engine.supports(
        _spec(fault=FaultSpec("separator", {"budget": 2}))
    )
    assert not batch_engine.supports("not a spec")


# --------------------------------------------------------------------- #
# run_trials validation
# --------------------------------------------------------------------- #


def test_run_trials_empty_input():
    assert batch_engine.run_trials([]) == []


def test_run_trials_rejects_heterogeneous_batches():
    with pytest.raises(SpecError, match="sharing one"):
        batch_engine.run_trials(
            [_spec(0), _spec(1, fault=FaultSpec("random_node", {"p": 0.5}))]
        )


def test_run_trials_rejects_unsupported_scenarios():
    bad = _spec(analysis=AnalysisSpec(mode="node", pruner="prune"))
    with pytest.raises(SpecError, match="not batchable"):
        batch_engine.run_trials([bad, bad])


# --------------------------------------------------------------------- #
# Session wiring
# --------------------------------------------------------------------- #


def test_session_validates_batch_mode():
    with pytest.raises(SpecError):
        Session(batch="sometimes")
    assert Session(batch=True).batch is True
    assert Session().batch == "auto"


def test_session_run_trials_batched_counts_hits(tmp_path):
    specs = [_spec(seed) for seed in range(4)]
    session = Session(store=tmp_path / "store")
    first = session.run_trials_batched(specs)
    assert (session.hits, session.misses) == (0, 4)
    second = session.run_trials_batched(specs)
    assert (session.hits, session.misses) == (4, 4)
    assert [r.fingerprint() for r in first] == [r.fingerprint() for r in second]


def test_run_sweep_validates_batch_argument():
    sweep = SweepSpec(base=_spec(seed=None).with_seed(None), trials=1, seed=1)
    with pytest.raises(SpecError):
        run_sweep(sweep, Session(), batch="sometimes")


def test_run_sweep_falls_back_to_scalar_for_unbatchable_points():
    """batch=True on a pruning sweep must still work (scalar fallback)."""
    sweep = SweepSpec(
        base=ScenarioSpec(
            graph=TORUS,
            fault=FaultSpec("random_node", {"p": 0.2}),
            analysis=AnalysisSpec(mode="node", pruner="prune", epsilon=0.5,
                                  measure_expansion=False),
        ),
        trials=2,
        seed=5,
        metrics=("surviving_fraction",),
    )
    forced = run_sweep(sweep, Session(batch=True))
    scalar = run_sweep(sweep, Session(batch=False))
    assert forced.fingerprint() == scalar.fingerprint()


def test_run_sweep_batches_singletons_only_when_forced():
    """auto leaves 1-trial points scalar; batch=True batches them too —
    and neither choice is observable in the results."""
    sweep = SweepSpec(
        base=_spec(seed=None).with_seed(None),
        axes=(Axis("fault.params.p", (0.1, 0.6)),),
        trials=1,
        seed=3,
        metrics=("gamma",),
    )
    results = {
        mode: run_sweep(sweep, Session(batch=mode)).fingerprint()
        for mode in (True, False, "auto")
    }
    assert len(set(results.values())) == 1
