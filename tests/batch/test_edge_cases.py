"""Degenerate-input contracts of the batched kernels and metrics.

These behaviours were *defined* (rather than left to raise) when the
differential harness first exercised them: T = 0 trial matrices, n = 0
graphs, fully-dead mask rows, all-faulty percolation trials, and BFS rows
with no sources.  Every case documents the chosen semantics with an
assertion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.metrics import batched_gamma, batched_set_expansion
from repro.batch.rounds import cascade_rounds, run_rounds
from repro.errors import InvalidParameterError, SolverError
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    batched_bfs_distances,
    batched_boundary_masks,
    batched_boundary_sizes,
    batched_component_stats,
    batched_connected_components,
    batched_largest_component_fraction,
    largest_component_fraction,
)
from repro.percolation.bonds import bond_percolation
from repro.percolation.sites import site_percolation


@pytest.fixture()
def square():
    return Graph.from_edges(4, np.array([(0, 1), (1, 2), (2, 3), (3, 0)]))


# --------------------------------------------------------------------- #
# T = 0: no trials
# --------------------------------------------------------------------- #


def test_zero_trials_yield_empty_results(square):
    empty = np.zeros((0, 4), dtype=bool)
    labels = batched_connected_components(square, empty)
    assert labels.shape == (0, 4)
    n_components, largest = batched_component_stats(labels)
    assert n_components.shape == largest.shape == (0,)
    assert batched_largest_component_fraction(square, empty).shape == (0,)
    assert batched_bfs_distances(square, empty).shape == (0, 4)
    assert batched_boundary_sizes(square, empty).shape == (0,)
    assert batched_set_expansion(square, empty).shape == (0,)


# --------------------------------------------------------------------- #
# n = 0: the empty graph
# --------------------------------------------------------------------- #


def test_empty_graph_is_defined_everywhere():
    g = Graph.empty(0)
    masks = np.zeros((3, 0), dtype=bool)
    labels = batched_connected_components(g, masks)
    assert labels.shape == (3, 0)
    n_components, largest = batched_component_stats(labels)
    assert n_components.tolist() == largest.tolist() == [0, 0, 0]
    assert batched_largest_component_fraction(g, masks).tolist() == [0.0] * 3
    assert batched_bfs_distances(g, masks).shape == (3, 0)
    # the scalar γ shares the 0.0-for-empty convention
    assert largest_component_fraction(g) == 0.0
    # percolation on the empty graph: all-zero samples, both strategies
    for batch in (True, False):
        assert site_percolation(g, 0.5, n_trials=3, seed=1, batch=batch
                                ).samples.tolist() == [0.0] * 3
        assert bond_percolation(g, 0.5, n_trials=3, seed=1, batch=batch
                                ).samples.tolist() == [0.0] * 3


# --------------------------------------------------------------------- #
# fully-dead rows: every node faulty in one trial
# --------------------------------------------------------------------- #


def test_fully_dead_rows_report_zero_components(square):
    alive = np.array([[True] * 4, [False] * 4, [True, False, True, False]])
    labels = batched_connected_components(square, alive)
    assert (labels[1] == -1).all()
    n_components, largest = batched_component_stats(labels)
    assert n_components.tolist() == [1, 0, 2]
    assert largest.tolist() == [4, 0, 1]
    gamma = batched_largest_component_fraction(square, alive)
    assert gamma.tolist() == [1.0, 0.0, 0.25]


def test_all_faulty_percolation_trial_is_zero(square):
    # q = 0 kills every node in every trial — γ must be 0.0, not an error
    for batch in (True, False):
        result = site_percolation(square, 0.0, n_trials=4, seed=2, batch=batch)
        assert result.samples.tolist() == [0.0] * 4
        # bond q = 0 keeps all nodes but no edges: γ = 1/n exactly
        result = bond_percolation(square, 0.0, n_trials=4, seed=2, batch=batch)
        assert result.samples.tolist() == [0.25] * 4


def test_isolated_survivors_give_one_over_n(square):
    alive = np.array([[True, False, False, False]])
    assert batched_largest_component_fraction(square, alive).tolist() == [0.25]


# --------------------------------------------------------------------- #
# BFS rows without sources; dead sources
# --------------------------------------------------------------------- #


def test_bfs_row_without_sources_stays_unreached(square):
    sources = np.array([[True, False, False, False], [False] * 4])
    dist = batched_bfs_distances(square, sources)
    assert dist[0].tolist() == [0, 1, 2, 1]
    assert (dist[1] == -1).all()


def test_bfs_dead_sources_do_not_seed(square):
    sources = np.array([[True, False, True, False]])
    alive = np.array([[False, True, True, True]])
    dist = batched_bfs_distances(square, sources, alive)
    # node 0 is dead: not a seed, not reachable; 2 seeds the rest
    assert dist[0].tolist() == [-1, 1, 0, 1]


# --------------------------------------------------------------------- #
# metrics: undefined ratios come back nan, never raise
# --------------------------------------------------------------------- #


def test_set_expansion_degenerate_rows_are_nan(square):
    masks = np.array([
        [False] * 4,                  # empty set
        [True] * 4,                   # the whole node set
        [True, False, False, False],  # a proper set
    ])
    node = batched_set_expansion(square, masks, mode="node")
    assert np.isnan(node[0]) and node[2] == 2.0
    edge = batched_set_expansion(square, masks, mode="edge")
    assert np.isnan(edge[0]) and np.isnan(edge[1]) and edge[2] == 2.0


def test_gamma_composes_node_and_edge_masks(square):
    alive = np.ones((1, 4), dtype=bool)
    edge_alive = np.zeros((1, square.m), dtype=bool)
    assert batched_gamma(square, alive, edge_alive=edge_alive).tolist() == [0.25]


# --------------------------------------------------------------------- #
# sequential-round kernels: degenerate trials and convergence caps
# --------------------------------------------------------------------- #


def test_cascade_rounds_zero_trials(square):
    final, rounds = cascade_rounds(square, np.zeros((0, 4), dtype=bool), 0.0)
    assert final.shape == (0, 4) and rounds.shape == (0,)


def test_cascade_rounds_empty_graph():
    g = Graph.empty(0)
    final, rounds = cascade_rounds(g, np.zeros((3, 0), dtype=bool), 0.5)
    assert final.shape == (3, 0)
    assert rounds.tolist() == [0, 0, 0]


def test_cascade_rounds_all_dead_row_is_stable(square):
    # a fully-failed seed row has nobody left to recruit: 0 rounds
    seeds = np.array([[True] * 4, [True, False, False, False]])
    final, rounds = cascade_rounds(square, seeds, 0.0)
    assert final[0].all() and rounds[0] == 0
    assert final[1].all() and rounds[1] > 0  # alpha=0 cascades fully


def test_cascade_rounds_huge_margin_stops_at_seeds(square):
    # capacity far above any reachable load: the cascade is the seed set
    seeds = np.array([[True, False, False, False]])
    final, rounds = cascade_rounds(square, seeds, 100.0)
    assert np.array_equal(final, seeds)
    assert rounds.tolist() == [0]


def test_cascade_rounds_pins_round_count():
    # path 0-1-2 at alpha=0: the failure front advances one hop per
    # round — node 1 falls in round 1, node 2 in round 2, and the load
    # node 2 accumulated is lost (no survivors to give to)
    path = Graph.from_edges(3, np.array([(0, 1), (1, 2)]))
    seeds = np.array([[True, False, False]])
    final, rounds = cascade_rounds(path, seeds, 0.0)
    assert final.tolist() == [[True, True, True]]
    assert rounds.tolist() == [2]


def test_run_rounds_no_op_step_is_zero_rounds(square):
    masks = np.array([[True, False, True, False]])
    final, rounds = run_rounds(masks, lambda m: m.copy())
    assert np.array_equal(final, masks)
    assert rounds.tolist() == [0]


def test_run_rounds_raises_past_max_rounds(square):
    masks = np.array([[True, False, True, False]])
    with pytest.raises(SolverError):
        run_rounds(masks, np.logical_not, max_rounds=10)


def test_cascade_rounds_rejects_non_boolean_masks(square):
    # NaN/negative entries arrive as a float dtype and must be rejected
    # loudly, never silently truthified — same contract as the
    # single-shot kernels below
    bad = np.array([[np.nan, -1.0, 0.0, 1.0]])
    with pytest.raises(InvalidParameterError, match="boolean"):
        cascade_rounds(square, bad, 0.5)
    with pytest.raises(InvalidParameterError):
        cascade_rounds(square, np.zeros((2, 3), dtype=bool), 0.5)  # bad shape
    with pytest.raises(InvalidParameterError):
        cascade_rounds(square, np.zeros((2, 4), dtype=bool), -0.1)  # bad alpha
    with pytest.raises(InvalidParameterError):
        cascade_rounds(square, np.zeros((2, 4), dtype=bool), np.nan)


# --------------------------------------------------------------------- #
# input validation stays loud for real mistakes
# --------------------------------------------------------------------- #


def test_batched_kernels_reject_nan_float_masks(square):
    """The single-shot kernels share the reject-non-bool contract."""
    bad = np.array([[np.nan, -1.0, 0.0, 1.0]])
    with pytest.raises(InvalidParameterError):
        batched_connected_components(square, bad)
    with pytest.raises(InvalidParameterError):
        batched_bfs_distances(square, bad)
    with pytest.raises(InvalidParameterError):
        batched_set_expansion(square, bad)


def test_shape_and_dtype_mistakes_raise(square):
    with pytest.raises(InvalidParameterError):
        batched_connected_components(square, np.zeros((2, 3), dtype=bool))
    with pytest.raises(InvalidParameterError):
        batched_connected_components(square, np.zeros((2, 4), dtype=np.int64))
    with pytest.raises(InvalidParameterError):
        batched_connected_components(square)  # neither mask given
    with pytest.raises(InvalidParameterError):
        batched_connected_components(
            square, np.ones((2, 4), dtype=bool),
            edge_alive=np.ones((3, square.m), dtype=bool),  # trial mismatch
        )
    with pytest.raises(InvalidParameterError):
        batched_boundary_masks(
            square, np.ones((2, 4), dtype=bool), np.ones((1, 4), dtype=bool)
        )
