"""Backend equivalence: every backend must produce bit-identical labels.

The backend shim (:mod:`repro.backend`) exists to swap *implementations*
of the batched component kernel, never *semantics*: the canonical-label
contract (alive node → smallest alive reachable node id, dead → −1) is
implementation-independent, so numpy's Shiloach–Vishkin loop and numba's
per-trial flood fill must agree bit for bit on every input.  These tests
assert that with hypothesis-generated cases, plus the selection/fallback
behaviour (`auto`, env var, missing numba, unknown names).

The numba-vs-numpy comparisons skip when numba is not importable — the
CI backend matrix leg installs it; the base image does not — but the
fallback tests run everywhere (they are *about* numba's absence).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from property.strategies import graphs  # tests/property/strategies.py

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.backend import (
    available_backends,
    default_backend_name,
    resolve_backend,
)
from repro.backend import numba_backend, numpy_backend
from repro.errors import SpecError
from repro.graphs.traversal import batched_connected_components

pytestmark = pytest.mark.differential

HAS_NUMBA = numba_backend.available()
needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")


# --------------------------------------------------------------------- #
# selection / fallback
# --------------------------------------------------------------------- #


def test_numpy_backend_always_available():
    assert "numpy" in available_backends()
    assert resolve_backend("numpy").name == "numpy"


def test_auto_prefers_numba_when_available(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    expected = "numba" if HAS_NUMBA else "numpy"
    assert default_backend_name() == "auto"
    assert resolve_backend("auto").name == expected
    assert resolve_backend(None).name == expected
    assert set(available_backends()) <= {"numpy", "numba"}


def test_unknown_backend_rejected():
    with pytest.raises(SpecError):
        resolve_backend("tensorflow")


def test_backend_instance_passes_through():
    be = numpy_backend.BACKEND
    assert resolve_backend(be) is be


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend(None).name == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(SpecError):
        resolve_backend(None)


@pytest.mark.skipif(HAS_NUMBA, reason="exercises the numba-absent fallback")
def test_missing_numba_falls_back_with_warning():
    with pytest.warns(RuntimeWarning, match="numba"):
        assert resolve_backend("numba").name == "numpy"


@pytest.mark.skipif(HAS_NUMBA, reason="exercises the numba-absent fallback")
def test_session_numba_request_falls_back_cleanly():
    """Session(backend="numba") without numba must still compute."""
    with pytest.warns(RuntimeWarning):
        sess = Session(backend="numba")
    spec = ScenarioSpec(
        graph=GraphSpec("cycle_graph", {"n": 12}),
        fault=FaultSpec("random_node", {"p": 0.3}),
        analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
        seed=3,
    )
    result = sess.run(spec)
    baseline = Session(backend="numpy").run(spec)

    def payload(r):  # timings are wall-clock, everything else is content
        return {k: v for k, v in r.to_dict().items() if k != "timings"}

    assert payload(result) == payload(baseline)


# --------------------------------------------------------------------- #
# bit-identical labels across backends
# --------------------------------------------------------------------- #


@needs_numba
@given(
    g=graphs(min_nodes=2, max_nodes=14, max_extra_edges=20),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_node_masks(g, p, seed, trials):
    rng = np.random.default_rng(seed)
    alive = rng.random((trials, g.n)) >= p
    a = batched_connected_components(g, alive, backend="numpy")
    b = batched_connected_components(g, alive, backend="numba")
    assert a.dtype == b.dtype == np.int64
    assert np.array_equal(a, b)


@needs_numba
@given(
    g=graphs(min_nodes=2, max_nodes=14, max_extra_edges=20),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_edge_masks(g, p, seed, trials):
    rng = np.random.default_rng(seed)
    alive = rng.random((trials, g.n)) >= p / 2
    edge_alive = rng.random((trials, g.m)) >= p
    a = batched_connected_components(
        g, alive, edge_alive=edge_alive, backend="numpy"
    )
    b = batched_connected_components(
        g, alive, edge_alive=edge_alive, backend="numba"
    )
    assert np.array_equal(a, b)


@needs_numba
def test_session_results_identical_across_backends(tmp_path):
    """Whole-pipeline differential: same spec, both backends, same record."""
    base = ScenarioSpec(
        graph=GraphSpec("mesh", {"sides": [6, 6]}),
        fault=FaultSpec("random_node", {"p": 0.25}),
        analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
    )
    specs = [base.with_seed(s) for s in range(6)]
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no fallback warning expected here
        a = Session(backend="numpy").run_trials_batched(specs)
        b = Session(backend="numba").run_trials_batched(specs)

    def payload(r):  # timings are wall-clock, everything else is content
        return {k: v for k, v in r.to_dict().items() if k != "timings"}

    assert [payload(r) for r in a] == [payload(r) for r in b]
