"""Cross-grid-point batching must be invisible in the results.

``run_points`` stacks several grid points' trials into one mask tensor;
the component kernel is row-independent, so every record must be
bit-identical to the per-point ``run_trials`` path — same aggregates,
same samples, same sweep fingerprints.  These tests pin that at every
layer the stacking touches: the engine, ``Session.run_points_batched``,
``execute_units``'s stacking dispatch, the threshold probe ladder, and
the scheduler's ``merge_points`` job merging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SweepSpec, run_sweep
from repro.batch import engine as batch_engine
from repro.errors import SpecError
from repro.graphs.generators import mesh
from repro.percolation.threshold import estimate_critical_probability

pytestmark = pytest.mark.differential

MEASURE_ONLY = AnalysisSpec(mode="node", pruner=None, measure_expansion=False)
TORUS = GraphSpec("torus", {"sides": 6, "d": 2})


def _point(p, n_trials, seed0=0):
    """One grid point: homogeneous specs differing only in seed."""
    return [
        ScenarioSpec(
            graph=TORUS,
            fault=FaultSpec("random_node", {"p": p}),
            analysis=MEASURE_ONLY,
            seed=seed0 + t,
        )
        for t in range(n_trials)
    ]


def _payload(r):
    return {k: v for k, v in r.to_dict().items() if k != "timings"}


# --------------------------------------------------------------------- #
# stack_key
# --------------------------------------------------------------------- #


def test_stack_key_groups_by_graph_and_analysis():
    a = _point(0.1, 1)[0]
    b = _point(0.4, 1, seed0=9)[0]  # different fault params, same key
    assert batch_engine.stack_key(a) == batch_engine.stack_key(b)
    other_graph = ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.1}),
        analysis=MEASURE_ONLY,
    )
    assert batch_engine.stack_key(a) != batch_engine.stack_key(other_graph)


def test_stack_key_none_for_unbatchable():
    pruned = ScenarioSpec(
        graph=TORUS, analysis=AnalysisSpec(mode="node", pruner="prune")
    )
    assert batch_engine.stack_key(pruned) is None


# --------------------------------------------------------------------- #
# run_points == per-point run_trials, bit for bit
# --------------------------------------------------------------------- #


def test_run_points_matches_per_point_run_trials():
    groups = [_point(0.1, 4), _point(0.3, 3, seed0=50), _point(0.5, 5, seed0=90)]
    stacked = batch_engine.run_points(groups)
    assert [len(rs) for rs in stacked] == [4, 3, 5]
    for group, stacked_group in zip(groups, stacked):
        solo = batch_engine.run_trials(group)
        assert [_payload(r) for r in stacked_group] == [_payload(r) for r in solo]


def test_run_points_rejects_mixed_stack_keys():
    other = [
        ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 8, "d": 2}),
            fault=FaultSpec("random_node", {"p": 0.2}),
            analysis=MEASURE_ONLY,
            seed=1,
        )
    ]
    with pytest.raises(SpecError):
        batch_engine.run_points([_point(0.2, 2), other])


def test_session_run_points_batched_matches_and_caches(tmp_path):
    groups = [_point(0.2, 3), _point(0.4, 3, seed0=30)]
    cold = Session(store=str(tmp_path / "a"))
    out = cold.run_points_batched(groups)
    per_point = Session()
    expected = [per_point.run_trials_batched(g) for g in groups]
    assert [[_payload(r) for r in rs] for rs in out] == [
        [_payload(r) for r in rs] for rs in expected
    ]
    # warm rerun serves every trial from the store
    warm = Session(store=str(tmp_path / "a"))
    again = warm.run_points_batched(groups)
    assert warm.hits == 6 and warm.misses == 0
    assert [[_payload(r) for r in rs] for rs in again] == [
        [_payload(r) for r in rs] for rs in out
    ]


# --------------------------------------------------------------------- #
# sweep-level stacking (execute_units) keeps fingerprints
# --------------------------------------------------------------------- #


def _sweep_spec(trials=4):
    return SweepSpec(
        base=ScenarioSpec(
            graph=TORUS,
            fault=FaultSpec("random_node", {"p": 0.1}),
            analysis=MEASURE_ONLY,
        ),
        axes=[Axis("fault.params.p", [0.1, 0.25, 0.4, 0.55])],
        trials=trials,
        seed=13,
    )


def test_sweep_fingerprint_identical_across_batch_modes():
    spec = _sweep_spec()
    stacked = run_sweep(spec, Session(batch=True))
    auto = run_sweep(spec, Session(batch="auto"))
    scalar = run_sweep(spec, Session(batch=False))
    assert stacked.fingerprint() == scalar.fingerprint()
    assert auto.fingerprint() == scalar.fingerprint()


def test_sweep_fingerprint_identical_across_backends():
    spec = _sweep_spec(trials=3)
    a = run_sweep(spec, Session(backend="numpy"))
    b = run_sweep(spec, Session(backend="auto"))
    assert a.fingerprint() == b.fingerprint()


# --------------------------------------------------------------------- #
# threshold probe ladder
# --------------------------------------------------------------------- #


def test_ladder_one_matches_legacy_bisection():
    g = mesh([12, 12])
    legacy = estimate_critical_probability(
        g, mode="site", n_trials=6, tol=0.05, seed=3, batch=False
    )
    default = estimate_critical_probability(
        g, mode="site", n_trials=6, tol=0.05, seed=3, batch=True, ladder=1
    )
    assert (default.lo, default.hi, default.n_probes) == (
        legacy.lo, legacy.hi, legacy.n_probes,
    )


@pytest.mark.parametrize("mode", ["site", "bond"])
@pytest.mark.parametrize("ladder", [2, 4, 7])
def test_ladder_brackets_are_valid_and_deterministic(mode, ladder):
    g = mesh([10, 10])
    est = estimate_critical_probability(
        g, mode=mode, n_trials=6, tol=0.03, seed=17, ladder=ladder
    )
    assert 0.0 <= est.lo < est.hi <= 1.0
    assert est.width <= 0.03 or est.n_probes >= 30
    again = estimate_critical_probability(
        g, mode=mode, n_trials=6, tol=0.03, seed=17, ladder=ladder
    )
    assert (again.lo, again.hi, again.n_probes) == (est.lo, est.hi, est.n_probes)


def test_ladder_agrees_with_bisection_within_resolution():
    g = mesh([14, 14])
    a = estimate_critical_probability(g, n_trials=12, tol=0.02, seed=5)
    b = estimate_critical_probability(g, n_trials=12, tol=0.02, seed=5, ladder=6)
    # independent Monte-Carlo schedules: brackets must land near each other
    assert abs(a.midpoint - b.midpoint) <= 3 * (a.width + b.width)


# --------------------------------------------------------------------- #
# scheduler point merging
# --------------------------------------------------------------------- #


def test_scheduler_merge_points_keeps_fingerprint(tmp_path):
    from repro.service.scheduler import Scheduler
    from repro.api.sweeps import execute_units

    spec = _sweep_spec(trials=3)
    baseline = run_sweep(spec, Session()).fingerprint()

    def drive(merge):
        sched = Scheduler(merge_points=merge, job_chunk=None)
        entry, _ = sched.submit(spec)
        session = Session()
        merged_jobs = 0
        while entry.state == "running":
            popped = sched.next_job()
            assert popped is not None, "running sweep with no queued jobs"
            job, sweep_dict = popped
            merged_jobs += len(job.segments) > 1
            payload = {k: v for k, v in sweep_dict.items() if k != "__hash__"}
            sweep = SweepSpec.from_dict(payload)
            points = sweep.points()
            units = [
                (p, t)
                for p, s, n in job.segments
                for t in range(s, s + n)
            ]
            specs = [sweep.trial_spec(points[p], t) for p, t in units]
            sched.job_done(job.key, execute_units(session, units, specs, "auto"))
        assert entry.state == "done"
        return entry.fingerprint, merged_jobs

    merged_fp, merged_count = drive(merge=True)
    solo_fp, solo_count = drive(merge=False)
    assert merged_fp == solo_fp == baseline
    assert merged_count > 0  # merging actually produced multi-segment jobs
    assert solo_count == 0


def test_scheduler_merge_respects_job_chunk():
    from repro.service.scheduler import Scheduler

    spec = _sweep_spec(trials=4)
    sched = Scheduler(merge_points=True, job_chunk=5)
    entry, _ = sched.submit(spec)
    seen = 0
    while True:
        popped = sched.next_job()
        if popped is None:
            break
        job, _ = popped
        assert job.n_trials <= 5
        seen += 1
    assert seen >= 2
