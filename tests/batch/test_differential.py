"""Differential-testing harness: batched and scalar execution must agree.

The batched engine's contract is *bit-identical substitutability* — not
"statistically the same", identical.  Rather than assuming it, these tests
generate random (graph, fault rate, seed) cases with hypothesis (reusing
the shared strategies in ``tests/property/strategies.py``) and assert
equality at every observable layer:

* kernel layer — mask-parallel components/BFS vs per-trial scalar
  traversal of the induced subgraph;
* engine layer — :func:`repro.batch.engine.run_trials` vs
  :func:`repro.api.engine.run` per-trial :class:`RunResult` records and
  fingerprints;
* store layer — the ``results.jsonl`` entries a batched sweep persists vs
  a scalar sweep's, and warm resume across strategies;
* percolation layer — ``site_percolation``/``bond_percolation`` samples.

Each hypothesis test runs 100 generated examples by default, so the suite
covers well over the acceptance criterion's 100 (graph, p, seed) cases on
every run.  The whole module is the ``differential`` tier (see
``pyproject.toml`` markers) and runs on every PR in CI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from property.strategies import graphs  # tests/property/strategies.py

from repro.api import engine as scalar_engine
from repro.api.session import Session
from repro.api.store import ResultStore
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SweepSpec, run_sweep
from repro.batch import engine as batch_engine
from repro.graphs.traversal import (
    batched_bfs_distances,
    batched_component_stats,
    batched_connected_components,
    bfs_distances,
    component_summary,
    connected_components,
)
from repro.percolation.bonds import bond_percolation
from repro.percolation.sites import site_percolation

pytestmark = pytest.mark.differential

MEASURE_ONLY = AnalysisSpec(mode="node", pruner=None, measure_expansion=False)


# --------------------------------------------------------------------- #
# kernel layer
# --------------------------------------------------------------------- #


@given(
    g=graphs(min_nodes=2, max_nodes=12),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 6),
)
@settings(max_examples=100, deadline=None)
def test_batched_components_match_scalar_subgraph(g, p, seed, trials):
    """Masked components == components of the induced survivor subgraph."""
    rng = np.random.default_rng(seed)
    alive = rng.random((trials, g.n)) < p
    labels = batched_connected_components(g, alive)
    n_components, largest = batched_component_stats(labels)
    for t in range(trials):
        survivors = np.flatnonzero(alive[t])
        summary = component_summary(g.subgraph(survivors))
        assert n_components[t] == summary.n_components
        assert largest[t] == summary.largest_size
        # canonical labels: every alive node carries the smallest alive id
        # of its component — compare the partitions exactly
        expected = np.full(g.n, -1, dtype=np.int64)
        if survivors.size:
            sub_labels = connected_components(g.subgraph(survivors))
            for lab in np.unique(sub_labels):
                members = survivors[sub_labels == lab]
                expected[members] = members.min()
        assert np.array_equal(labels[t], expected)


@given(
    g=graphs(min_nodes=2, max_nodes=12),
    seed=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 4),
)
@settings(max_examples=100, deadline=None)
def test_batched_bfs_matches_scalar(g, seed, trials):
    rng = np.random.default_rng(seed)
    sources = rng.random((trials, g.n)) < 0.3
    dist = batched_bfs_distances(g, sources)
    for t in range(trials):
        seeds = np.flatnonzero(sources[t])
        if seeds.size == 0:
            assert (dist[t] == -1).all()
        else:
            assert np.array_equal(dist[t], bfs_distances(g, seeds))


# --------------------------------------------------------------------- #
# engine layer
# --------------------------------------------------------------------- #


@given(
    n=st.integers(4, 24),
    extra=st.integers(0, 30),
    gseed=st.integers(0, 2**20),
    p=st.floats(0.0, 1.0),
    seed0=st.integers(0, 2**31 - 1),
    trials=st.integers(1, 5),
)
@settings(max_examples=100, deadline=None)
def test_run_trials_matches_scalar_engine(n, extra, gseed, p, seed0, trials):
    """Per-trial RunResults — records, fingerprints, store keys — agree."""
    m = min(n - 1 + extra, n * (n - 1) // 2)
    gspec = GraphSpec("gnm_random", {"n": n, "m": m, "seed": gseed})
    specs = [
        ScenarioSpec(
            graph=gspec,
            fault=FaultSpec("random_node", {"p": p}),
            analysis=MEASURE_ONLY,
            seed=seed0 + t,
            label=f"diff:{t}",
        )
        for t in range(trials)
    ]
    batched = batch_engine.run_trials(specs)
    scalar = [scalar_engine.run(spec) for spec in specs]
    for b, s in zip(batched, scalar):
        assert b == s  # dataclass equality (timings excluded by design)
        assert b.fingerprint() == s.fingerprint()
        assert b.to_dict()["surviving_nodes"] == s.to_dict()["surviving_nodes"]


@given(
    gseed=st.integers(0, 2**20),
    seed0=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_run_trials_faultless_matches_scalar(gseed, seed0):
    gspec = GraphSpec("gnm_random", {"n": 12, "m": 18, "seed": gseed})
    specs = [
        ScenarioSpec(graph=gspec, analysis=MEASURE_ONLY, seed=seed0 + t)
        for t in range(3)
    ]
    batched = batch_engine.run_trials(specs)
    scalar = [scalar_engine.run(spec) for spec in specs]
    assert batched == scalar


# --------------------------------------------------------------------- #
# store layer
# --------------------------------------------------------------------- #


def _sweep(trials=5):
    return SweepSpec(
        base=ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 6, "d": 2}),
            fault=FaultSpec("random_node", {"p": 0.1}),
            analysis=MEASURE_ONLY,
        ),
        axes=(Axis("fault.params.p", (0.1, 0.45, 0.8)),),
        trials=trials,
        seed=99,
        metrics=("gamma",),
        label="diff-store",
    )


def _store_entries(path):
    """Live result records keyed by spec hash, timings dropped (wall-clock
    is the one field outside the equivalence contract)."""
    entries = {}
    for key, record in ResultStore(path).engine.iter_live("results"):
        record["result"].pop("timings")
        entries[key] = record
    return entries


def test_store_entries_identical_across_strategies(tmp_path):
    sweep = _sweep()
    scalar_session = Session(store=tmp_path / "scalar", batch=False)
    batched_session = Session(store=tmp_path / "batched", batch=True)
    scalar_result = run_sweep(sweep, scalar_session)
    batched_result = run_sweep(sweep, batched_session)
    assert scalar_result.fingerprint() == batched_result.fingerprint()
    scalar_entries = _store_entries(tmp_path / "scalar")
    batched_entries = _store_entries(tmp_path / "batched")
    assert scalar_entries == batched_entries
    assert scalar_session.misses == batched_session.misses == 15


def test_warm_resume_across_strategies(tmp_path):
    """A store written by one strategy fully warms the other."""
    sweep = _sweep()
    cold = Session(store=tmp_path / "store", batch=False)
    cold_result = run_sweep(sweep, cold)
    warm = Session(store=tmp_path / "store", batch=True)
    warm_result = run_sweep(sweep, warm)
    assert (warm.hits, warm.misses) == (15, 0)
    assert warm_result.fingerprint() == cold_result.fingerprint()


def test_partial_resume_mixes_strategies(tmp_path):
    """Half-filled scalar store + batched completion == scalar fingerprint."""
    sweep = _sweep()
    full = run_sweep(_sweep(), Session(batch=False))
    # persist only the first 2 trials of each point
    seeding = Session(store=tmp_path / "store", batch=False)
    for point in sweep.points():
        for t in range(2):
            seeding.run(sweep.trial_spec(point, t))
    resumed = Session(store=tmp_path / "store", batch=True)
    result = run_sweep(sweep, resumed)
    assert resumed.hits == 6 and resumed.misses == 9
    assert result.fingerprint() == full.fingerprint()


# --------------------------------------------------------------------- #
# percolation layer
# --------------------------------------------------------------------- #


@given(
    g=graphs(min_nodes=2, max_nodes=14),
    q=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_site_percolation_samples_identical(g, q, seed):
    batched = site_percolation(g, q, n_trials=5, seed=seed, batch=True)
    scalar = site_percolation(g, q, n_trials=5, seed=seed, batch=False)
    assert np.array_equal(batched.samples, scalar.samples)
    assert batched.gamma_mean == scalar.gamma_mean
    assert batched.gamma_std == scalar.gamma_std


@given(
    g=graphs(min_nodes=2, max_nodes=14),
    q=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_bond_percolation_samples_identical(g, q, seed):
    batched = bond_percolation(g, q, n_trials=5, seed=seed, batch=True)
    scalar = bond_percolation(g, q, n_trials=5, seed=seed, batch=False)
    assert np.array_equal(batched.samples, scalar.samples)
    assert batched.gamma_mean == scalar.gamma_mean
    assert batched.gamma_std == scalar.gamma_std
