"""Shared fixtures for the test-suite.

Fixtures provide small deterministic graphs used across many modules; tests
needing randomness take explicit integer seeds so failures replay exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    expander,
    hypercube,
    mesh,
    path_graph,
    torus,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_mesh():
    """4x4 mesh: 16 nodes, degree 2-4, the workhorse small planar graph."""
    return mesh([4, 4])


@pytest.fixture
def small_torus():
    """8x8 torus: 4-regular, vertex-transitive."""
    return torus(8, 2)


@pytest.fixture
def small_cycle():
    return cycle_graph(10)


@pytest.fixture
def small_path():
    return path_graph(8)


@pytest.fixture
def small_complete():
    return complete_graph(8)


@pytest.fixture
def small_hypercube():
    return hypercube(4)


@pytest.fixture
def small_expander():
    return expander(32, 4, seed=7)
