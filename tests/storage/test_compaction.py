"""Compaction through the ResultStore facade and the ``cache`` CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.engine import run
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.store import ResultStore


def torus_spec(seed=3, p=0.1):
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": p}),
        analysis=AnalysisSpec(),
        seed=seed,
    )


class TestFacadeCompaction:
    def test_compact_preserves_fingerprints_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        results = [run(torus_spec(seed=s)) for s in range(4)]
        for r in results:
            store.put_result(r)
            store.put_result(r)  # garbage: one superseded line each
        raw_before = {
            key: raw for key, raw in store.engine.iter_raw("results")
        }
        counts = store.compact(force=True)
        assert counts["superseded"] == 4
        raw_after = {
            key: raw for key, raw in store.engine.iter_raw("results")
        }
        assert raw_after == raw_before  # identical bytes, new segments
        for r in results:
            assert store.get_result(r.spec).fingerprint() == r.fingerprint()

    def test_compact_verifies_and_drops_tampered_records(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        result = run(torus_spec())
        store.put_result(result)
        seg, entry = store.engine.locate("results", result.spec.hash())
        record = json.loads(seg.read_text())
        record["result"]["n_surviving"] = 1
        seg.write_text(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        (seg.parent / "index.log").unlink()
        reopened = ResultStore(tmp_path / "s")
        counts = reopened.compact(force=True)
        assert counts["corrupt"] == 1
        assert len(reopened) == 0

    def test_min_garbage_threshold_respected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result(run(torus_spec()))
        store.compact(min_garbage=0.5)  # clean store: nothing to do
        assert store.counters.get("compactions") == 0
        store.put_result(run(torus_spec()))  # now 50% garbage in one shard
        store.compact(min_garbage=0.5)
        assert store.counters.get("compactions") == 1


class TestCacheCompactCLI:
    def _cli(self, *argv, cwd):
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    def test_cache_compact_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        result = run(torus_spec())
        store.put_result(result)
        store.put_result(result)
        proc = self._cli(
            "cache", "compact", "--store", "s", "--force", cwd=tmp_path
        )
        assert proc.returncode == 0, proc.stderr
        assert "dropped 1 superseded" in proc.stdout
        proc = self._cli("cache", "stats", "--store", "s", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "garbage_ratio  0.0" in proc.stdout
        assert "results/shard-" in proc.stdout  # per-shard detail rows
        assert ResultStore(tmp_path / "s").get_result(torus_spec()) == result

    def test_cache_compact_max_age_evicts(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result(run(torus_spec()))
        proc = self._cli(
            "cache",
            "compact",
            "--store",
            "s",
            "--max-age-days",
            "-1",
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "1 evicted" in proc.stdout
        assert len(ResultStore(tmp_path / "s")) == 0
