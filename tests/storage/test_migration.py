"""Legacy-store migration: bit-identical contents, warm-vs-cold sweep
fingerprints, and the multi-process append race the shard locks exist for."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.engine import run, _baseline_task
from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.store import ResultStore, baseline_key
from repro.api.sweeps import Axis, SweepSpec, run_sweep
from repro.storage import StorageEngine


def torus_spec(seed=3, p=0.1):
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": p}),
        analysis=AnalysisSpec(),
        seed=seed,
    )


def build_legacy_store(path: Path, results, baselines=(), tables=()):
    """Write a PR6-format store: three root-level JSONL files."""
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "results.jsonl", "w") as fh:
        for r in results:
            record = {
                "key": r.spec.hash(),
                "seed": r.seed,
                "label": r.label,
                "fingerprint": r.fingerprint(),
                "result": r.to_dict(),
            }
            fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
    from repro.api.store import _baseline_key_str, _estimate_to_dict

    with open(path / "baselines.jsonl", "w") as fh:
        for key, estimate in baselines:
            record = {
                "key": _baseline_key_str(key),
                "estimate": _estimate_to_dict(estimate),
            }
            fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
    with open(path / "tables.jsonl", "w") as fh:
        for key, payload in tables:
            fh.write(
                json.dumps(
                    {"key": key, "payload": payload},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )


class TestMigration:
    def test_contents_identical_after_migration(self, tmp_path):
        specs = [torus_spec(seed=s) for s in range(6)]
        results = [run(s) for s in specs]
        estimate = _baseline_task(specs[0])
        build_legacy_store(
            tmp_path / "legacy",
            results,
            baselines=[(baseline_key(specs[0]), estimate)],
            tables=[("tbl", {"rows": [1, 2]})],
        )
        store = ResultStore(tmp_path / "legacy")
        assert store.counters.get("stores_migrated") == 1
        assert not (tmp_path / "legacy" / "results.jsonl").exists()
        assert len(store) == len(results)
        for spec, result in zip(specs, results):
            cached = store.get_result(spec)
            assert cached == result
            assert cached.fingerprint() == result.fingerprint()
        assert store.get_baseline(baseline_key(specs[0])).value == estimate.value
        assert store.get_table("tbl") == {"rows": [1, 2]}

    def test_migration_is_idempotent(self, tmp_path):
        results = [run(torus_spec(seed=s)) for s in range(3)]
        build_legacy_store(tmp_path / "legacy", results)
        ResultStore(tmp_path / "legacy")
        reopened = ResultStore(tmp_path / "legacy")
        assert reopened.counters.get("stores_migrated") == 0
        assert len(reopened) == 3

    def test_corrupt_legacy_lines_dropped_and_counted(self, tmp_path):
        results = [run(torus_spec(seed=s)) for s in range(2)]
        build_legacy_store(tmp_path / "legacy", results)
        with open(tmp_path / "legacy" / "results.jsonl", "a") as fh:
            fh.write("not json\n")
        store = ResultStore(tmp_path / "legacy")
        assert len(store) == 2
        assert store.corrupt_entries == 1

    def test_raw_bytes_survive_round_trip(self, tmp_path):
        """Migration and export move lines verbatim: legacy → sharded →
        legacy reproduces the original bytes (order aside)."""
        results = [run(torus_spec(seed=s)) for s in range(4)]
        build_legacy_store(tmp_path / "legacy", results)
        original = sorted(
            (tmp_path / "legacy" / "results.jsonl").read_bytes().splitlines()
        )
        store = ResultStore(tmp_path / "legacy")
        store.engine.export_legacy(tmp_path / "flat.jsonl")
        assert sorted((tmp_path / "flat.jsonl").read_bytes().splitlines()) == original


class TestSweepFingerprints:
    def _sweep(self):
        base = ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 8, "d": 2}),
            fault=FaultSpec("random_node", {"p": 0.1}),
            analysis=AnalysisSpec(),
        )
        return SweepSpec(
            base=base,
            axes=(Axis("fault.params.p", (0.1, 0.3, 0.5)),),
            trials=3,
            seed=17,
            metrics=("gamma",),
            label="migration-sweep",
        )

    def test_warm_sweep_on_migrated_store_fingerprints_identically(
        self, tmp_path
    ):
        sweep = self._sweep()
        cold_session = Session(store=tmp_path / "cold")
        cold = run_sweep(sweep, cold_session)
        # Flatten the sharded store back to the legacy layout, then migrate
        # it: the warm sweep must replay entirely from cache and fingerprint
        # identically to the cold run.
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        cold_store = ResultStore(tmp_path / "cold")
        for kind, name in (
            ("results", "results.jsonl"),
            ("baselines", "baselines.jsonl"),
            ("tables", "tables.jsonl"),
        ):
            cold_store.engine.export_legacy(legacy / name, kind)
        warm_session = Session(store=legacy)
        assert warm_session.store.counters.get("stores_migrated") == 1
        warm = run_sweep(sweep, warm_session)
        assert warm.fingerprint() == cold.fingerprint()
        assert warm_session.misses == 0  # nothing was recomputed


class TestConcurrentAppendRace:
    def test_four_process_append_race_across_shards(self, tmp_path):
        """Four processes hammer every results shard concurrently; the
        per-shard locks must keep every line complete and every index
        entry correct."""
        store_dir = tmp_path / "shared"
        StorageEngine(store_dir)  # create the layout
        code = (
            "import sys\n"
            "from repro.storage import StorageEngine\n"
            "engine = StorageEngine(sys.argv[1])\n"
            "who = sys.argv[2]\n"
            "pad = 'x' * 2048\n"
            "for i in range(50):\n"
            "    key = f'{who}:{i}'\n"
            "    engine.append('results', key,"
            " {'key': key, 'who': who, 'i': i, 'pad': pad})\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code, str(store_dir), f"w{k}"],
                env=env,
            )
            for k in range(4)
        ]
        for p in procs:
            assert p.wait(timeout=120) == 0
        engine = StorageEngine(store_dir)
        assert engine.count("results") == 4 * 50
        seen = 0
        for k in range(4):
            for i in range(50):
                record = engine.get_record("results", f"w{k}:{i}")
                assert record["i"] == i and record["who"] == f"w{k}"
                seen += 1
        assert seen == 200
        assert sum(
            s.corrupt_seen for s in engine.shards("results")
        ) == 0
        # The race exercised more than one shard lock.
        touched = [s for s in engine.shards("results") if len(s)]
        assert len(touched) > 1
