"""Engine-level behaviour: shard routing, policies, counters, layout."""

import json

import pytest

from repro.storage import StorageEngine
from repro.storage.engine import AUTO_COMPACT_MIN_LINES


@pytest.fixture
def engine(tmp_path):
    return StorageEngine(tmp_path / "store")


class TestRouting:
    def test_placement_is_stable(self, engine):
        for i in range(50):
            key = f"key-{i}"
            assert engine.shard_for("results", key) is engine.shard_for(
                "results", key
            )

    def test_keys_spread_across_shards(self, engine):
        hit = {
            id(engine.shard_for("results", f"key-{i}")) for i in range(200)
        }
        assert len(hit) == len(engine.shards("results"))

    def test_round_trip_all_kinds(self, engine):
        for kind in ("results", "baselines", "tables"):
            engine.append(kind, "k", {"key": "k", "kind": kind})
            assert engine.get_record(kind, "k") == {"key": "k", "kind": kind}
        assert engine.count("results") == 1

    def test_shard_counts_persisted(self, tmp_path):
        StorageEngine(tmp_path / "s", shards={"results": 3, "baselines": 2, "tables": 2})
        # Reopening with different defaults must respect the stored layout.
        reopened = StorageEngine(tmp_path / "s")
        assert len(reopened.shards("results")) == 3
        meta = json.loads((tmp_path / "s" / "engine.json").read_text())
        assert meta["shards"]["results"] == 3

    def test_contains_is_index_only(self, engine):
        engine.append("results", "k", {"key": "k"})
        reopened = StorageEngine(engine.path)
        assert reopened.contains("results", "k")
        assert not reopened.contains("results", "other")
        assert reopened.counters.get("records_decoded") == 0


class TestCounters:
    def test_index_hit_miss_decode(self, engine):
        engine.append("results", "k", {"key": "k"})
        assert engine.get_record("results", "nope") is None
        assert engine.counters.get("index_misses") == 1
        assert engine.get_record("results", "k") is not None
        assert engine.counters.get("index_hits") == 1
        assert engine.counters.get("records_decoded") == 1

    def test_append_counters(self, engine):
        engine.append("results", "k", {"key": "k"})
        engine.append("results", "k", {"key": "k", "v": 2})
        assert engine.counters.get("appends") == 2
        assert engine.counters.get("superseded") == 1


class TestEviction:
    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        engine = StorageEngine(tmp_path / "s", auto_compact=False)
        keys = [f"key-{i:03d}" for i in range(20)]
        for i, key in enumerate(keys):
            # Strictly increasing timestamps via the shard index is not
            # controllable from here (wall clock), so rely on append order
            # within a shard plus distinct-second coarseness being rare;
            # the size plan only needs *some* subset evicted to fit.
            engine.append("results", key, {"key": key, "pad": "x" * 100})
        live = sum(
            e.length
            for shard in engine.shards("results")
            for e in [shard.entry(k) for k in shard.keys()]
        )
        budget = live // 2
        engine.compact(max_bytes=budget)
        remaining = sum(
            e.length
            for shard in engine.shards("results")
            for e in [shard.entry(k) for k in shard.keys()]
        )
        assert remaining <= budget
        assert 0 < engine.count("results") < 20
        assert engine.counters.get("evictions") > 0

    def test_max_age_evicts_old_entries(self, tmp_path):
        engine = StorageEngine(tmp_path / "s", auto_compact=False)
        engine.append("results", "old", {"key": "old"})
        # Every entry is younger than an hour: nothing is dropped.
        engine.compact(max_age_s=3600)
        assert engine.count("results") == 1
        # Every entry is older than "0 seconds ago": all dropped.
        engine.compact(max_age_s=-1)
        assert engine.count("results") == 0


class TestAutoCompaction:
    def test_high_garbage_shard_compacts_on_append(self, tmp_path):
        engine = StorageEngine(tmp_path / "s")
        shard = engine.shard_for("results", "hot")
        # Rewrite the same key until the shard crosses both thresholds.
        for i in range(AUTO_COMPACT_MIN_LINES + 8):
            engine.append("results", "hot", {"key": "hot", "i": i})
        assert engine.counters.get("compactions") >= 1
        assert shard.superseded_current < AUTO_COMPACT_MIN_LINES
        assert engine.get_record("results", "hot")["i"] == AUTO_COMPACT_MIN_LINES + 7

    def test_disabled_auto_compaction_accumulates(self, tmp_path):
        engine = StorageEngine(tmp_path / "s", auto_compact=False)
        for i in range(AUTO_COMPACT_MIN_LINES + 8):
            engine.append("results", "hot", {"key": "hot", "i": i})
        assert engine.counters.get("compactions") == 0


class TestMinGarbageThreshold:
    def test_clean_shards_skipped(self, engine):
        for i in range(10):
            engine.append("results", f"k{i}", {"key": f"k{i}"})
        totals = engine.compact(min_garbage=0.3)
        assert engine.counters.get("compactions") == 0
        assert totals["kept"] == 0  # nothing rewritten

    def test_dirty_shard_compacted(self, engine):
        engine.append("results", "k", {"key": "k"})
        engine.append("results", "k", {"key": "k", "v": 2})
        engine.compact(min_garbage=0.3)
        assert engine.counters.get("compactions") == 1
        assert engine.garbage_ratio("results") == 0.0

    def test_cold_open_compact_sees_garbage(self, tmp_path):
        # The `cache compact` CLI opens the store and compacts immediately:
        # unloaded shards must report their real garbage ratio, not 0.0.
        warm = StorageEngine(tmp_path / "s", auto_compact=False)
        for i in range(10):
            warm.append("results", f"k{i}", {"key": f"k{i}"})
            warm.append("results", f"k{i}", {"key": f"k{i}", "v": 2})
        cold = StorageEngine(tmp_path / "s", auto_compact=False)
        totals = cold.compact(min_garbage=0.3)
        assert totals["kept"] == 10
        assert totals["superseded"] == 10
        assert cold.garbage_ratio("results") == 0.0
