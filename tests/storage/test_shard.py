"""Shard-level invariants: rotation, the sidecar index, crash recovery,
cross-process epoch invalidation."""

import json
import os

import pytest

from repro.storage.shard import EPOCH_FILE, INDEX_FILE, Shard


def line(key, value="v"):
    return (json.dumps({"key": key, "value": value}) + "\n").encode()


@pytest.fixture
def shard(tmp_path):
    return Shard(tmp_path / "shard")


class TestAppendAndGet:
    def test_round_trip(self, shard):
        shard.append("a", line("a"))
        assert shard.get("a") == line("a")
        assert shard.get("missing") is None
        assert len(shard) == 1

    def test_last_entry_wins(self, shard):
        shard.append("a", line("a", "old"))
        superseded = shard.append("a", line("a", "new"))
        assert superseded
        assert shard.get("a") == line("a", "new")
        assert len(shard) == 1
        assert shard.superseded_current == 1

    def test_append_many_batches(self, shard):
        flags = shard.append_many([("a", line("a")), ("b", line("b")), ("a", line("a", "2"))])
        assert flags == [False, False, True]
        assert shard.get("a") == line("a", "2")
        assert shard.get("b") == line("b")


class TestRotation:
    def test_segments_rotate_at_threshold(self, tmp_path):
        shard = Shard(tmp_path / "s", segment_bytes=200)
        for i in range(10):
            shard.append(f"k{i}", line(f"k{i}", "x" * 50))
        assert len(shard.segment_files()) > 1
        for i in range(10):
            assert shard.get(f"k{i}") == line(f"k{i}", "x" * 50)

    def test_segments_created_counts_files_once(self, tmp_path):
        shard = Shard(tmp_path / "s", segment_bytes=200)
        for i in range(10):
            shard.append(f"k{i}", line(f"k{i}", "x" * 50))
        assert shard.counters.get("segments_created") == len(
            shard.segment_files()
        )

    def test_segment_numbers_monotonic_across_compaction(self, tmp_path):
        shard = Shard(tmp_path / "s", segment_bytes=200)
        for i in range(10):
            shard.append(f"k{i}", line(f"k{i}", "x" * 50))
        before = {int(p.stem.split("-")[1]) for p in shard.segment_files()}
        shard.compact()
        after = {int(p.stem.split("-")[1]) for p in shard.segment_files()}
        assert min(after) > max(before)  # numbers are never reused


class TestIndexPersistence:
    def test_warm_open_reads_index_not_segments(self, tmp_path):
        shard = Shard(tmp_path / "s")
        for i in range(20):
            shard.append(f"k{i}", line(f"k{i}"))
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 20
        # Warm open discovered nothing by scanning: the sidecar was enough.
        assert reopened.counters.get("tail_scans") == 0
        assert reopened.counters.get("rebuilds") == 0
        assert reopened.get("k7") == line("k7")

    def test_tail_scan_picks_up_unindexed_appends(self, tmp_path):
        shard = Shard(tmp_path / "s")
        shard.append("a", line("a"))
        # Simulate a crash after the record write but before the index
        # write: append a record line directly to the segment.
        seg = shard.segment_files()[0]
        with open(seg, "ab") as fh:
            fh.write(line("b"))
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 2
        assert reopened.get("b") == line("b")
        assert reopened.counters.get("tail_scans") == 1

    def test_missing_index_rebuilds_from_segments(self, tmp_path):
        shard = Shard(tmp_path / "s")
        for i in range(5):
            shard.append(f"k{i}", line(f"k{i}"))
        os.unlink(shard.path / INDEX_FILE)
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 5
        assert reopened.counters.get("rebuilds") == 1
        assert (shard.path / INDEX_FILE).exists()  # sidecar rewritten

    def test_shrunk_segment_triggers_rebuild(self, tmp_path):
        shard = Shard(tmp_path / "s")
        shard.append("a", line("a"))
        shard.append("b", line("b"))
        seg = shard.segment_files()[0]
        with open(seg, "r+b") as fh:
            fh.truncate(len(line("a")))  # "b" vanishes behind the index
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 1
        assert reopened.get("a") == line("a")
        assert reopened.get("b") is None
        assert reopened.counters.get("rebuilds") == 1

    def test_rebuild_does_not_resurrect_superseded_tail(self, tmp_path):
        # A superseded copy of "k" ends segment 0; its live copy lives in
        # segment 1.  A rebuilt index holds only live entries, so the stale
        # tail sits beyond entry-derived coverage — the next open's tail
        # scan must not let it win over the newer entry (and must not
        # append a stale index line making the resurrection permanent).
        seg_bytes = len(line("a")) + len(line("k", "old"))
        shard = Shard(tmp_path / "s", segment_bytes=seg_bytes)
        shard.append("a", line("a"))
        shard.append("k", line("k", "old"))  # fills segment 0 to the brim
        shard.append("b", line("b"))  # rotates to segment 1
        shard.append("k", line("k", "new"))
        assert len(shard.segment_files()) == 2
        os.unlink(shard.path / INDEX_FILE)
        rebuilt = Shard(tmp_path / "s", segment_bytes=seg_bytes)
        assert rebuilt.get("k") == line("k", "new")
        for _ in range(2):  # stays true across further reopens
            reopened = Shard(tmp_path / "s", segment_bytes=seg_bytes)
            assert reopened.get("k") == line("k", "new")
            assert len(reopened) == 3
        # Coverage lines persist the scanned tail: no rescan per open.
        assert reopened.counters.get("tail_scans") == 0

    def test_garbage_index_lines_skipped(self, tmp_path):
        shard = Shard(tmp_path / "s")
        shard.append("a", line("a"))
        with open(shard.path / INDEX_FILE, "ab") as fh:
            fh.write(b'"torn-entry"\t0\t12')  # no newline, wrong arity
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 1


class TestEpochInvalidation:
    def test_stale_writer_reloads_after_foreign_compaction(self, tmp_path):
        writer = Shard(tmp_path / "s")
        writer.append("a", line("a", "old"))
        # A second handle (another process, in spirit) compacts the shard:
        # old segments are deleted and the epoch bumped.
        other = Shard(tmp_path / "s")
        other.append("a", line("a", "new"))
        other.compact()
        # The stale writer's next append must not touch the dead segment.
        writer.append("b", line("b"))
        fresh = Shard(tmp_path / "s")
        assert fresh.get("a") == line("a", "new")
        assert fresh.get("b") == line("b")
        assert len(fresh) == 2

    def test_reader_retries_after_foreign_compaction(self, tmp_path):
        reader = Shard(tmp_path / "s")
        reader.append("a", line("a"))
        assert reader.get("a") == line("a")  # caches the segment fd
        other = Shard(tmp_path / "s")
        other.append("a", line("a", "2"))
        other.compact()
        reader_fresh = Shard(tmp_path / "s")
        assert reader_fresh.get("a") == line("a", "2")
        # The original reader notices the deleted segment and reloads.
        assert reader.get("a") == line("a", "2")

    def test_epoch_file_written_by_compaction(self, tmp_path):
        shard = Shard(tmp_path / "s")
        shard.append("a", line("a"))
        assert not (shard.path / EPOCH_FILE).exists()
        shard.compact()
        assert int((shard.path / EPOCH_FILE).read_text()) >= 1


class TestCorruptionAccounting:
    def test_torn_tail_healed_and_counted(self, tmp_path):
        shard = Shard(tmp_path / "s")
        shard.append("a", line("a"))
        seg = shard.segment_files()[0]
        with open(seg, "ab") as fh:
            fh.write(b'{"key": "half')
        reopened = Shard(tmp_path / "s")
        assert len(reopened) == 1
        assert reopened.corrupt_seen == 1
        assert seg.read_bytes() == line("a")  # fragment physically gone

    def test_garbage_ratio(self, shard):
        shard.append("a", line("a"))
        assert shard.garbage_ratio == 0.0
        shard.append("a", line("a", "2"))
        assert shard.garbage_ratio == pytest.approx(0.5)
        shard.compact()
        assert shard.garbage_ratio == 0.0

    def test_discard_counts_corrupt_not_superseded(self, shard):
        shard.append("a", line("a"))
        shard.discard("a")
        assert len(shard) == 0
        assert shard.corrupt_seen == 1
        assert shard.superseded_current == 0
