"""Smoke tests: the example scripts must run end-to-end.

Each example's ``main()`` is imported and executed (fast ones fully; the
heavier studies are exercised through their underlying runners elsewhere).
This guards the public API surface the examples advertise.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


class TestExamplesSmoke:
    def test_examples_present(self):
        present = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart",
            "p2p_can_network",
            "adversarial_attack_planning",
            "mesh_resilience_study",
            "percolation_thresholds",
            "scenario_specs",
            "cached_sweep",
            "adaptive_sweep",
        } <= present

    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Fault-tolerance report" in out
        assert "Same budget" in out

    def test_percolation_thresholds_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["percolation_thresholds.py"])
        _load("percolation_thresholds").main()
        out = capsys.readouterr().out
        assert "Kesten" in out
        assert "measured_p*" in out

    def test_attack_planning_runs(self, capsys):
        _load("adversarial_attack_planning").main()
        out = capsys.readouterr().out
        assert "chain centres (Thm 2.3)" in out
        assert "attack comparison" in out

    def test_scenario_specs_runs(self, capsys):
        _load("scenario_specs").main()
        out = capsys.readouterr().out
        assert "A scenario is just JSON" in out
        assert "40-scenario batch" in out
        assert "replayed fingerprint matches" in out

    def test_adaptive_sweep_runs(self, capsys):
        _load("adaptive_sweep").main()
        out = capsys.readouterr().out
        assert "adaptive allocation" in out
        assert "fingerprint" in out
        assert "0 computed" in out

    def test_cached_sweep_runs(self, capsys):
        _load("cached_sweep").main()
        out = capsys.readouterr().out
        assert "resumed full sweep" in out
        assert "12 served from store, 12 computed" in out
        assert "24 cached, 0 computed" in out
