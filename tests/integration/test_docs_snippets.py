"""Documentation cannot drift from the API: execute every fenced
``python`` block in README.md and docs/*.md, and check the generated CLI
reference is in sync with the argparse parsers.

Blocks in one file run sequentially in a shared namespace (later blocks
may build on earlier ones, exactly as a reader would execute them), with
the working directory pointed at a tmpdir so store-directory examples
leave no droppings in the repository.
"""

import importlib.util
import pathlib
import re
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
DOC_FILES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

_FENCE = re.compile(
    r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def _python_blocks(path: pathlib.Path):
    text = path.read_text(encoding="utf-8")
    out = []
    for match in _FENCE.finditer(text):
        lineno = text[: match.start()].count("\n") + 2
        out.append((lineno, match.group(1)))
    return out


def test_docs_corpus_is_nonempty():
    assert (REPO / "docs" / "index.md").is_file()
    assert (REPO / "mkdocs.yml").is_file()
    assert any(_python_blocks(p) for p in DOC_FILES)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_snippets_execute(path, tmp_path, monkeypatch, capsys):
    blocks = _python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"docs_snippet_{path.stem}"}
    for lineno, code in blocks:
        try:
            exec(compile(code, f"{path.name}:{lineno}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assertion message
            pytest.fail(
                f"{path.name} block at line {lineno} failed: "
                f"{type(exc).__name__}: {exc}"
            )


def test_mkdocs_nav_pages_exist():
    """Every nav entry in mkdocs.yml must point at an existing page
    (the local stand-in for `mkdocs build --strict`, which CI runs)."""
    config = (REPO / "mkdocs.yml").read_text(encoding="utf-8")
    pages = re.findall(r":\s*([\w\-]+\.md)\s*$", config, re.MULTILINE)
    assert len(pages) >= 8
    for page in pages:
        assert (REPO / "docs" / page).is_file(), f"mkdocs.yml names missing {page}"


def test_generated_cli_reference_is_fresh():
    """docs/cli.md must match what scripts/gen_cli_docs.py generates."""
    spec = importlib.util.spec_from_file_location(
        "gen_cli_docs", REPO / "scripts" / "gen_cli_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    expected = module.generate()
    actual = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
    assert actual == expected, (
        "docs/cli.md is stale — regenerate with "
        "`PYTHONPATH=src python scripts/gen_cli_docs.py`"
    )


def test_mkdocs_build_strict_when_available(tmp_path):
    """Run the real strict build when mkdocs is installed (CI installs it;
    the dev container may not)."""
    pytest.importorskip("mkdocs")
    import subprocess

    proc = subprocess.run(
        [sys.executable, "-m", "mkdocs", "build", "--strict",
         "--site-dir", str(tmp_path / "site")],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
