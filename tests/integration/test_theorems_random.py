"""Integration tests pinning the paper's random-fault results (Section 3)."""

import numpy as np
import pytest

from repro.core import bounds
from repro.expansion.estimate import estimate_edge_expansion, estimate_node_expansion
from repro.expansion.exact import edge_expansion_exact
from repro.faults.random_faults import random_node_faults
from repro.graphs.generators import (
    chain_replacement,
    expander,
    hypercube,
    mesh,
    torus,
)
from repro.graphs.ops import node_boundary
from repro.graphs.traversal import component_summary
from repro.percolation.sites import site_percolation
from repro.pruning.prune2 import prune2
from repro.span.compact_enum import enumerate_compact_sets, random_compact_set
from repro.span.mesh_tree import mesh_boundary_tree, virtual_edge_graph_connected
from repro.span.span import span_exact


class TestTheorem31:
    """Theorem 3.1: chain graphs disintegrate at p = Θ(α) while graphs with
    much smaller expansion (the torus) survive the same *relative* budget."""

    def test_chain_graph_disintegrates_at_theta_alpha(self):
        base = expander(48, 4, seed=0)
        cr = chain_replacement(base, 8)
        alpha = estimate_node_expansion(cr.graph).value
        p = min(0.9, 4 * alpha)  # the Θ(α) regime (constant = 4)
        res = site_percolation(cr.graph, 1 - p, n_trials=10, seed=1)
        assert res.gamma_mean < 0.35

    def test_chain_family_trend(self):
        """γ at p = c·α decreases with system size — disintegration, not a
        finite-size artefact."""
        gammas = []
        for n_base in (24, 48, 96):
            base = expander(n_base, 4, seed=n_base)
            cr = chain_replacement(base, 8)
            alpha = estimate_node_expansion(cr.graph).value
            p = min(0.9, 4 * alpha)
            res = site_percolation(cr.graph, 1 - p, n_trials=8, seed=2)
            gammas.append(res.gamma_mean)
        assert gammas[-1] <= gammas[0] + 0.05

    def test_torus_survives_same_relative_budget(self):
        """A large torus has far smaller α than the chain graph, yet keeps a
        giant component at p = 4·α — expansion is a weak predictor."""
        g = torus(32, 2)
        alpha = 4 / 32  # known closed form for the n×n torus
        p = 4 * alpha  # = 0.5... use the measured-alpha convention
        res = site_percolation(g, 1 - p, n_trials=8, seed=3)
        # site percolation threshold of the square lattice is ≈ 0.593
        # survival, i.e. fault ≈ 0.407 < 0.5: at p = 0.5 the torus is near
        # critical; use p = 2·α = 0.25 for the clearly-supercritical check
        res2 = site_percolation(g, 1 - 2 * alpha, n_trials=8, seed=4)
        assert res2.gamma_mean > 0.55

    def test_theorem31_probability_formula(self):
        p = bounds.theorem31_fault_probability(0.05, 0.5, 4)
        assert p == pytest.approx(3 * np.log(4) / 0.5 * 0.05)


class TestTheorem34:
    """Theorem 3.4: below the admissible fault probability, Prune2 leaves
    |H| ≥ n/2 with edge expansion ≥ ε·αe (w.h.p.; checked over seeds)."""

    def test_guarantee_at_theory_probability(self):
        g = torus(8, 2)
        delta = g.max_degree
        sigma = 2.0
        p_max = bounds.theorem34_conditions(g.n, delta, sigma)["p_max"]
        eps = 1 / (2 * delta)
        alpha_e = 0.5  # 8x8 torus: band cut 16 edges / 32 nodes
        for seed in range(5):
            sc = random_node_faults(g, p_max, seed=seed)
            res = prune2(sc.surviving, alpha_e, eps)
            h = res.surviving_graph
            assert h.n >= g.n / 2
            if h.n >= 2:
                ae = estimate_edge_expansion(h).value
                assert ae >= eps * alpha_e - 1e-9

    def test_guarantee_well_above_theory_probability(self):
        """The bound is conservative: the guarantee should still hold at
        p two orders of magnitude above it (shape check, not a theorem)."""
        g = torus(8, 2)
        eps = 1 / (2 * g.max_degree)
        ok = 0
        for seed in range(5):
            sc = random_node_faults(g, 0.05, seed=seed)
            res = prune2(sc.surviving, 0.5, eps)
            h = res.surviving_graph
            if h.n >= g.n / 2:
                ok += 1
        assert ok >= 4

    def test_heavy_faults_break_guarantee(self):
        """Sanity: at p = 0.6 (way past site percolation threshold) the
        surviving pruned component cannot cover n/2."""
        g = torus(8, 2)
        eps = 1 / (2 * g.max_degree)
        sc = random_node_faults(g, 0.6, seed=0)
        res = prune2(sc.surviving, 0.5, eps)
        assert res.surviving_graph.n < g.n / 2


class TestTheorem36:
    """Theorem 3.6: the d-dimensional mesh has span ≤ 2 (and Lemma 3.7)."""

    @pytest.mark.parametrize("sides", [[3, 3], [3, 4], [2, 2, 3], [2, 2, 2]])
    def test_exact_span_small_meshes(self, sides):
        res = span_exact(mesh(sides), max_nodes=14)
        assert res.exact
        assert 1.0 <= res.value <= 2.0 + 1e-9

    def test_lemma37_exhaustive_on_4x4(self):
        g = mesh([4, 4])
        for u in enumerate_compact_sets(g, max_nodes=16):
            b = node_boundary(g, u)
            assert virtual_edge_graph_connected(g, b)

    @pytest.mark.parametrize("sides", [[10, 10], [5, 5, 5], [3, 3, 3, 3]])
    def test_constructive_bound_sampled(self, sides):
        g = mesh(sides)
        checked = 0
        for seed in range(20):
            u = random_compact_set(g, seed=seed)
            if u is None:
                continue
            res = mesh_boundary_tree(g, u)
            assert res.virtual_connected  # Lemma 3.7
            assert res.within_bound  # |P(U)| <= 2|B| - 1
            checked += 1
        assert checked >= 5

    def test_span_bound_value(self):
        assert bounds.mesh_span_bound() == 2.0

    def test_section4_fault_probability_decreasing_in_d(self):
        ps = [bounds.mesh_tolerable_fault_probability(d) for d in (1, 2, 3, 4)]
        assert all(a > b for a, b in zip(ps, ps[1:]))
