"""Integration tests pinning the paper's adversarial-fault theorems exactly.

These run on small instances with the *exhaustive* cut finder so every
quantity (expansion, prune search) is exact — the theorem statements are
checked as stated, not estimated.
"""

import numpy as np
import pytest

from repro.core import bounds
from repro.expansion.exact import node_expansion_exact
from repro.faults.adversary import random_attack, separator_attack
from repro.faults.attacks_chain import chain_center_attack
from repro.faults.attacks_mesh import recursive_bisection_attack
from repro.graphs.generators import (
    chain_replacement,
    cycle_graph,
    expander,
    hypercube,
    mesh,
    torus,
)
from repro.graphs.traversal import component_summary
from repro.pruning.certificates import check_theorem21, verify_culls
from repro.pruning.cutfinder import ExhaustiveCutFinder
from repro.pruning.prune import prune


class TestTheorem21Exact:
    """Theorem 2.1 on exhaustively-checkable instances.

    For every admissible adversarial fault set (within the k·f/α ≤ n/4
    budget), Prune(1 − 1/k) must leave |H| ≥ n − k·f/α with exact node
    expansion ≥ (1 − 1/k)·α.
    """

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_hypercube_q3_all_budgets(self, k):
        g = hypercube(3)
        alpha = node_expansion_exact(g).value
        f_max = bounds.prune_max_faults(g.n, alpha, k)
        finder = ExhaustiveCutFinder(max_nodes=10)
        for f in range(f_max + 1):
            sc = random_attack(g, f, seed=f)
            res = prune(sc.surviving, alpha, 1 - 1 / k, finder=finder)
            check = check_theorem21(
                res, n_original=g.n, f=f, alpha=alpha, k=k, exact_threshold=10
            )
            assert check.size_ok, f"size guarantee failed at f={f}, k={k}"
            assert check.expansion_ok, f"expansion guarantee failed at f={f}, k={k}"

    def test_cycle_with_targeted_faults(self):
        g = cycle_graph(12)
        alpha = node_expansion_exact(g).value  # 2 / 6 = 1/3
        k = 2
        f_max = bounds.prune_max_faults(g.n, alpha, k)  # floor(12/24) = 0 -> trivial
        # cycles have tiny alpha so the admissible budget is 0; check f=0
        finder = ExhaustiveCutFinder(max_nodes=12)
        res = prune(g, alpha, 0.5, finder=finder)
        assert res.n_culled == 0
        assert f_max == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_mesh_adversarial_seeds(self, seed):
        g = mesh([3, 4])
        alpha = node_expansion_exact(g).value
        k = 2
        f = max(1, bounds.prune_max_faults(g.n, alpha, k))
        sc = random_attack(g, f, seed=seed)
        finder = ExhaustiveCutFinder(max_nodes=12)
        res = prune(sc.surviving, alpha, 0.5, finder=finder)
        check = check_theorem21(
            res, n_original=g.n, f=f, alpha=alpha, k=k, exact_threshold=12
        )
        assert check.ok
        assert verify_culls(res)

    def test_certificate_against_strong_adversary(self):
        """The separator attack is the strongest practical adversary; the
        guarantee must hold against it too (it holds against *any*)."""
        g = hypercube(3)
        alpha = node_expansion_exact(g).value
        k = 2
        f = bounds.prune_max_faults(g.n, alpha, k)
        sc = separator_attack(g, f)
        finder = ExhaustiveCutFinder(max_nodes=10)
        res = prune(sc.surviving, alpha, 0.5, finder=finder)
        check = check_theorem21(
            res, n_original=g.n, f=sc.f, alpha=alpha, k=k, exact_threshold=10
        )
        assert check.ok


class TestTheorem23:
    """Theorem 2.3: Θ(α·N) faults shatter the chain graph into components
    that are a vanishing fraction of N as the family grows."""

    def test_component_bound_all_sizes(self):
        fracs = []
        for n_base in (16, 32, 64):
            base = expander(n_base, 4, seed=n_base)
            cr = chain_replacement(base, 4)
            sc = chain_center_attack(cr)
            # fault budget is Θ(α·N): α = Θ(1/k), f = m = N·δ/(2(δk/2+... ))
            summary = component_summary(sc.surviving)
            bound = bounds.chain_attack_component_bound(base.max_degree, 4)
            assert summary.largest_size <= bound
            fracs.append(summary.largest_size / cr.graph.n)
        # sublinear: the fraction strictly shrinks along the family
        assert fracs[-1] < fracs[0]

    def test_fault_fraction_is_theta_alpha(self):
        """The attack uses m faults on N = n + k·m nodes: fraction
        1/(k + n/m) = Θ(1/k) = Θ(α(H)) per Claim 2.4."""
        base = expander(32, 4, seed=1)
        k = 8
        cr = chain_replacement(base, k)
        sc = chain_center_attack(cr)
        frac = sc.fault_fraction
        assert 1 / (2 * k) <= frac <= 2 / k


class TestClaim24:
    """Claim 2.4: α(H(G,k)) = Θ(1/k), checked exactly on small instances."""

    def test_upper_bound_2_over_k(self):
        base = expander(8, 4, seed=0)
        for k in (2, 4):
            cr = chain_replacement(base, k)
            if cr.graph.n <= 16:
                alpha = node_expansion_exact(cr.graph, max_nodes=16).value
            else:
                from repro.expansion.estimate import estimate_node_expansion

                alpha = estimate_node_expansion(cr.graph).value
            assert alpha <= 2.0 / k + 1e-9

    def test_scaling_flat_alpha_times_k(self):
        from repro.expansion.estimate import estimate_node_expansion

        base = expander(16, 4, seed=2)
        products = []
        for k in (2, 4, 8):
            cr = chain_replacement(base, k)
            alpha = estimate_node_expansion(cr.graph).value
            products.append(alpha * k)
        # Θ(1/k): products bounded within a small constant band
        assert max(products) <= 4 * min(products)


class TestTheorem25:
    """Theorem 2.5: uniform-expansion graphs shatter with O(log(1/ε)/ε·α·n)
    faults."""

    @pytest.mark.parametrize("eps", [0.25, 0.125])
    def test_torus_fault_count_under_bound(self, eps):
        g = torus(8, 2)
        alpha = 4 / 8  # torus n x n has alpha = 4/n (band cut)
        sc = recursive_bisection_attack(g, eps)
        summary = component_summary(sc.surviving)
        assert summary.largest_size < eps * g.n + 1
        assert sc.f <= bounds.theorem25_fault_bound(g.n, alpha, eps)

    def test_faults_scale_with_alpha_n(self):
        """Along the 2-D torus family, faults-to-shatter grow like
        α(n)·n ~ √n·(constant): superlinear in side, sublinear in n."""
        counts = []
        for side in (6, 10, 14):
            g = torus(side, 2)
            sc = recursive_bisection_attack(g, 0.25)
            counts.append(sc.f / g.n)
        # fault *fraction* shrinks as the family grows (α(n) → 0)
        assert counts[-1] < counts[0] + 0.05
