"""Scheduler unit tests: dedup, priority, cancel, requeue, determinism.

Everything here drives the :class:`~repro.service.scheduler.Scheduler`
by hand — ``submit → next_job → job_done`` — with no processes, sockets
or threads involved.  The capstone test executes the popped jobs through
an inline :class:`~repro.api.session.Session` and asserts the resulting
fingerprint is bit-identical to a local :func:`run_sweep`.
"""

import pytest

from repro.api.session import Session
from repro.api.store import ResultStore
from repro.api.sweeps import SweepSpec, execute_units, run_sweep
from repro.service.metrics import Counters
from repro.service.scheduler import Scheduler, SchedulerError


def _drive(scheduler, session, batch="auto"):
    """Execute every queued job like a (serial) worker pool would,
    reconstructing the spec from the shipped dict exactly as the real
    worker does."""
    while (popped := scheduler.next_job()) is not None:
        job, spec_dict = popped
        payload = {k: v for k, v in spec_dict.items() if k != "__hash__"}
        sweep = SweepSpec.from_dict(payload)
        assert spec_dict["__hash__"] == sweep.hash()
        points = sweep.points()
        units = [
            (job.point_index, t)
            for t in range(job.trial_start, job.trial_start + job.n_trials)
        ]
        specs = [sweep.trial_spec(points[job.point_index], t) for _, t in units]
        h0, m0 = session.hits, session.misses
        results = execute_units(session, units, specs, batch)
        scheduler.job_done(
            job.key, results,
            hits=session.hits - h0, misses=session.misses - m0,
        )


class TestDedup:
    def test_identical_submissions_share_one_entry(self, sweep):
        sched = Scheduler()
        first, deduped_a = sched.submit(sweep)
        second, deduped_b = sched.submit(sweep)
        assert not deduped_a and deduped_b
        assert first is second
        assert first.dedup_count == 1
        assert sched.counters.get("sweeps_deduped_total") == 1
        assert sched.counters.get("sweeps_submitted_total") == 1

    def test_different_specs_get_distinct_entries(self, sweep, make_sweep):
        sched = Scheduler()
        a, _ = sched.submit(sweep)
        b, deduped = sched.submit(make_sweep(seed=99))
        assert a is not b and not deduped

    def test_completed_sweep_still_dedups(self, sweep, tmp_path):
        sched = Scheduler(store=ResultStore(tmp_path / "store"))
        session = Session(store=ResultStore(tmp_path / "store"), workers=1)
        entry, _ = sched.submit(sweep)
        _drive(sched, session)
        assert entry.state == "done"
        again, deduped = sched.submit(sweep)
        assert deduped and again is entry

    def test_failed_sweep_is_evicted_for_retry(self, sweep):
        sched = Scheduler(max_attempts=1)
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        sched.requeue(job.key, "worker died")  # budget of 1 -> fail
        assert entry.state == "failed"
        fresh, deduped = sched.submit(sweep)
        assert not deduped and fresh is not entry


class TestPriorityAndOrdering:
    def test_lower_priority_value_drains_first(self, sweep, make_sweep):
        sched = Scheduler()
        low_urgency, _ = sched.submit(sweep, priority=5)
        high_urgency, _ = sched.submit(make_sweep(seed=99), priority=0)
        # every job of the priority-0 sweep drains before any priority-5 job
        order = []
        while (popped := sched.next_job()) is not None:
            order.append(popped[0].sweep_id)
        split = order.index(low_urgency.id)
        assert set(order[:split]) == {high_urgency.id}
        assert set(order[split:]) == {low_urgency.id}

    def test_job_chunk_splits_requests(self, sweep):
        sched = Scheduler(job_chunk=1)
        sched.submit(sweep)
        sizes = []
        while (popped := sched.next_job()) is not None:
            sizes.append(popped[0].n_trials)
        # 2 points x 3 trials, one trial per job
        assert sizes == [1] * 6


class TestCancel:
    def test_cancel_drops_queued_jobs(self, sweep):
        sched = Scheduler()
        entry, _ = sched.submit(sweep)
        sched.cancel(entry.id)
        assert entry.state == "cancelled"
        assert sched.next_job() is None
        assert sched.counters.get("sweeps_cancelled_total") == 1

    def test_inflight_completion_after_cancel_is_dropped(self, sweep):
        sched = Scheduler()
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        sched.cancel(entry.id)
        # the worker's late payload must not resurrect the sweep
        sched.job_done(job.key, [])
        assert entry.state == "cancelled"

    def test_cancel_unknown_sweep_raises(self):
        with pytest.raises(SchedulerError):
            Scheduler().cancel("sw99-nope")


class TestRequeue:
    def test_requeue_bumps_generation_and_requeues(self, sweep):
        sched = Scheduler(max_attempts=3)
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        old_key = job.key
        assert sched.requeue(old_key, "crash")
        assert job.generation == 1 and job.state == "queued"
        # the stale completion is silently dropped
        sched.job_done(old_key, [])
        assert entry.state == "running"
        assert sched.counters.get("jobs_requeued_total") == 1

    def test_attempt_budget_exhaustion_fails_sweep(self, sweep):
        sched = Scheduler(max_attempts=2)
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        assert sched.requeue(job.key, "crash 1")
        job2, _ = sched.next_job()
        assert job2.id == job.id
        assert not sched.requeue(job2.key, "crash 2")
        assert entry.state == "failed"
        assert "crash 2" in entry.error

    def test_worker_exception_fails_sweep_immediately(self, sweep):
        sched = Scheduler()
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        sched.job_failed(job.key, "ValueError: boom")
        assert entry.state == "failed"
        assert "boom" in entry.error

    def test_wrong_result_count_fails_sweep(self, sweep):
        sched = Scheduler()
        entry, _ = sched.submit(sweep)
        job, _ = sched.next_job()
        sched.job_done(job.key, [])  # job.n_trials results expected
        assert entry.state == "failed"


class TestDraining:
    def test_draining_rejects_submissions(self, sweep):
        sched = Scheduler()
        sched.draining = True
        with pytest.raises(SchedulerError):
            sched.submit(sweep)


class TestDeterminism:
    def test_hand_driven_fingerprint_matches_run_sweep(self, sweep, tmp_path):
        reference = run_sweep(
            sweep, Session(store=ResultStore(tmp_path / "ref"), workers=1)
        )
        sched = Scheduler(store=ResultStore(tmp_path / "svc"))
        session = Session(store=ResultStore(tmp_path / "svc"), workers=1)
        entry, _ = sched.submit(sweep)
        _drive(sched, session)
        assert entry.state == "done"
        assert entry.fingerprint == reference.fingerprint()
        assert entry.result.rows() == reference.rows()

    def test_chunked_jobs_fingerprint_identical(self, sweep, tmp_path):
        reference = run_sweep(
            sweep, Session(store=ResultStore(tmp_path / "ref"), workers=1)
        )
        sched = Scheduler(store=ResultStore(tmp_path / "svc"), job_chunk=1)
        session = Session(store=ResultStore(tmp_path / "svc"), workers=1)
        entry, _ = sched.submit(sweep)
        _drive(sched, session)
        assert entry.fingerprint == reference.fingerprint()

    @pytest.mark.parametrize("kind", ["cluster", "transition"])
    def test_adaptive_kinds_distributed_identical(self, make_sweep, tmp_path, kind):
        """The stateful allocators make the same decisions whether the
        driver runs inside run_sweep or behind the scheduler's job loop."""
        import dataclasses

        from repro.api.sweeps import SamplingPolicy

        sweep = dataclasses.replace(
            make_sweep(values=(0.05, 0.2, 0.5), trials=8),
            policy=SamplingPolicy(kind=kind, target=0.04, min_trials=2, chunk=2),
        )
        reference = run_sweep(
            sweep, Session(store=ResultStore(tmp_path / "ref"), workers=1)
        )
        sched = Scheduler(store=ResultStore(tmp_path / "svc"), job_chunk=1)
        session = Session(store=ResultStore(tmp_path / "svc"), workers=1)
        entry, _ = sched.submit(sweep)
        _drive(sched, session)
        assert entry.state == "done"
        assert entry.fingerprint == reference.fingerprint()
        assert entry.result.rows() == reference.rows()
        status = sched.status(entry.id)
        assert status["allocator"]["kind"] == kind
        if kind == "cluster":
            assert status["allocator"]["clusters"] is not None

    def test_fully_warm_sweep_completes_inside_submit(self, sweep, tmp_path):
        store_dir = tmp_path / "warm"
        reference = run_sweep(
            sweep, Session(store=ResultStore(store_dir), workers=1)
        )
        counters = Counters()
        sched = Scheduler(store=ResultStore(store_dir), counters=counters)
        entry, _ = sched.submit(sweep)
        assert entry.state == "done"  # no job ever dispatched
        assert entry.fingerprint == reference.fingerprint()
        assert counters.get("jobs_warm_total") > 0
        assert counters.get("store_misses_total") == 0
        assert sched.next_job() is None
