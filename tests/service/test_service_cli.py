"""CLI tests for ``python -m repro serve`` and the ``sweep --server`` verbs.

These drive ``repro.__main__.main`` in-process (like the other CLI
tests) against a real ``SweepService`` on an ephemeral port, so the
argv parsing, output formatting and exit codes of the remote paths are
exercised under pytest — not only by the CI smoke script.
"""

import json
import os
import signal
import threading

import pytest

from repro.__main__ import main
from repro.api.session import Session
from repro.api.sweeps import run_sweep
from repro.service import ServiceConfig, SweepService


@pytest.fixture
def sweep_file(tmp_path, sweep):
    path = tmp_path / "sweep.json"
    path.write_text(sweep.to_json())
    return path


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        store=str(tmp_path / "svc-store"),
        workers=1,
        port=0,
        tick=0.02,
        heartbeat_interval=0.2,
    )
    svc = SweepService(config)
    svc.start()
    yield svc
    svc.stop()


class TestRemoteVerbs:
    def test_submit_requires_server(self, sweep_file, capsys):
        assert main(["sweep", "submit", str(sweep_file)]) == 2
        assert "--server" in capsys.readouterr().err

    def test_plan_is_local_only(self, sweep_file, service, capsys):
        assert main(
            ["sweep", "plan", str(sweep_file), "--server", service.url]
        ) == 2
        assert "local-only" in capsys.readouterr().err

    def test_submit_watch_status_roundtrip(
        self, tmp_path, sweep, sweep_file, service, capsys
    ):
        assert main(
            ["sweep", "submit", str(sweep_file), "--server", service.url]
        ) == 0
        out = capsys.readouterr().out
        assert "submitted sweep" in out
        assert sweep.hash() in out

        # a second submit of the same file joins the existing sweep
        assert main(
            ["sweep", "submit", str(sweep_file), "--server", service.url]
        ) == 0
        assert "joined sweep" in capsys.readouterr().out

        json_out = tmp_path / "result.json"
        assert main(
            ["sweep", "watch", str(sweep_file), "--server", service.url,
             "--json", str(json_out)]
        ) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out

        # the fingerprint the CLI printed is the local one, bit for bit
        local = run_sweep(
            sweep, Session(store=str(tmp_path / "local-store"), workers=1)
        )
        assert f"fingerprint {local.fingerprint()}" in out
        assert json.loads(json_out.read_text())["fingerprint"] == \
            local.fingerprint()

        assert main(
            ["sweep", "status", str(sweep_file), "--server", service.url]
        ) == 0
        out = capsys.readouterr().out
        assert "state:    done" in out
        assert "service:" in out

    def test_watch_submits_when_absent(self, sweep_file, service, capsys):
        assert main(
            ["sweep", "watch", str(sweep_file), "--server", service.url]
        ) == 0
        out = capsys.readouterr().out
        assert "submitted sweep" in out
        assert "fingerprint" in out

    def test_status_of_unsubmitted_file(self, sweep_file, service, capsys):
        assert main(
            ["sweep", "status", str(sweep_file), "--server", service.url]
        ) == 2
        assert "submit it first" in capsys.readouterr().out

    def test_status_of_unknown_id(self, service, capsys):
        assert main(
            ["sweep", "status", "sw0-deadbeef", "--server", service.url]
        ) == 1
        assert "service error" in capsys.readouterr().err

    def test_unreachable_server(self, sweep_file, capsys):
        assert main(
            ["sweep", "submit", str(sweep_file),
             "--server", "http://127.0.0.1:9"]
        ) == 1
        assert "service error" in capsys.readouterr().err


class TestServeCommand:
    @pytest.fixture(autouse=True)
    def _restore_handlers(self):
        term = signal.getsignal(signal.SIGTERM)
        intr = signal.getsignal(signal.SIGINT)
        yield
        signal.signal(signal.SIGTERM, term)
        signal.signal(signal.SIGINT, intr)

    def test_serve_drains_on_sigterm(self, tmp_path, capsys):
        # `serve` blocks until signalled; SIGTERM ourselves once it is up.
        timer = threading.Timer(
            2.0, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            rc = main(
                ["serve", "--store", str(tmp_path / "store"),
                 "--workers", "1", "--port", "0"]
            )
        finally:
            timer.cancel()
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep service listening on http://" in out
        assert "received SIGTERM; draining" in out
        assert "drained cleanly" in out

    def test_serve_reports_port_conflict(self, tmp_path, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = main(
                ["serve", "--store", str(tmp_path / "store"),
                 "--workers", "1", "--port", str(port)]
            )
        finally:
            blocker.close()
        assert rc == 2
        assert "cannot start service" in capsys.readouterr().err
