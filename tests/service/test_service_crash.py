"""Worker-crash recovery: kill a busy worker, the sweep still finishes
with a fingerprint bit-identical to a local run.

The killed worker's job is requeued (new generation), a replacement
process is spawned, and because trial seeds derive from the spec — never
from worker identity or attempt count — the recovered sweep cannot be
told apart from an undisturbed one.
"""

import time

import pytest

from repro.api.session import Session
from repro.api.store import ResultStore
from repro.api.sweeps import run_sweep
from repro.service import ServiceClient, ServiceConfig, SweepService


@pytest.fixture
def slow_sweep(make_sweep):
    # ~0.5s of work per job: a wide-open window to kill a busy worker
    return make_sweep(sides=32, values=(0.05, 0.1, 0.2), trials=6,
                      label="crash-e2e")


def _kill_one_busy_worker(service, deadline_s=30.0):
    """Spin until some worker holds a dispatched job, then SIGKILL it."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        for handle in list(service._workers.values()):
            if handle.job_key is not None and handle.process.is_alive():
                handle.process.kill()
                return handle.id
        time.sleep(0.001)
    raise AssertionError("no worker ever became busy")


class TestCrashRecovery:
    def test_killed_worker_job_is_requeued_and_sweep_completes(
        self, slow_sweep, tmp_path
    ):
        reference = run_sweep(
            slow_sweep,
            Session(store=ResultStore(tmp_path / "reference"), workers=1),
        )
        config = ServiceConfig(
            store=str(tmp_path / "svc"), workers=2, tick=0.02,
            heartbeat_interval=0.2,
        )
        with SweepService(config) as service:
            client = ServiceClient(service.url)
            sweep_id = client.submit(slow_sweep)["id"]
            killed = _kill_one_busy_worker(service)
            results = client.watch(sweep_id, interval=0.05, timeout=300)

            assert results["complete"]
            assert results["fingerprint"] == reference.fingerprint()
            assert results["rows"] == reference.rows()
            assert service.counters.get("workers_crashed_total") >= 1
            # a replacement was spawned beyond the initial pool
            assert service.counters.get("workers_spawned_total") >= 3
            assert service.workers_alive() == 2
            assert killed not in service._workers
