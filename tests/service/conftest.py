"""Shared fixtures for the sweep-service tests."""

import pytest

from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SweepSpec


def _make_sweep(
    *,
    sides: int = 8,
    values=(0.05, 0.2),
    trials: int = 3,
    seed: int = 11,
    label: str = "svc-test",
) -> SweepSpec:
    """A small real sweep: a torus under random node faults, gamma metric."""
    base = ScenarioSpec(
        graph=GraphSpec("torus", {"sides": sides, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.1}),
        analysis=AnalysisSpec(mode="node"),
        label=label,
    )
    return SweepSpec(
        base=base,
        axes=(Axis("fault.params.p", tuple(values)),),
        trials=trials,
        seed=seed,
        metrics=("gamma",),
        label=label,
    )


@pytest.fixture
def make_sweep():
    """The sweep factory itself, for tests that need spec variants."""
    return _make_sweep


@pytest.fixture
def sweep():
    return _make_sweep()
