"""End-to-end service tests over real HTTP on an ephemeral port.

Each service here runs in-process (``port=0``) with genuine spawned
worker processes, a real ``ThreadingHTTPServer`` and the stdlib client —
the same stack ``python -m repro serve`` runs.  The contract under test:
sweeps executed through the service are bit-identical to local
:func:`run_sweep`, concurrent identical submissions share one
computation, and a warm store is served without engine calls.
"""

import threading

import pytest

from repro.api.session import Session
from repro.api.store import ResultStore
from repro.api.sweeps import run_sweep
from repro.service import ServiceClient, ServiceConfig, ServiceError, SweepService


def _config(store, **overrides):
    defaults = dict(
        store=str(store), workers=2, tick=0.02, heartbeat_interval=0.2
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def reference(sweep, tmp_path):
    """The local single-process ground truth for the shared test sweep."""
    return run_sweep(
        sweep, Session(store=ResultStore(tmp_path / "reference"), workers=1)
    )


class TestFingerprintIdentity:
    def test_http_multiworker_sweep_matches_local(
        self, sweep, reference, tmp_path
    ):
        with SweepService(_config(tmp_path / "svc")) as service:
            client = ServiceClient(service.url)
            submitted = client.submit(sweep)
            assert not submitted["deduped"]
            results = client.watch(submitted["id"], interval=0.05)
            assert results["complete"]
            assert results["fingerprint"] == reference.fingerprint()
            assert results["rows"] == reference.rows()
            assert results["total_trials"] == reference.total_trials

    def test_warm_restart_serves_from_store(self, sweep, reference, tmp_path):
        store = tmp_path / "svc"
        with SweepService(_config(store)) as service:
            client = ServiceClient(service.url)
            first = client.watch(client.submit(sweep)["id"], interval=0.05)
            assert first["fingerprint"] == reference.fingerprint()
        # a fresh service over the same store: zero engine calls
        with SweepService(_config(store, workers=1)) as service:
            client = ServiceClient(service.url)
            warm = client.watch(client.submit(sweep)["id"], interval=0.05)
            assert warm["fingerprint"] == reference.fingerprint()
            assert service.counters.get("store_misses_total") == 0
            assert service.counters.get("jobs_warm_total") > 0


class TestSharedComputation:
    def test_concurrent_identical_submissions_run_once(
        self, make_sweep, tmp_path
    ):
        # big enough that the duplicates land while the first is running
        spec = make_sweep(sides=16, trials=4, label="dedup-e2e")
        with SweepService(_config(tmp_path / "svc")) as service:
            outcomes = []

            def _submit_and_watch():
                client = ServiceClient(service.url)
                sweep_id = client.submit(spec)["id"]
                outcomes.append(
                    (sweep_id, client.watch(sweep_id, interval=0.05))
                )

            threads = [
                threading.Thread(target=_submit_and_watch) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            ids = {sweep_id for sweep_id, _ in outcomes}
            assert len(ids) == 1  # one computation, three clients
            fingerprints = {r["fingerprint"] for _, r in outcomes}
            assert len(fingerprints) == 1
            assert all(r["complete"] for _, r in outcomes)
            # no duplicate engine work: exactly one trial-set was computed
            total = spec.trials * len(spec.points())
            assert service.counters.get("store_misses_total") == total
            assert service.counters.get("sweeps_submitted_total") == 1
            assert service.counters.get("sweeps_deduped_total") == 2


class TestEndpoints:
    def test_healthz_and_metrics(self, sweep, tmp_path):
        with SweepService(_config(tmp_path / "svc")) as service:
            client = ServiceClient(service.url)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["workers"]["alive"] == 2
            assert not health["draining"]

            client.watch(client.submit(sweep)["id"], interval=0.05)
            body = client.metrics()
            assert "# TYPE repro_sweeps_submitted_total counter" in body
            assert "repro_sweeps_submitted_total 1" in body
            assert "# TYPE repro_workers_alive gauge" in body
            assert "repro_jobs_done_total" in body

    def test_status_includes_service_counters(self, sweep, tmp_path):
        with SweepService(_config(tmp_path / "svc")) as service:
            client = ServiceClient(service.url)
            sweep_id = client.submit(sweep)["id"]
            client.watch(sweep_id, interval=0.05)
            status = client.status(sweep_id)
            assert status["state"] == "done"
            assert status["service"]["workers_alive"] == 2
            assert status["service"]["trials_total"] == 6
            assert status["point_stats"][0]["completed"] == 3

    def test_cancel_endpoint(self, make_sweep, tmp_path):
        spec = make_sweep(sides=32, trials=20, label="cancel-e2e")
        with SweepService(_config(tmp_path / "svc")) as service:
            client = ServiceClient(service.url)
            sweep_id = client.submit(spec)["id"]
            assert client.cancel(sweep_id)["state"] == "cancelled"
            assert client.status(sweep_id)["state"] == "cancelled"
            with pytest.raises(ServiceError) as err:
                client.watch(sweep_id, interval=0.05)
            assert err.value.status == 410

    def test_error_paths(self, tmp_path):
        with SweepService(_config(tmp_path / "svc", workers=1)) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as err:
                client.status("sw9-deadbeef")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/sweeps", {"nonsense": True})
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/nope")
            assert err.value.status == 404

    def test_draining_returns_503(self, sweep, tmp_path):
        with SweepService(_config(tmp_path / "svc", workers=1)) as service:
            service.begin_drain()
            client = ServiceClient(service.url)
            assert client.healthz()["draining"]
            with pytest.raises(ServiceError) as err:
                client.submit(sweep)
            assert err.value.status == 503
