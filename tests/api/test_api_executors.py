"""Executor abstraction: serial/process parity, streaming, selection."""

import os
import tempfile
import time

import pytest

from repro.api.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    effective_workers,
    make_executor,
)
from repro.errors import InvalidParameterError


def _square(x):
    return x * x


def _slow_marker(payload):
    marker_dir, i = payload
    time.sleep(0.2)
    with open(os.path.join(marker_dir, str(i)), "w") as fh:
        fh.write("ran")
    return i


class TestSerialExecutor:
    def test_map_ordered(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_imap_yields_index_result_pairs(self):
        assert list(SerialExecutor().imap(_square, [2, 3])) == [(0, 4), (1, 9)]

    def test_imap_is_lazy(self):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        stream = SerialExecutor().imap(tracked, [1, 2, 3])
        assert calls == []
        next(stream)
        assert calls == [1]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestProcessExecutor:
    def test_matches_serial(self):
        items = list(range(12))
        expected = SerialExecutor().map(_square, items)
        assert ProcessExecutor(2, min_parallel=2).map(_square, items) == expected

    def test_imap_covers_all_indices(self):
        pairs = list(ProcessExecutor(2, min_parallel=2).imap(_square, range(8)))
        assert sorted(i for i, _ in pairs) == list(range(8))
        assert all(r == i * i for i, r in pairs)

    def test_small_batch_falls_back_to_serial(self):
        # Below min_parallel the pool is never started; results identical.
        assert ProcessExecutor(4, min_parallel=10).map(_square, [2, 3]) == [4, 9]

    def test_abandoned_imap_cancels_queued_work(self):
        # Close the stream after one result: still-queued tasks must be
        # cancelled instead of executing during generator teardown.
        with tempfile.TemporaryDirectory() as marker_dir:
            stream = ProcessExecutor(2, min_parallel=2).imap(
                _slow_marker, [(marker_dir, i) for i in range(12)]
            )
            next(stream)
            stream.close()
            executed = len(os.listdir(marker_dir))
        assert 1 <= executed < 12

    def test_workers_resolution(self):
        assert ProcessExecutor(3).workers == 3
        assert ProcessExecutor(None).workers >= 1
        with pytest.raises(InvalidParameterError):
            ProcessExecutor(-2)


class TestMakeExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_workers_is_process_pool(self):
        executor = make_executor(4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_auto_is_process_pool(self):
        assert isinstance(make_executor(None), ProcessExecutor)
        assert isinstance(make_executor(0), ProcessExecutor)

    def test_all_are_executors(self):
        assert isinstance(make_executor(1), Executor)
        assert isinstance(make_executor(2), Executor)


class TestEffectiveWorkers:
    def test_auto(self):
        assert effective_workers(None) >= 1
        assert effective_workers(0) >= 1

    def test_explicit(self):
        assert effective_workers(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            effective_workers(-1)
