"""ResultStore behaviour: round-trips, corruption tolerance, maintenance."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.engine import run
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.store import ResultStore, baseline_key
from repro.expansion.estimate import ExpansionEstimate


def torus_spec(seed=3, p=0.1):
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": p}),
        analysis=AnalysisSpec(),
        seed=seed,
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestResultRoundTrip:
    def test_miss_then_hit(self, store):
        spec = torus_spec()
        assert store.get_result(spec) is None
        result = run(spec)
        store.put_result(result)
        assert spec in store
        cached = store.get_result(spec)
        assert cached == result
        assert cached.fingerprint() == result.fingerprint()

    def test_persists_across_instances(self, store):
        result = run(torus_spec())
        store.put_result(result)
        reopened = ResultStore(store.path)
        assert reopened.get_result(torus_spec()) == result
        assert len(reopened) == 1

    def test_different_seed_is_different_key(self, store):
        store.put_result(run(torus_spec(seed=1)))
        assert store.get_result(torus_spec(seed=2)) is None

    def test_last_entry_wins_and_counts_superseded(self, store):
        result = run(torus_spec())
        store.put_result(result)
        store.put_result(result)
        assert store.stats().superseded == 1  # counted at write time...
        reopened = ResultStore(store.path)
        assert len(reopened) == 1
        assert reopened.stats().superseded == 1  # ...and again at load time

    def test_same_instance_duplicates_counted_by_prune(self, store):
        result = run(torus_spec())
        store.put_result(result)
        store.put_result(result)
        assert store.prune() == {"kept": 1, "dropped": 1}


class TestBaselineRoundTrip:
    def test_baseline_round_trip(self, store):
        spec = torus_spec()
        key = baseline_key(spec)
        assert store.get_baseline(key) is None
        from repro.api.engine import _baseline_task

        estimate = _baseline_task(spec)
        store.put_baseline(key, estimate)
        restored = ResultStore(store.path).get_baseline(key)
        assert isinstance(restored, ExpansionEstimate)
        assert restored.value == estimate.value
        assert restored.exact == estimate.exact
        assert list(restored.witness) == list(estimate.witness)


class TestCorruptionTolerance:
    def _fill(self, store, n=4):
        results = [run(torus_spec(seed=s)) for s in range(n)]
        for r in results:
            store.put_result(r)
        return results

    def test_garbage_lines_skipped(self, store):
        results = self._fill(store)
        seg = store.engine.locate("results", results[0].spec.hash())[0]
        with open(seg, "a") as fh:
            fh.write("not json at all\n")
            fh.write('[1, 2, 3]\n')
        reopened = ResultStore(store.path)
        assert len(reopened) == len(results)
        assert reopened.stats().corrupt == 2
        for r in results:
            assert reopened.get_result(r.spec) == r

    def test_parseable_but_bogus_record_dropped_by_compaction(self, store):
        """A line that parses (dict + string key) but holds no usable result
        survives the shallow index scan; compaction's verify pass — the one
        eager integrity sweep — physically drops it."""
        results = self._fill(store)
        store.engine.append_raw(
            "results", "bogus-key", b'{"key": "bogus-key"}\n'
        )
        reopened = ResultStore(store.path)
        assert len(reopened) == len(results) + 1  # shallow count
        counts = reopened.compact(force=True)
        assert counts["corrupt"] == 1
        assert len(reopened) == len(results)
        for r in results:
            assert reopened.get_result(r.spec) == r

    def test_truncated_final_line_tolerated(self, store):
        results = self._fill(store)
        # Truncate mid-way through seed=3's line; every later entry in the
        # same shard segment is collateral damage, everything else survives.
        key = torus_spec(seed=3).hash()
        shard = store.engine.shard_for("results", key)
        entry = shard.entry(key)
        lost = {
            k
            for k in shard.keys()
            if shard.entry(k).seg == entry.seg
            and shard.entry(k).off >= entry.off
        }
        seg = store.engine.locate("results", key)[0]
        with open(seg, "r+b") as fh:
            fh.truncate(entry.off + 50)
        reopened = ResultStore(store.path)
        assert len(reopened) == len(results) - len(lost)
        assert reopened.get_result(torus_spec(seed=3)) is None
        for s in range(3):
            present = reopened.get_result(torus_spec(seed=s)) is not None
            assert present == (torus_spec(seed=s).hash() not in lost)
        assert reopened.corrupt_entries == 1

    def _rewrite_record(self, store, key, mutate):
        """Tamper with the single record for ``key`` in place (and drop the
        sidecar index so the shard rebuilds from the tampered segment)."""
        seg, _entry = store.engine.locate("results", key)
        record = json.loads(seg.read_text())
        mutate(record)
        seg.write_text(json.dumps(record) + "\n")
        (seg.parent / "index.log").unlink()

    def test_tampered_value_rejected_by_fingerprint(self, store):
        (result,) = self._fill(store, n=1)

        def tamper(record):
            record["result"]["n_surviving"] = 1  # silently wrong payload

        self._rewrite_record(store, result.spec.hash(), tamper)
        reopened = ResultStore(store.path)
        assert reopened.get_result(torus_spec(seed=0)) is None
        assert reopened.corrupt_entries == 1

    def test_wrong_key_rejected(self, store):
        (result,) = self._fill(store, n=1)

        def tamper(record):
            record["key"] = "0" * 16

        self._rewrite_record(store, result.spec.hash(), tamper)
        reopened = ResultStore(store.path)
        # Verification is lazy: the mis-keyed line occupies an index slot
        # until compaction's verify pass removes it, but it is never served.
        assert reopened.get_result(torus_spec(seed=0)) is None
        reopened.compact(force=True)
        assert len(reopened) == 0

    def test_corrupt_baseline_lines_skipped(self, store):
        shard = store.engine.shard_for("baselines", "x:node:14")
        seg = shard.path / "seg-000000.jsonl"
        seg.write_text(
            '{"key": "x:node:14", "estimate": {"bad": true}}\n' "garbage\n"
        )
        assert store.get_baseline(("x", "node", 14)) is None
        assert store.corrupt_entries == 2


class TestMaintenance:
    def test_stats(self, store):
        store.put_result(run(torus_spec()))
        stats = store.stats()
        assert stats.results == 1
        assert stats.baselines == 0
        assert stats.bytes > 0
        assert stats.to_dict()["path"] == str(store.path)

    def test_clear(self, store):
        store.put_result(run(torus_spec()))
        store.clear()
        assert len(store) == 0
        assert store.segment_files("results") == []

    def test_prune_compacts_corrupt_and_duplicates(self, store):
        result = run(torus_spec())
        store.put_result(result)
        store.put_result(result)  # superseded duplicate
        seg = store.engine.locate("results", result.spec.hash())[0]
        with open(seg, "a") as fh:
            fh.write("garbage\n")
        reopened = ResultStore(store.path)
        counts = reopened.prune()
        # one superseded duplicate + one corrupt line physically removed
        assert counts == {"kept": 1, "dropped": 2}
        lines = [
            line
            for f in reopened.segment_files("results")
            for line in f.read_text().strip().splitlines()
        ]
        assert len(lines) == 1  # one clean line survives compaction
        assert ResultStore(store.path).get_result(torus_spec()) == result

    def test_prune_keep_filter(self, store):
        keep_spec, drop_spec = torus_spec(seed=1), torus_spec(seed=2)
        store.put_result(run(keep_spec))
        store.put_result(run(drop_spec))
        counts = store.prune(keep=[keep_spec])
        assert counts == {"kept": 1, "dropped": 1}
        assert store.get_result(keep_spec) is not None
        assert store.get_result(drop_spec) is None

    def test_prune_preserves_baselines(self, store):
        from repro.api.engine import _baseline_task

        spec = torus_spec()
        store.put_baseline(baseline_key(spec), _baseline_task(spec))
        store.prune()
        assert store.get_baseline(baseline_key(spec)) is not None


class TestCrossProcessStability:
    def test_fingerprint_stable_across_processes(self, store):
        """A stored result's fingerprint equals a fresh computation's in a
        brand-new interpreter — the cache-key soundness contract."""
        spec = torus_spec(seed=11)
        result = run(spec)
        store.put_result(result)
        code = (
            "import sys\n"
            "from repro.api.engine import run\n"
            "from repro.api.specs import ScenarioSpec\n"
            "from repro.api.store import ResultStore\n"
            "spec = ScenarioSpec.from_json(sys.argv[1])\n"
            "store = ResultStore(sys.argv[2])\n"
            "print(store.get_result(spec).fingerprint())\n"
            "print(run(spec).fingerprint())\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-c", code, spec.to_json(), str(store.path)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        stored_fp, fresh_fp = proc.stdout.split()
        assert stored_fp == result.fingerprint()
        assert fresh_fp == result.fingerprint()


class TestWriteSafety:
    """Advisory locking, fsync and crash-tail recovery (the service's
    concurrent-store contract)."""

    def test_lock_file_created_and_optional(self, tmp_path):
        locked = ResultStore(tmp_path / "locked")
        locked.put_table("k", {"v": 1})
        assert locked.lock is not None
        # Appends lock per shard now: the written shard has a lock file.
        shard = locked.engine.shard_for("tables", "k")
        assert (shard.path / ".lock").exists()
        unlocked = ResultStore(tmp_path / "unlocked", lock=False)
        unlocked.put_table("k", {"v": 1})
        assert unlocked.lock is None
        assert not list(unlocked.path.rglob(".lock"))

    def test_lock_is_reentrant_through_prune(self, store):
        """prune() holds the lock while calling put_result (which locks
        again) — reentrancy means no self-deadlock."""
        store.put_result(run(torus_spec()))
        store.put_result(run(torus_spec()))
        assert store.prune() == {"kept": 1, "dropped": 1}
        assert not store.lock.held  # fully released afterwards

    def test_maintenance_blocks_until_writer_releases(self, store):
        """stats/prune/clear are safe while a writer holds the lock: the
        read-only stats tolerates the in-flight state, and prune/clear wait
        for the lock instead of racing the writer."""
        import threading

        store.put_table("warm", {"v": 1})
        other = ResultStore(store.path)
        release = threading.Event()
        entered = threading.Event()

        def hold():
            with other.lock:
                entered.set()
                release.wait(5.0)

        t = threading.Thread(target=hold)
        t.start()
        entered.wait(5.0)
        assert store.stats().tables == 1  # read path never blocks
        pruned = {}

        def prune():
            pruned["counts"] = store.prune()

        p = threading.Thread(target=prune)
        p.start()
        p.join(0.2)
        assert p.is_alive()  # prune is parked behind the writer's lock
        release.set()
        p.join(5.0)
        t.join(5.0)
        assert pruned["counts"]["kept"] == 0  # tables aren't results
        assert ResultStore(store.path).stats().tables == 1

    def test_fsync_append_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "durable", fsync=True)
        result = run(torus_spec())
        store.put_result(result)
        assert ResultStore(store.path).get_result(torus_spec()) == result

    def test_partial_tail_truncated_on_next_open(self, store):
        """A crash-truncated final line is tolerated on load and physically
        truncated, leaving the file all complete lines again."""
        results = [run(torus_spec(seed=s)) for s in range(3)]
        for r in results:
            store.put_result(r)
        seg = store.engine.locate("results", results[0].spec.hash())[0]
        raw = seg.read_text()
        with open(seg, "a") as fh:
            fh.write('{"key": "half-writ')  # no newline: simulated crash
        reopened = ResultStore(store.path)
        assert len(reopened) == 3
        assert reopened.corrupt_entries == 1
        healed = seg.read_text()
        assert healed == raw  # the fragment is physically gone
        assert healed.endswith("\n")

    def test_partial_tail_never_swallows_next_append(self, store):
        store.put_result(run(torus_spec(seed=0)))
        key0 = torus_spec(seed=0).hash()
        shard0 = store.engine.shard_for("results", key0)
        # A second spec landing in the *same* shard, so its append follows
        # the crash fragment.
        seed1 = next(
            s
            for s in range(1, 64)
            if store.engine.shard_for("results", torus_spec(seed=s).hash())
            is shard0
        )
        seg = store.engine.locate("results", key0)[0]
        with open(seg, "a") as fh:
            fh.write('{"key": "half-writ')  # no newline: simulated crash
        reopened = ResultStore(store.path)
        reopened.put_result(run(torus_spec(seed=seed1)))
        fresh = ResultStore(store.path)
        assert len(fresh) == 2
        assert fresh.stats().corrupt == 0  # fragment was truncated, not kept

    def test_concurrent_appends_never_interleave(self, tmp_path):
        """N processes hammering one store produce only complete lines —
        the advisory-lock guarantee the service's worker pool relies on."""
        store_dir = tmp_path / "shared"
        ResultStore(store_dir)  # create the directory
        code = (
            "import sys\n"
            "from repro.api.store import ResultStore\n"
            "store = ResultStore(sys.argv[1])\n"
            "who = sys.argv[2]\n"
            "pad = 'x' * 4096\n"
            "for i in range(40):\n"
            "    store.put_table(f'{who}:{i}', {'who': who, 'i': i, 'pad': pad})\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code, str(store_dir), f"w{k}"],
                env=env,
            )
            for k in range(4)
        ]
        for p in procs:
            assert p.wait(timeout=120) == 0
        store = ResultStore(store_dir)
        stats = store.stats()
        assert stats.tables == 4 * 40
        assert stats.corrupt == 0
        for k in range(4):
            for i in range(40):
                assert store.get_table(f"w{k}:{i}")["i"] == i
