"""Sweep layer: SweepSpec round-trips, deterministic expansion, trial-seed
derivation, adaptive sampling policies, resume/parallel fingerprints."""

import itertools
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.executors import ProcessExecutor
from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import (
    METRICS,
    Axis,
    SamplingPolicy,
    SweepSpec,
    run_sweep,
)
from repro.errors import SpecError


def _base(p: float = 0.1, *, analysis: AnalysisSpec | None = None) -> ScenarioSpec:
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 6, "d": 2}),
        fault=FaultSpec("random_node", {"p": p}),
        analysis=analysis
        if analysis is not None
        else AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
        label="t",
    )


def _sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        base=_base(),
        axes=(Axis("fault.params.p", (0.1, 0.4)),),
        trials=3,
        seed=5,
        metrics=("gamma",),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


# ------------------------------------------------------------------ #
# Round-trips (incl. property tests)
# ------------------------------------------------------------------ #

json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**50), max_value=2**50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)


#: Value strategies compatible with each path's spec-level validation
#: (expansion runs ScenarioSpec.from_dict on every grid point).
_AXIS_VALUE_STRATEGIES = {
    "fault.params.p": json_scalars,
    "fault.params.extra": json_scalars,
    "graph.params.sides": json_scalars,
    "graph.params.d": json_scalars,
    "analysis.exact_threshold": st.integers(min_value=0, max_value=30),
    "analysis.epsilon": st.floats(min_value=0.01, max_value=1.0),
}


@st.composite
def sweep_specs(draw):
    n_axes = draw(st.integers(min_value=0, max_value=3))
    paths = draw(
        st.lists(
            st.sampled_from(sorted(_AXIS_VALUE_STRATEGIES)),
            min_size=n_axes,
            max_size=n_axes,
            unique=True,
        )
    )
    axes = tuple(
        Axis(
            path,
            tuple(
                draw(
                    st.lists(
                        _AXIS_VALUE_STRATEGIES[path], min_size=1, max_size=4
                    )
                )
            ),
        )
        for path in paths
    )
    policy = draw(
        st.sampled_from(
            [
                SamplingPolicy(),
                SamplingPolicy(kind="ci_width", target=0.05, min_trials=2, chunk=3),
                SamplingPolicy(kind="budget", budget=30, min_trials=2),
                SamplingPolicy(kind="cluster", target=0.05, min_trials=2),
                SamplingPolicy(kind="transition", target=0.05, min_trials=2),
            ]
        )
    )
    return SweepSpec(
        base=_base(),
        axes=axes,
        trials=draw(st.integers(min_value=1, max_value=50)),
        seed=draw(st.integers(min_value=0, max_value=2**62)),
        seed_policy=draw(st.sampled_from(["scenario", "fault"])),
        metrics=tuple(
            draw(
                st.lists(
                    st.sampled_from(sorted(METRICS)), min_size=1, max_size=3,
                    unique=True,
                )
            )
        ),
        policy=policy,
        label=draw(st.text(max_size=8)),
    )


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(sweep_specs())
    def test_dict_round_trip(self, sweep):
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep

    @settings(max_examples=50, deadline=None)
    @given(sweep_specs())
    def test_json_round_trip(self, sweep):
        restored = SweepSpec.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.hash() == sweep.hash()

    @settings(max_examples=30, deadline=None)
    @given(sweep_specs())
    def test_json_is_plain_data(self, sweep):
        payload = json.loads(sweep.to_json())
        assert isinstance(payload, dict)
        assert set(payload) == {
            "base", "axes", "trials", "seed", "seed_policy", "metrics",
            "policy", "label",
        }

    def test_axis_accepts_spec_objects(self):
        axis = Axis("graph", (GraphSpec("torus", {"sides": 4, "d": 2}),))
        assert axis.values[0] == {
            "generator": "torus", "params": {"sides": 4, "d": 2},
        }

    def test_rejects_unknown_keys(self):
        d = _sweep().to_dict()
        d["bogus"] = 1
        with pytest.raises(SpecError):
            SweepSpec.from_dict(d)


# ------------------------------------------------------------------ #
# Expansion
# ------------------------------------------------------------------ #


class TestExpansion:
    def test_row_major_product_order(self):
        sweep = _sweep(
            axes=(
                Axis("fault.params.p", (0.1, 0.2)),
                Axis("analysis.exact_threshold", (10, 12, 14)),
            )
        )
        coords = [p.coord_dict() for p in sweep.points()]
        expected = [
            {"fault.params.p": p, "analysis.exact_threshold": t}
            for p, t in itertools.product((0.1, 0.2), (10, 12, 14))
        ]
        assert coords == expected
        assert sweep.n_points == 6

    @settings(max_examples=30, deadline=None)
    @given(sweep_specs())
    def test_expansion_is_deterministic(self, sweep):
        a = [(p.index, p.coords, p.spec) for p in sweep.points()]
        b = [(p.index, p.coords, p.spec) for p in sweep.points()]
        assert a == b
        # an equal spec reconstructed from JSON expands identically
        clone = SweepSpec.from_json(sweep.to_json())
        c = [(p.index, p.coords, p.spec) for p in clone.points()]
        assert a == c

    def test_axisless_sweep_is_one_point(self):
        sweep = _sweep(axes=())
        points = sweep.points()
        assert len(points) == 1
        assert points[0].coords == ()

    def test_whole_subtree_axis(self):
        graphs = (
            GraphSpec("torus", {"sides": 4, "d": 2}),
            GraphSpec("hypercube", {"d": 4}),
        )
        sweep = _sweep(axes=(Axis("graph", graphs),))
        specs = [p.spec.graph for p in sweep.points()]
        assert specs == list(graphs)

    def test_point_specs_have_no_seed(self):
        for point in _sweep().points():
            assert point.spec.seed is None

    def test_expand_yields_per_trial_units(self):
        sweep = _sweep(trials=2)
        units = list(sweep.expand())
        assert len(units) == sweep.n_points * 2
        assert [(i, t) for i, t, _ in units] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        seeds = [spec.seed for _, _, spec in units]
        assert len(set(seeds)) == len(seeds)  # all distinct

    def test_base_with_seed_rejected(self):
        with pytest.raises(SpecError):
            _sweep(base=_base().with_seed(3))

    def test_bad_axis_root_rejected(self):
        with pytest.raises(SpecError):
            Axis("seed", (1, 2))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecError):
            _sweep(
                axes=(
                    Axis("fault.params.p", (0.1,)),
                    Axis("fault.params.p", (0.2,)),
                )
            )

    def test_unknown_metric_rejected(self):
        with pytest.raises(SpecError):
            _sweep(metrics=("nope",))

    def test_bool_trials_and_seed_rejected(self):
        """bool passes isinstance(..., int); trials=True used to slip
        through as trials=1 (regression)."""
        with pytest.raises(SpecError):
            _sweep(trials=True)
        with pytest.raises(SpecError):
            _sweep(seed=False)


# ------------------------------------------------------------------ #
# Trial-seed derivation
# ------------------------------------------------------------------ #


class TestTrialSeeds:
    def test_stable_across_reconstruction(self):
        a = _sweep()
        b = SweepSpec.from_json(a.to_json())
        pa, pb = a.points(), b.points()
        for i in range(len(pa)):
            for t in range(3):
                assert a.trial_seed(pa[i], t) == b.trial_seed(pb[i], t)

    def test_distinct_across_trials_and_points(self):
        sweep = _sweep()
        points = sweep.points()
        seeds = {
            sweep.trial_seed(p, t) for p in points for t in range(10)
        }
        assert len(seeds) == len(points) * 10

    def test_sweep_seed_changes_streams(self):
        a, b = _sweep(seed=1), _sweep(seed=2)
        assert a.trial_seed(a.points()[0], 0) != b.trial_seed(b.points()[0], 0)

    def test_duplicate_coordinate_points_are_independent(self):
        """Clamped axis levels may collide; the replicas must not share
        RNG streams (their CIs are reported as independent)."""
        sweep = _sweep(axes=(Axis("fault.params.p", (0.3, 0.3)),))
        p0, p1 = sweep.points()
        assert p0.spec.graph == p1.spec.graph  # identical coordinates
        assert sweep.trial_seed(p0, 0) != sweep.trial_seed(p1, 0)

    def test_fault_policy_ignores_analysis(self):
        """Ablation contract: identical fault draws across analysis arms."""
        arm1 = _sweep(
            seed_policy="fault",
            base=_base(analysis=AnalysisSpec(mode="node", pruner="prune")),
        )
        arm2 = _sweep(
            seed_policy="fault",
            base=_base(
                analysis=AnalysisSpec(
                    mode="node", pruner="prune", finder="sweep",
                    finder_params={"refine": False},
                )
            ),
        )
        p1, p2 = arm1.points(), arm2.points()
        for i in range(len(p1)):
            assert arm1.trial_seed(p1[i], 0) == arm2.trial_seed(p2[i], 0)

    def test_scenario_policy_separates_analysis(self):
        arm1 = _sweep(base=_base(analysis=AnalysisSpec(mode="node", pruner="prune")))
        arm2 = _sweep(base=_base(analysis=AnalysisSpec(mode="node", pruner=None)))
        assert arm1.trial_seed(arm1.points()[0], 0) != arm2.trial_seed(
            arm2.points()[0], 0
        )


# ------------------------------------------------------------------ #
# Policies
# ------------------------------------------------------------------ #


class TestSamplingPolicy:
    def test_fixed_allocates_once(self):
        policy = SamplingPolicy()
        first = policy.allocate([math.inf, math.inf], [0, 0], 5)
        assert first == [(0, 5), (1, 5)]
        assert policy.allocate([0.1, 0.1], [5, 5], 5) == []

    def test_ci_width_stops_tight_points(self):
        policy = SamplingPolicy(kind="ci_width", target=0.05, min_trials=2, chunk=3)
        assert policy.allocate([math.inf, math.inf], [0, 0], 10) == [(0, 2), (1, 2)]
        # point 0 tight, point 1 noisy
        assert policy.allocate([0.01, 0.5], [2, 2], 10) == [(1, 3)]
        # cap respected
        assert policy.allocate([0.01, 0.5], [2, 9], 10) == [(1, 1)]
        assert policy.allocate([0.01, 0.5], [2, 10], 10) == []

    def test_budget_spends_on_noisiest(self):
        policy = SamplingPolicy(kind="budget", budget=10, min_trials=2, chunk=4)
        assert policy.allocate([math.inf] * 3, [0, 0, 0], 99) == [
            (0, 2), (1, 2), (2, 2),
        ]
        nxt = policy.allocate([0.1, 0.9, 0.2], [2, 2, 2], 99)
        assert nxt == [(1, 4)]
        assert policy.allocate([0.1, 0.3, 0.2], [2, 6, 2], 99) == []  # budget spent

    def test_budget_never_exceeded(self):
        policy = SamplingPolicy(kind="budget", budget=5, min_trials=3)
        first = policy.allocate([math.inf] * 3, [0, 0, 0], 99)
        assert sum(n for _, n in first) == 5

    def test_validation(self):
        with pytest.raises(SpecError):
            SamplingPolicy(kind="nope")
        with pytest.raises(SpecError):
            SamplingPolicy(kind="ci_width")  # no target
        with pytest.raises(SpecError):
            SamplingPolicy(kind="budget")  # no budget
        with pytest.raises(SpecError):
            SamplingPolicy(target=-1.0)
        with pytest.raises(SpecError):
            SamplingPolicy(kind="cluster")  # no target
        with pytest.raises(SpecError):
            SamplingPolicy(kind="transition")  # no target
        with pytest.raises(SpecError):
            SamplingPolicy(chunk=True)  # bools are not trial counts
        with pytest.raises(SpecError):
            SamplingPolicy(kind="budget", budget=10.5)  # non-integral

    # -- eq/hash contract (regression) --------------------------------- #

    def test_hash_equal_across_numeric_spellings(self):
        """int/float spellings of the same policy must be equal AND hash
        equal — JSON clients send either, and scheduler dedup keys on the
        content hash (pre-fix: eq held, hashes differed)."""
        a = SamplingPolicy(kind="budget", budget=100, min_trials=2)
        b = SamplingPolicy(kind="budget", budget=100.0, min_trials=2)
        assert a == b
        assert hash(a) == hash(b)
        c = SamplingPolicy(kind="ci_width", target=1, min_trials=2)
        d = SamplingPolicy(kind="ci_width", target=1.0, min_trials=2)
        assert c == d
        assert hash(c) == hash(d)

    def test_sweep_hash_stable_across_json_spellings(self):
        """A sweep round-tripped through JSON with int-vs-float policy
        fields keeps one content hash (what store reuse keys on)."""
        sweep = _sweep(
            policy=SamplingPolicy(kind="budget", budget=100, min_trials=2)
        )
        payload = json.loads(sweep.to_json())
        payload["policy"]["budget"] = 100.0
        restored = SweepSpec.from_json(json.dumps(payload))
        assert restored == sweep
        assert restored.hash() == sweep.hash()
        assert hash(restored.policy) == hash(sweep.policy)

    # -- NaN starvation (regression) ------------------------------------ #

    def test_budget_excludes_starved_points(self):
        """A point with min_trials spent and zero finite observations has
        halfwidth inf forever; pre-fix it won every widest-point pick and
        starved the rest of the grid."""
        policy = SamplingPolicy(kind="budget", budget=20, min_trials=2, chunk=4)
        # point 0: 2 trials, no finite observations -> starved
        nxt = policy.allocate(
            [math.inf, 0.5], [2, 2], 99, observations=[0, 2]
        )
        assert nxt == [(1, 4)]
        # all points starved: stop instead of burning budget forever
        assert (
            policy.allocate(
                [math.inf, math.inf], [2, 2], 99, observations=[0, 0]
            )
            == []
        )
        # without observation counts the legacy behaviour holds
        assert policy.allocate([math.inf, 0.5], [2, 2], 99) == [(0, 4)]

    # -- stateful kinds -------------------------------------------------- #

    def test_stateful_kinds_reject_stateless_allocate(self):
        for kind in ("cluster", "transition"):
            policy = SamplingPolicy(kind=kind, target=0.05)
            with pytest.raises(SpecError):
                policy.allocate([math.inf], [0], 10)

    def test_cluster_allocator_promotes_representatives(self):
        from repro.api.sweeps import PointView

        policy = SamplingPolicy(kind="cluster", target=0.05, min_trials=2, chunk=4)
        alloc = policy.allocator(())
        views = [PointView(math.inf, math.nan, 0)] * 4
        assert alloc.next_requests(views, [0, 0, 0, 0], 20) == [
            (0, 2), (1, 2), (2, 2), (3, 2),
        ]
        # two response plateaus (0.9-ish and 0.1-ish), everything noisy
        views = [
            PointView(0.2, 0.90, 2),
            PointView(0.2, 0.95, 2),
            PointView(0.2, 0.10, 2),
            PointView(0.2, 0.12, 2),
        ]
        requests = alloc.next_requests(views, [2, 2, 2, 2], 20)
        assert len(requests) == 2  # one representative per plateau
        reps = {i for i, _ in requests}
        assert len(reps & {0, 1}) == 1 and len(reps & {2, 3}) == 1
        mapping = alloc.mapping()
        assert mapping is not None
        assert mapping[0] == mapping[1] and mapping[2] == mapping[3]
        assert mapping[0] != mapping[2]
        state = alloc.state()
        assert state["kind"] == "cluster"
        assert len(state["clusters"]) == 2

    def test_transition_allocator_targets_steep_region(self):
        from repro.api.sweeps import PointView

        policy = SamplingPolicy(
            kind="transition", target=0.05, min_trials=2, chunk=4
        )
        alloc = policy.allocator(())
        # equal widths everywhere; the curve only moves between points 1-3,
        # so the steep-point sample floor routes the chunk into the band
        views = [
            PointView(0.1, 1.00, 2),
            PointView(0.1, 0.98, 2),
            PointView(0.1, 0.50, 2),
            PointView(0.1, 0.02, 2),
            PointView(0.1, 0.00, 2),
        ]
        requests = alloc.next_requests(views, [2] * 5, 20)
        assert len(requests) == 1
        assert requests[0][0] in (1, 2, 3)
        # once the band is sampled past the floor and tight relative to the
        # per-grid-step curve movement, the sweep stops
        views = [
            PointView(0.01, 1.00, 8),
            PointView(0.05, 0.98, 8),
            PointView(0.05, 0.50, 8),
            PointView(0.05, 0.02, 8),
            PointView(0.01, 0.00, 8),
        ]
        assert alloc.next_requests(views, [8] * 5, 20) == []


# ------------------------------------------------------------------ #
# Execution: streaming aggregation, determinism, resume
# ------------------------------------------------------------------ #


class TestRunSweep:
    def test_fixed_totals_and_stats(self):
        result = run_sweep(_sweep(trials=4), Session())
        assert result.total_trials == 8
        assert result.rounds == 1
        for point in result.points:
            gamma = point.stats["gamma"]
            assert gamma.n == 4
            assert 0.0 <= gamma.mean <= 1.0
            assert gamma.ci_lo <= gamma.mean <= gamma.ci_hi
            assert gamma.minimum <= gamma.p50 <= gamma.maximum

    def test_workers_serial_vs_pool_fingerprints_identical(self):
        sweep = _sweep(trials=4)
        serial = run_sweep(sweep, Session(workers=1))
        pooled = run_sweep(
            sweep, Session(executor=ProcessExecutor(2, min_parallel=2))
        )
        assert serial.fingerprint() == pooled.fingerprint()
        for a, b in zip(serial.points, pooled.points):
            assert a.trial_fingerprints == b.trial_fingerprints
            assert a.stats["gamma"].mean == b.stats["gamma"].mean

    def test_interrupted_resume_identical_fingerprint(self, tmp_path):
        sweep = _sweep(trials=4)
        fresh = run_sweep(sweep, Session())  # storeless reference

        class Stop(Exception):
            pass

        count = 0

        def bomb(i, t, result):
            nonlocal count
            count += 1
            if count == 3:
                raise Stop

        store = tmp_path / "store"
        with pytest.raises(Stop):
            run_sweep(sweep, Session(store), on_result=bomb)
        # everything yielded before the interruption landed on disk
        interrupted = Session(store)
        assert len(interrupted.store) >= 3

        resumed = run_sweep(sweep, interrupted)
        assert interrupted.hits >= 3  # served from the store
        assert resumed.fingerprint() == fresh.fingerprint()
        assert [p.trial_fingerprints for p in resumed.points] == [
            p.trial_fingerprints for p in fresh.points
        ]

    def test_ci_width_uses_fewer_trials_than_fixed(self):
        axes = (Axis("fault.params.p", (0.05, 0.5)),)
        fixed = run_sweep(
            _sweep(axes=axes, trials=20), Session()
        )
        adaptive = run_sweep(
            _sweep(
                axes=axes,
                trials=20,
                policy=SamplingPolicy(
                    kind="ci_width", target=0.04, min_trials=4, chunk=4
                ),
            ),
            Session(),
        )
        assert adaptive.total_trials < fixed.total_trials
        # adaptive point estimates agree with fixed within the joint CI
        for a, f in zip(adaptive.points, fixed.points):
            sa, sf = a.stats["gamma"], f.stats["gamma"]
            assert abs(sa.mean - sf.mean) <= sa.halfwidth + sf.halfwidth + 1e-9

    def test_budget_policy_respects_total(self):
        result = run_sweep(
            _sweep(
                trials=1,  # ignored by budget
                policy=SamplingPolicy(kind="budget", budget=12, min_trials=3),
            ),
            Session(),
        )
        assert result.total_trials == 12

    def test_skipped_metric_values_counted(self):
        # expansion_retention is None for measure-only analyses
        result = run_sweep(
            _sweep(trials=2, metrics=("gamma", "expansion_retention")),
            Session(),
        )
        for point in result.points:
            assert point.stats["expansion_retention"].n == 0
            assert point.stats["expansion_retention"].n_skipped == 2

    def test_rows_render(self):
        from repro.util.tables import format_row_dicts

        result = run_sweep(_sweep(trials=2), Session())
        out = format_row_dicts(result.rows())
        assert "gamma_mean" in out
        assert "ci95" in out

    def test_result_to_dict_is_json(self):
        result = run_sweep(_sweep(trials=2), Session())
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["total_trials"] == 4
        assert payload["sweep"]["trials"] == 2

    def test_budget_sweep_not_starved_by_all_nan_point(self):
        """Regression: a point whose metric never yields a finite value
        (expansion_retention under measure_expansion=False) used to absorb
        every remaining budget chunk while finite points got nothing."""
        sweep = _sweep(
            axes=(Axis("analysis.measure_expansion", (False, True)),),
            base=_base(
                analysis=AnalysisSpec(
                    mode="node", pruner=None, measure_expansion=True
                )
            ),
            trials=99,
            metrics=("expansion_retention",),
            policy=SamplingPolicy(kind="budget", budget=16, min_trials=3),
        )
        result = run_sweep(sweep, Session())
        nan_point, finite_point = result.points
        assert nan_point.stats["expansion_retention"].n == 0  # truly all-NaN
        assert nan_point.n_trials == 3  # bootstrap only, then starved out
        assert finite_point.n_trials == 13  # the rest of the budget

    @pytest.mark.parametrize("kind", ["cluster", "transition"])
    def test_adaptive_kind_fingerprints_identical_across_workers(self, kind):
        sweep = _sweep(
            axes=(Axis("fault.params.p", (0.05, 0.3, 0.6)),),
            trials=8,
            policy=SamplingPolicy(kind=kind, target=0.04, min_trials=2, chunk=2),
        )
        serial = run_sweep(sweep, Session(workers=1))
        pooled = run_sweep(
            sweep, Session(executor=ProcessExecutor(2, min_parallel=2))
        )
        assert serial.fingerprint() == pooled.fingerprint()
        assert [p.n_trials for p in serial.points] == [
            p.n_trials for p in pooled.points
        ]

    @pytest.mark.parametrize("kind", ["cluster", "transition"])
    def test_adaptive_kind_resume_identical_fingerprint(self, tmp_path, kind):
        sweep = _sweep(
            axes=(Axis("fault.params.p", (0.05, 0.3, 0.6)),),
            trials=8,
            policy=SamplingPolicy(kind=kind, target=0.04, min_trials=2, chunk=2),
        )
        fresh = run_sweep(sweep, Session())

        class Stop(Exception):
            pass

        count = 0

        def bomb(i, t, result):
            nonlocal count
            count += 1
            if count == 4:
                raise Stop

        store = tmp_path / "store"
        with pytest.raises(Stop):
            run_sweep(sweep, Session(store), on_result=bomb)
        resumed = run_sweep(sweep, Session(store))
        assert resumed.fingerprint() == fresh.fingerprint()
        assert [p.trial_fingerprints for p in resumed.points] == [
            p.trial_fingerprints for p in fresh.points
        ]

    def test_cluster_sweep_maps_members_with_provenance(self):
        # two identical-response points (same p) plus one far-away point:
        # the duplicate pair collapses to one representative
        sweep = _sweep(
            axes=(Axis("fault.params.p", (0.1, 0.1, 0.8)),),
            trials=12,
            policy=SamplingPolicy(kind="cluster", target=0.1, min_trials=3),
        )
        result = run_sweep(sweep, Session())
        pair = result.points[:2]
        mapped = [p for p in pair if p.provenance == "cluster"]
        direct = [p for p in pair if p.provenance == "direct"]
        assert len(mapped) == 1 and len(direct) == 1
        assert mapped[0].source == direct[0].index
        # the member reports its representative's CI-backed stats
        assert (
            mapped[0].stats["gamma"].mean == direct[0].stats["gamma"].mean
        )
        assert result.points[2].provenance == "direct"
        payload = result.points[0].to_dict()
        assert {"provenance", "source"} <= set(payload)
        rows = result.rows()
        assert any("provenance" in row for row in rows)
