"""CLI smoke tests for ``python -m repro run`` / ``run-batch`` / ``components``."""

import json

import pytest

from repro.__main__ import main
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec


@pytest.fixture
def scenario_dict():
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.1}),
        analysis=AnalysisSpec(mode="node"),
        seed=3,
        label="cli-smoke",
    ).to_dict()


class TestRunCommand:
    def test_run_single_spec(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert "torus-8x8" in out

    def test_run_writes_json_results(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        out_file = tmp_path / "results.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file), "--json", str(out_file)]) == 0
        results = json.loads(out_file.read_text())
        assert len(results) == 1
        assert results[0]["n_original"] == 64
        assert results[0]["spec"]["label"] == "cli-smoke"

    def test_run_batch(self, tmp_path, capsys, scenario_dict):
        batch = [dict(scenario_dict, seed=s) for s in range(5)]
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(json.dumps(batch))
        assert main(["run-batch", str(spec_file), "--workers", "2"]) == 0
        assert "5 scenario(s)" in capsys.readouterr().out

    def test_run_rejects_array(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(json.dumps([scenario_dict, scenario_dict]))
        assert main(["run", str(spec_file)]) == 2
        assert "run-batch" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_spec(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({"graph": {"generator": "torus"}, "oops": 1}))
        assert main(["run", str(spec_file)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_unknown_component_fails_cleanly(self, tmp_path, capsys, scenario_dict):
        scenario_dict["graph"]["generator"] = "warp_core"
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file)]) == 1
        assert "unknown generator" in capsys.readouterr().err


class TestComponentsCommand:
    def test_lists_registries(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for needle in ("generators:", "fault models:", "pruners:",
                       "torus", "random_node", "prune2"):
            assert needle in out


class TestExperimentPathStillWorks:
    def test_list_mentions_subcommands(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "run-batch" in out

    def test_workers_flag_accepted(self, capsys):
        assert main(["e2", "--seed", "1", "--workers", "1"]) == 0
        assert "alpha_times_k" in capsys.readouterr().out
