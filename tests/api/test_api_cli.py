"""CLI smoke tests for ``python -m repro run`` / ``run-batch`` / ``components``."""

import json

import pytest

from repro.__main__ import main
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec


@pytest.fixture
def scenario_dict():
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.1}),
        analysis=AnalysisSpec(mode="node"),
        seed=3,
        label="cli-smoke",
    ).to_dict()


class TestRunCommand:
    def test_run_single_spec(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert "torus-8x8" in out

    def test_run_writes_json_results(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        out_file = tmp_path / "results.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file), "--json", str(out_file)]) == 0
        results = json.loads(out_file.read_text())
        assert len(results) == 1
        assert results[0]["n_original"] == 64
        assert results[0]["spec"]["label"] == "cli-smoke"

    def test_run_batch(self, tmp_path, capsys, scenario_dict):
        batch = [dict(scenario_dict, seed=s) for s in range(5)]
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(json.dumps(batch))
        assert main(["run-batch", str(spec_file), "--workers", "2"]) == 0
        assert "5 scenario(s)" in capsys.readouterr().out

    def test_run_rejects_array(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(json.dumps([scenario_dict, scenario_dict]))
        assert main(["run", str(spec_file)]) == 2
        assert "run-batch" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_spec(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({"graph": {"generator": "torus"}, "oops": 1}))
        assert main(["run", str(spec_file)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_unknown_component_fails_cleanly(self, tmp_path, capsys, scenario_dict):
        scenario_dict["graph"]["generator"] = "warp_core"
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        assert main(["run", str(spec_file)]) == 1
        assert "unknown generator" in capsys.readouterr().err


class TestStoreFlags:
    def _write_batch(self, tmp_path, scenario_dict, n=5):
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(
            json.dumps([dict(scenario_dict, seed=s) for s in range(n)])
        )
        return spec_file

    def test_run_batch_cold_then_warm(self, tmp_path, capsys, scenario_dict):
        spec_file = self._write_batch(tmp_path, scenario_dict)
        store = str(tmp_path / "store")
        assert main(["run-batch", str(spec_file), "--store", store]) == 0
        assert "0 cached, 5 computed" in capsys.readouterr().out
        assert main(["run-batch", str(spec_file), "--store", store]) == 0
        assert "5 cached, 0 computed" in capsys.readouterr().out

    def test_resume_uses_default_store(self, tmp_path, capsys, monkeypatch,
                                       scenario_dict):
        spec_file = self._write_batch(tmp_path, scenario_dict, n=2)
        monkeypatch.chdir(tmp_path)
        assert main(["run-batch", str(spec_file), "--resume"]) == 0
        assert (tmp_path / ".repro-cache").is_dir()
        assert main(["run-batch", str(spec_file), "--resume"]) == 0
        assert "2 cached, 0 computed" in capsys.readouterr().out

    def test_single_run_store(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        store = str(tmp_path / "store")
        assert main(["run", str(spec_file), "--store", store]) == 0
        assert main(["run", str(spec_file), "--store", store]) == 0
        assert "1 cached, 0 computed" in capsys.readouterr().out

    def test_unusable_store_path_fails_cleanly(self, tmp_path, capsys,
                                               scenario_dict):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert main(["run", str(spec_file), "--store", str(blocker)]) == 2
        assert "cannot open store" in capsys.readouterr().err
        assert main(["e2", "--store", str(blocker)]) == 2
        assert "cannot open store" in capsys.readouterr().err

    def test_experiment_with_store_warm_rerun(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["e2", "--seed", "1", "--store", store]) == 0
        assert "computed" in capsys.readouterr().out
        assert main(["e2", "--seed", "1", "--store", store]) == 0
        assert "4 cached, 0 computed" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_clear_prune_cycle(self, tmp_path, capsys, scenario_dict):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(scenario_dict))
        store = str(tmp_path / "store")
        assert main(["run", str(spec_file), "--store", store]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "1" in out
        assert main(["cache", "prune", "--store", store]) == 0
        assert "kept 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--store", store]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_stats_on_missing_store_is_graceful(self, tmp_path, capsys):
        assert main(["cache", "stats", "--store", str(tmp_path / "nope")]) == 0
        assert "no store" in capsys.readouterr().out

    def test_clear_on_missing_store_errors(self, tmp_path, capsys):
        assert main(["cache", "clear", "--store", str(tmp_path / "nope")]) == 2


class TestRegistryCommand:
    def test_lists_all_sections_with_metadata(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for needle in ("generators (", "fault models (", "pruners (",
                       "finders (", "torus", "random_node", "[seeded]",
                       "[raw]", "sweep"):
            assert needle in out

    def test_single_section(self, capsys):
        assert main(["registry", "finders"]) == 0
        out = capsys.readouterr().out
        assert "finders (" in out and "hybrid" in out
        assert "generators (" not in out


class TestComponentsCommand:
    def test_lists_registries(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for needle in ("generators:", "fault models:", "pruners:", "finders:",
                       "torus", "random_node", "prune2", "hybrid"):
            assert needle in out


class TestExperimentPathStillWorks:
    def test_list_mentions_subcommands(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "run-batch" in out

    def test_workers_flag_accepted(self, capsys):
        assert main(["e2", "--seed", "1", "--workers", "1"]) == 0
        assert "alpha_times_k" in capsys.readouterr().out


@pytest.fixture
def sweep_dict(scenario_dict):
    from repro.api.sweeps import Axis, SweepSpec
    from repro.api.specs import ScenarioSpec

    base = ScenarioSpec.from_dict(scenario_dict).with_seed(None)
    return SweepSpec(
        base=base,
        axes=(Axis("fault.params.p", (0.05, 0.2)),),
        trials=3,
        seed=11,
        metrics=("gamma",),
        label="cli-sweep",
    ).to_dict()


class TestSweepCommand:
    def test_plan(self, tmp_path, capsys, sweep_dict):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps(sweep_dict))
        assert main(["sweep", "plan", str(sweep_file)]) == 0
        out = capsys.readouterr().out
        assert "points:   2" in out
        assert "fixed" in out
        assert "cli-sweep" in out
        assert "max trials: 6" in out

    def test_run_and_status_and_warm_rerun(self, tmp_path, capsys, sweep_dict):
        sweep_file = tmp_path / "sweep.json"
        out_file = tmp_path / "result.json"
        store = tmp_path / "store"
        sweep_file.write_text(json.dumps(sweep_dict))
        assert main(
            ["sweep", "run", str(sweep_file), "--store", str(store),
             "--json", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "6 trial(s)" in out
        assert "0 cached, 6 computed" in out
        payload = json.loads(out_file.read_text())
        assert payload["total_trials"] == 6
        assert len(payload["points"]) == 2
        fingerprint = payload["fingerprint"]

        assert main(["sweep", "status", str(sweep_file), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "6 trial(s) cached" in out
        assert "3/3" in out

        # warm rerun: all served from the store, identical fingerprint
        assert main(["sweep", "run", str(sweep_file), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "6 cached, 0 computed" in out
        assert fingerprint in out

    def test_status_without_store_errors(self, tmp_path, capsys, sweep_dict):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps(sweep_dict))
        missing = tmp_path / "nope"
        assert main(
            ["sweep", "status", str(sweep_file), "--store", str(missing)]
        ) == 2
        assert "no store" in capsys.readouterr().out

    def test_malformed_sweep(self, tmp_path, capsys):
        sweep_file = tmp_path / "bad.json"
        sweep_file.write_text(json.dumps({"axes": []}))
        assert main(["sweep", "run", str(sweep_file)]) == 2
        assert "cannot load sweep" in capsys.readouterr().err

    def test_missing_sweep_file(self, tmp_path, capsys):
        assert main(["sweep", "plan", str(tmp_path / "nope.json")]) == 2
        assert "cannot load sweep" in capsys.readouterr().err
