"""Engine tests: resolution, execution semantics, determinism, batching."""

import numpy as np
import pytest

from repro.api.engine import (
    apply_fault_spec,
    resolve_finder,
    resolve_graph,
    run,
    run_batch,
)
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, RunResult, ScenarioSpec
from repro.errors import SpecError, UnknownComponentError
from repro.pruning.cutfinder import HybridCutFinder, SweepCutFinder


def torus_spec(p=0.1, seed=3, **analysis):
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": p}),
        analysis=AnalysisSpec(**analysis),
        seed=seed,
    )


class TestResolveGraph:
    def test_plain_generator(self):
        graph, raw = resolve_graph(GraphSpec("torus", {"sides": 6, "d": 2}))
        assert graph.n == 36
        assert raw is graph

    def test_nested_graph_spec(self):
        spec = GraphSpec(
            "chain_replacement",
            {"base": GraphSpec("expander", {"n": 16, "degree": 4, "seed": 0}), "k": 4},
        )
        graph, raw = resolve_graph(spec)
        assert graph.n > 16
        assert hasattr(raw, "center_nodes")  # ChainReplacement bookkeeping survives

    def test_unknown_generator(self):
        with pytest.raises(UnknownComponentError):
            resolve_graph(GraphSpec("nope", {}))

    def test_bad_param_name_is_spec_error(self):
        with pytest.raises(SpecError, match="torus"):
            resolve_graph(GraphSpec("torus", {"size": 4}))

    def test_graph_identity_is_spec_content(self):
        spec = GraphSpec("expander", {"n": 32, "degree": 4, "seed": 11})
        g1, _ = resolve_graph(spec)
        g2, _ = resolve_graph(spec)
        assert g1 == g2  # same seed param → same graph, independent of run seed

    def test_unseeded_stochastic_generator_rejected(self):
        # Without an explicit seed the baseline phase and the run phase would
        # silently resolve two different random graphs for one spec hash.
        with pytest.raises(SpecError, match="seed"):
            resolve_graph(GraphSpec("gnm_random", {"n": 40, "m": 60}))
        with pytest.raises(SpecError, match="seed"):
            run_batch(
                [
                    ScenarioSpec(
                        graph=GraphSpec("expander", {"n": 32, "degree": 4}),
                        fault=FaultSpec("random_node", {"p": 0.1}),
                        seed=s,
                    )
                    for s in range(4)
                ]
            )


class TestApplyFaultSpec:
    def test_none_is_fault_free(self, small_torus):
        scenario = apply_fault_spec(small_torus, None)
        assert scenario.f == 0
        assert scenario.kind == "none"

    def test_seed_threading_deterministic(self, small_torus):
        a = apply_fault_spec(small_torus, FaultSpec("random_node", {"p": 0.2}), seed=5)
        b = apply_fault_spec(small_torus, FaultSpec("random_node", {"p": 0.2}), seed=5)
        assert np.array_equal(a.faulty_nodes, b.faulty_nodes)

    def test_explicit_param_seed_wins(self, small_torus):
        fault = FaultSpec("random_node", {"p": 0.2, "seed": 9})
        a = apply_fault_spec(small_torus, fault, seed=1)
        b = apply_fault_spec(small_torus, fault, seed=2)
        assert np.array_equal(a.faulty_nodes, b.faulty_nodes)

    def test_raw_mode_model(self):
        spec = GraphSpec(
            "chain_replacement",
            {"base": GraphSpec("expander", {"n": 16, "degree": 4, "seed": 0}), "k": 4},
        )
        graph, raw = resolve_graph(spec)
        scenario = apply_fault_spec(graph, FaultSpec("chain_center", {}), raw=raw)
        assert scenario.f == raw.center_nodes.shape[0]


class TestResolveFinder:
    def test_none_means_default(self):
        assert resolve_finder(None) is None

    def test_named_finders(self):
        assert isinstance(resolve_finder("hybrid"), HybridCutFinder)
        sweep = resolve_finder("sweep", {"refine": False})
        assert isinstance(sweep, SweepCutFinder)

    def test_unknown_finder(self):
        with pytest.raises(SpecError, match="unknown finder"):
            resolve_finder("magic")

    def test_bad_finder_params_is_spec_error(self):
        with pytest.raises(SpecError, match="sweep"):
            resolve_finder("sweep", {"polish": True})

    def test_bad_fault_param_is_spec_error(self, small_torus):
        with pytest.raises(SpecError, match="random_node"):
            apply_fault_spec(small_torus, FaultSpec("random_node", {"prob": 0.1}))


class TestRun:
    def test_end_to_end_result_shape(self):
        res = run(torus_spec())
        assert isinstance(res, RunResult)
        assert res.n_original == 64
        assert 0 < res.n_surviving <= 64
        assert res.baseline_expansion > 0
        assert res.spec_hash == torus_spec().hash()
        assert set(res.timings) == {"graph", "baseline", "fault", "analyze"}

    def test_result_round_trips_through_json(self):
        res = run(torus_spec())
        restored = RunResult.from_json(res.to_json())
        assert restored == res
        assert restored.fingerprint() == res.fingerprint()

    def test_identical_spec_seed_identical_result(self):
        a, b = run(torus_spec(seed=7)), run(torus_spec(seed=7))
        assert a.fingerprint() == b.fingerprint()
        assert a == b  # timings excluded from equality

    def test_different_seed_different_faults(self):
        a, b = run(torus_spec(p=0.3, seed=1)), run(torus_spec(p=0.3, seed=2))
        assert a.spec_hash != b.spec_hash
        assert a.fault_kind == b.fault_kind

    def test_pruner_none_keeps_faulty_network(self):
        res = run(torus_spec(p=0.2, pruner=None))
        assert res.n_surviving == res.n_original - res.f
        assert res.prune_iterations == 0
        assert res.n_culled_sets == 0

    def test_measure_expansion_off(self):
        res = run(torus_spec(measure_expansion=False))
        assert res.surviving_expansion is None
        assert res.expansion_retention is None

    def test_surviving_nodes_are_original_ids(self):
        res = run(torus_spec(p=0.2, seed=4))
        graph, _ = resolve_graph(torus_spec().graph)
        h = graph.subgraph(np.asarray(res.surviving_nodes, dtype=np.int64))
        assert h.n == res.n_surviving

    def test_matches_analyzer_facade(self, small_torus):
        """The declarative path and the imperative facade agree exactly."""
        from repro.core import FaultExpansionAnalyzer

        res = run(torus_spec(p=0.1, seed=12))
        report = FaultExpansionAnalyzer(small_torus).random_faults(0.1, seed=12)
        assert res.n_surviving == report.n_surviving
        assert res.baseline_expansion == report.baseline_expansion.value
        assert res.surviving_expansion == pytest.approx(
            report.surviving_expansion.value
        )

    def test_edge_mode_prune2(self):
        res = run(torus_spec(mode="edge", pruner="prune2"))
        assert res.mode == "edge"
        assert res.epsilon == pytest.approx(1.0 / 8.0)  # 1/(2δ), δ=4

    def test_rejects_non_spec(self):
        with pytest.raises(SpecError):
            run({"graph": {"generator": "torus"}})


class TestRunBatch:
    def _sweep_specs(self, n=24):
        return [torus_spec(p=0.05 + 0.01 * (s % 4), seed=s) for s in range(n)]

    def test_serial_and_parallel_agree(self):
        specs = self._sweep_specs()
        serial = run_batch(specs, workers=1)
        parallel = run_batch(specs, workers=4)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]

    def test_determinism_across_invocations(self):
        specs = self._sweep_specs(8)
        a = run_batch(specs, workers=2)
        b = run_batch(specs, workers=2)
        assert [r.fingerprint() for r in a] == [r.fingerprint() for r in b]

    def test_baseline_deduplicated(self):
        # All 24 scenarios share a graph spec: the batch baseline phase must
        # reduce to a single estimate; every result reports the same value.
        results = run_batch(self._sweep_specs(), workers=1)
        assert len({r.baseline_expansion for r in results}) == 1

    def test_order_preserved(self):
        specs = [torus_spec(seed=s) for s in (5, 3, 9)]
        results = run_batch(specs, workers=2)
        assert [r.seed for r in results] == [5, 3, 9]

    def test_baseline_cache_carries_across_batches(self):
        cache = {}
        run_batch([torus_spec(seed=1)], workers=1, baseline_cache=cache)
        assert len(cache) == 1
        (estimate,) = cache.values()
        run_batch([torus_spec(seed=s) for s in range(3)], workers=1,
                  baseline_cache=cache)
        assert len(cache) == 1  # no new keys: second batch reused the estimate
        assert next(iter(cache.values())) is estimate

    def test_rejects_non_specs(self):
        with pytest.raises(SpecError):
            run_batch([torus_spec(), "not a spec"])
